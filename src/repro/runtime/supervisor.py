"""Supervised campaign execution: the reboot-and-continue harness.

The paper's beam protocol (Section III-C) expects things to go wrong
mid-campaign — executions crash, devices drop, the shift ends — and
treats recovery as part of the methodology.  This module is that
protocol for the virtual campaigns:

* :class:`CampaignRunner` drives a declarative plan of
  :class:`ExposureStep` records through an
  :class:`~repro.beam.campaign.IrradiationCampaign` with exposure
  isolation, deterministic checkpoint/resume, wall-clock deadlines,
  event budgets with graceful degradation, and retry-with-backoff
  for transient harness faults;
* :class:`FleetRunner` does the same for the year-long
  :class:`~repro.core.fleet.FleetSimulator`;
* :class:`Supervisor` is the shared retry/isolation/budget engine,
  usable around any long-running entry point (``RiskAssessment``,
  the DDR correct-loop tester, FPGA campaigns).

Everything is deterministic: a run killed at any checkpoint boundary
and resumed in a fresh process produces a result identical to the
uninterrupted run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.beam.beamline import Beamline, chipir, rotax
from repro.beam.campaign import IrradiationCampaign
from repro.beam.results import CampaignResult
from repro.chaos.faultpoints import fault_point
from repro.core.fleet import FleetDay, FleetSimulator, FleetYearResult
from repro.devices import DEVICES, get_device
from repro.obs import core as obs
from repro.runtime.budget import Budget, BudgetTracker, RetryPolicy
from repro.runtime.checkpoint import (
    CampaignCheckpoint,
    FleetCheckpoint,
    cleanup_stale_tmp,
    plan_digest,
)
from repro.runtime.errors import (
    CheckpointError,
    CheckpointMismatchError,
    ConfigurationError,
    TransientHarnessError,
    require_non_empty,
    require_positive_int,
)
from repro.runtime.events import EventKind, EventLog, HarnessEvent
from repro.workloads import create_workload

#: Beamline factories addressable from a declarative plan.
BEAMLINE_FACTORIES: Dict[str, Callable[[], Beamline]] = {
    "chipir": chipir,
    "rotax": rotax,
}

#: Exposure fidelity levels a plan step may request.
STEP_MODES = ("counting", "simulated")


@dataclass(frozen=True)
class ExposureStep:
    """One declarative exposure in a campaign plan.

    Steps are plain data (JSON round-trippable) so plans can be
    digested, checkpointed, and resumed in a fresh process.

    Attributes:
        mode: ``"counting"`` or ``"simulated"``.
        beamline: key into :data:`BEAMLINE_FACTORIES`.
        device: device catalog name.
        code: workload name.
        duration_s: exposure time.
        position: board position.
        max_events: simulated-strike cap for this step.
        workload_args: extra size parameters for the workload factory
            (sorted key/value pairs, kept hashable).
    """

    mode: str
    beamline: str
    device: str
    code: str
    duration_s: float
    position: int = 0
    max_events: Optional[int] = None
    workload_args: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in STEP_MODES:
            raise ConfigurationError(
                f"unknown step mode {self.mode!r};"
                f" valid: {STEP_MODES}"
            )
        if self.beamline not in BEAMLINE_FACTORIES:
            raise ConfigurationError(
                f"unknown beamline {self.beamline!r};"
                f" valid: {tuple(BEAMLINE_FACTORIES)}"
            )

    def label(self) -> str:
        """Compact human-readable step identity."""
        return f"{self.device}/{self.code}@{self.beamline}"

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready; plan digests)."""
        return {
            "mode": self.mode,
            "beamline": self.beamline,
            "device": self.device,
            "code": self.code,
            "duration_s": self.duration_s,
            "position": self.position,
            "max_events": self.max_events,
            "workload_args": [list(kv) for kv in self.workload_args],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExposureStep":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            mode=str(data["mode"]),
            beamline=str(data["beamline"]),
            device=str(data["device"]),
            code=str(data["code"]),
            duration_s=float(data["duration_s"]),
            position=int(data.get("position", 0)),
            max_events=(
                None
                if data.get("max_events") is None
                else int(data["max_events"])
            ),
            workload_args=tuple(
                (str(k), int(v))
                for k, v in data.get("workload_args", [])
            ),
        )


class Supervisor:
    """Shared retry / isolation / budget engine.

    Args:
        retry: the deterministic backoff policy.
        tracker: budget consumption tracker.
        events: harness flight recorder (shared across layers).
        sleep: injectable backoff sleeper (tests pass a recorder).
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        tracker: Optional[BudgetTracker] = None,
        events: Optional[EventLog] = None,
        sleep: Optional[Callable[[], None]] = None,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.tracker = (
            tracker if tracker is not None else BudgetTracker()
        )
        # Explicit None checks: an empty EventLog is falsy (len 0),
        # and ``or`` would silently drop the caller's shared log.
        self.events = events if events is not None else EventLog()
        self._sleep = time.sleep if sleep is None else sleep

    def call(
        self,
        label: str,
        fn: Callable[[], "T"],
        step: int = -1,
        retry_on: Tuple[Type[BaseException], ...] = (
            TransientHarnessError,
        ),
    ):
        """Run ``fn``, retrying ``retry_on`` faults with backoff.

        Each retry is recorded as a harness event; the last failure
        propagates to the caller (who typically isolates it).
        """
        delays_s = self.retry.delays_s()
        for attempt, delay_s in enumerate(delays_s):
            try:
                return fn()
            except retry_on as exc:
                self.events.record(
                    EventKind.RETRY,
                    label,
                    f"transient fault ({type(exc).__name__}: {exc});"
                    f" retry {attempt + 1}/{len(delays_s)} after"
                    f" {delay_s:.3f} s backoff",
                    step,
                )
                obs.inc("repro_retries_total")
                obs.event(
                    "supervisor.retry", label=label, step=step
                )
                self._sleep(delay_s)
        try:
            return fn()
        except retry_on:
            # Terminal exhaustion: every budgeted attempt failed.
            # Counted separately from per-attempt retries so operators
            # can tell "rode it out" from "gave up".
            obs.inc("repro_retries_exhausted_total")
            obs.event(
                "supervisor.exhausted", label=label, step=step
            )
            raise

    def isolate(
        self,
        label: str,
        fn: Callable[[], "T"],
        step: int = -1,
    ):
        """Run ``fn`` (with retries); isolate any crash.

        Returns ``fn()``'s value, or ``None`` after recording an
        isolation event — the supervised run continues either way.
        """
        try:
            return self.call(label, fn, step=step)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 — isolation point
            self.events.record(
                EventKind.ISOLATION,
                label,
                f"crashed with {type(exc).__name__}: {exc};"
                " recorded and continued (reboot-and-continue)",
                step,
            )
            obs.inc("repro_isolations_total")
            obs.event(
                "supervisor.isolation", label=label, step=step
            )
            return None


@dataclass
class SupervisedCampaignResult:
    """Outcome of one :class:`CampaignRunner` run (or segment).

    Attributes:
        result: the accumulated campaign data.
        events: every harness intervention, in order.
        completed: False when stopped early (deadline / step budget).
        steps_completed: plan steps processed so far.
        steps_total: plan length.
        events_used: simulated strikes consumed from the budget.
        elapsed_s: wall-clock spent in this segment.
        interrupted: True when a SIGINT/SIGTERM-style interrupt
            stopped the run at a step boundary (a final checkpoint
            was still flushed).
    """

    result: CampaignResult
    events: List[HarnessEvent] = field(default_factory=list)
    completed: bool = True
    steps_completed: int = 0
    steps_total: int = 0
    events_used: int = 0
    elapsed_s: float = 0.0
    interrupted: bool = False

    def isolation_count(self) -> int:
        """Harness crashes isolated during the run."""
        return sum(
            1 for e in self.events if e.kind == EventKind.ISOLATION
        )

    def degradation_count(self) -> int:
        """Exposures degraded to a cheaper fidelity."""
        return sum(
            1 for e in self.events if e.kind == EventKind.DEGRADATION
        )

    def to_markdown(self) -> str:
        """Render the run as a Markdown report.

        Exposure counts, robustness flags, and the full harness
        event log — nothing the runtime did is silent.
        """
        lines: List[str] = []
        add = lines.append
        status = "completed" if self.completed else "INCOMPLETE"
        add("# Supervised campaign report")
        add("")
        add(
            f"Run {status}: {self.steps_completed}/{self.steps_total}"
            f" steps, {self.events_used} simulated strikes consumed,"
            f" {self.isolation_count()} isolated crash(es),"
            f" {self.degradation_count()} degradation(s)."
        )
        add("")
        add("## Exposures")
        add("")
        add(
            "| device | code | beam | fluence (n/cm^2) | SDC | DUE |"
            " masked | isolated | degraded |"
        )
        add("|---|---|---|---|---|---|---|---|---|")
        for e in self.result.exposures:
            add(
                f"| {e.device_name} | {e.code} | {e.beam.value} |"
                f" {e.fluence_per_cm2:.3e} | {e.sdc_count} |"
                f" {e.due_count} | {e.masked_count} |"
                f" {e.isolated_count} |"
                f" {'yes' if e.degraded else 'no'} |"
            )
        add("")
        add("## Harness events")
        add("")
        if not self.events:
            add("- none — clean run.")
        for event in self.events:
            where = (
                f" (step {event.step})" if event.step >= 0 else ""
            )
            add(
                f"- **{event.kind}**{where} `{event.label}`:"
                f" {event.message}"
            )
        add("")
        return "\n".join(lines)


class CampaignRunner:
    """Supervised executor for a beam-campaign plan.

    Args:
        plan: ordered exposure steps.
        seed: campaign seed (spawn-per-exposure determinism).
        budget: wall-clock / event limits.
        retry: transient-fault backoff policy.
        checkpoint_path: where periodic snapshots go (``None`` =
            no checkpointing).
        checkpoint_every: write a snapshot after this many steps.
        clock: injectable monotonic clock (tests, deadlines).
        sleep: injectable backoff sleeper.
        workload_factory: injectable workload constructor
            (``create_workload`` signature); tests use it to plant
            crashing or transiently-failing workloads.
        interrupt: zero-argument poll the runner checks at every step
            boundary; returning True stops the segment gracefully
            (final checkpoint flushed, ``interrupted`` flagged).  The
            CLI wires its signal handlers here so SIGINT/SIGTERM
            never tears a step in half.
    """

    def __init__(
        self,
        plan: Sequence[ExposureStep],
        seed: int = 2020,
        budget: Optional[Budget] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
        workload_factory: Optional[Callable[..., object]] = None,
        interrupt: Optional[Callable[[], bool]] = None,
    ) -> None:
        require_non_empty("plan", list(plan))
        require_positive_int("checkpoint_every", checkpoint_every)
        self.plan: Tuple[ExposureStep, ...] = tuple(plan)
        self.seed = seed
        self.budget = budget or Budget()
        self.retry = retry or RetryPolicy()
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path else None
        )
        if self.checkpoint_path is not None:
            cleanup_stale_tmp(self.checkpoint_path)
        self.checkpoint_every = checkpoint_every
        self._clock = clock
        self._sleep = sleep
        self._workload_factory = workload_factory or create_workload
        self._interrupt = interrupt
        self.digest = plan_digest([s.to_dict() for s in self.plan])

    # ------------------------------------------------------------------

    def run(
        self,
        resume: bool = False,
        max_steps: Optional[int] = None,
    ) -> SupervisedCampaignResult:
        """Execute the plan (or the rest of it, when resuming).

        Args:
            resume: continue from ``checkpoint_path`` instead of
                starting fresh.
            max_steps: process at most this many steps in this
                segment, then checkpoint and return an incomplete
                result (budgeted beam shifts).

        Raises:
            ConfigurationError: when resuming without a checkpoint
                path.
            CheckpointMismatchError: when the checkpoint belongs to
                a different plan or seed.
        """
        with obs.span(
            "run.campaign",
            steps_total=len(self.plan),
            resume=bool(resume),
        ):
            return self._run_segment(resume, max_steps)

    def _run_segment(
        self,
        resume: bool,
        max_steps: Optional[int],
    ) -> SupervisedCampaignResult:
        """The :meth:`run` body, inside the ``run.campaign`` span."""
        events = EventLog()
        campaign = IrradiationCampaign(self.seed, event_log=events)
        start_step = 0
        events_used = 0
        if resume:
            start_step, events_used = self._restore(campaign, events)
        tracker = BudgetTracker(
            self.budget, clock=self._clock, events_used=events_used
        )
        supervisor = Supervisor(
            self.retry, tracker, events, sleep=self._sleep
        )

        steps_done = start_step
        segment = 0
        interrupted = False
        for idx in range(start_step, len(self.plan)):
            if self._interrupt is not None and self._interrupt():
                interrupted = True
                events.record(
                    EventKind.INTERRUPT,
                    "campaign",
                    f"interrupt received before step {idx};"
                    " flushing final checkpoint and stopping",
                )
                break
            if max_steps is not None and segment >= max_steps:
                events.record(
                    EventKind.DEADLINE,
                    "campaign",
                    f"segment step budget ({max_steps}) reached at"
                    f" step {idx}; checkpoint and stop",
                )
                break
            if tracker.deadline_exceeded():
                events.record(
                    EventKind.DEADLINE,
                    "campaign",
                    "wall-clock budget"
                    f" ({self.budget.wall_clock_s:.1f} s) exhausted"
                    f" after {tracker.elapsed_s():.1f} s at step"
                    f" {idx}; checkpoint and stop",
                )
                break
            step = self.plan[idx]
            with obs.span(
                "supervisor.step", step=idx, label=step.label()
            ):
                supervisor.isolate(
                    step.label(),
                    lambda s=step, i=idx: self._execute(
                        campaign, supervisor, tracker, s, i
                    ),
                    step=idx,
                )
            steps_done = idx + 1
            segment += 1
            if (
                self.checkpoint_path is not None
                and steps_done % self.checkpoint_every == 0
            ):
                self._write_checkpoint(
                    campaign, events, tracker, steps_done, supervisor
                )

        completed = steps_done == len(self.plan)
        if self.checkpoint_path is not None:
            self._write_checkpoint(
                campaign, events, tracker, steps_done, supervisor
            )
        return SupervisedCampaignResult(
            result=campaign.result,
            events=list(events),
            completed=completed,
            steps_completed=steps_done,
            steps_total=len(self.plan),
            events_used=tracker.events_used,
            elapsed_s=tracker.elapsed_s(),
            interrupted=interrupted,
        )

    # ------------------------------------------------------------------

    def _restore(
        self, campaign: IrradiationCampaign, events: EventLog
    ) -> Tuple[int, int]:
        if self.checkpoint_path is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint_path"
            )
        snapshot = CampaignCheckpoint.load(self.checkpoint_path)
        snapshot.require_digest(self.digest)
        if snapshot.seed != self.seed:
            raise CheckpointMismatchError(
                f"checkpoint seed {snapshot.seed} does not match"
                f" runner seed {self.seed}"
            )
        campaign.restore_spawn_position(snapshot.spawn_position)
        campaign.result = snapshot.restore_result()
        events.extend_from_dicts(snapshot.events)
        events.record(
            EventKind.RESUME,
            "campaign",
            f"resumed from {self.checkpoint_path} at step"
            f" {snapshot.next_step}/{len(self.plan)}"
            f" (spawn position {snapshot.spawn_position},"
            f" {snapshot.events_used} strikes already consumed)",
        )
        return snapshot.next_step, snapshot.events_used

    def _execute(
        self,
        campaign: IrradiationCampaign,
        supervisor: Supervisor,
        tracker: BudgetTracker,
        step: ExposureStep,
        idx: int,
    ) -> None:
        # Before any lookup and — critically — before the campaign
        # spawns the step's RNG stream, so a retried step replays the
        # exact draws of an unfaulted one.
        fault_point("supervisor.step", step=idx, label=step.label())
        beamline = BEAMLINE_FACTORIES[step.beamline]()
        device = get_device(step.device)
        if step.mode == "counting":
            campaign.expose_counting(
                beamline,
                device,
                step.code,
                step.duration_s,
                step.position,
            )
            return
        remaining = tracker.events_remaining()
        if remaining is not None and remaining <= 0:
            # Event budget gone: degrade to counting statistics so
            # the campaign still completes with fluence accounting
            # intact — flagged on the exposure, logged as an event.
            supervisor.events.record(
                EventKind.DEGRADATION,
                step.label(),
                "event budget exhausted"
                f" ({tracker.events_used} used of"
                f" {self.budget.max_events}); degraded"
                " expose_simulated -> expose_counting",
                idx,
            )
            obs.inc("repro_degradations_total")
            exposure = campaign.expose_counting(
                beamline,
                device,
                step.code,
                step.duration_s,
                step.position,
            )
            exposure.degraded = True
            return
        cap = step.max_events
        constrained = remaining is not None and (
            cap is None or remaining < cap
        )
        if constrained:
            supervisor.events.record(
                EventKind.DEGRADATION,
                step.label(),
                f"event budget nearly exhausted; capping simulated"
                f" strikes at {remaining}"
                + (f" (step asked for {cap})" if cap else ""),
                idx,
            )
            obs.inc("repro_degradations_total")
            cap = remaining
        workload = self._workload_factory(
            step.code, **dict(step.workload_args)
        )
        exposure = campaign.expose_simulated(
            beamline,
            device,
            workload,
            step.duration_s,
            step.position,
            max_events=cap,
        )
        if constrained:
            exposure.degraded = True
        tracker.consume_events(
            exposure.sdc_count
            + exposure.due_count
            + exposure.masked_count
        )

    def _write_checkpoint(
        self,
        campaign: IrradiationCampaign,
        events: EventLog,
        tracker: BudgetTracker,
        next_step: int,
        supervisor: Supervisor,
    ) -> None:
        snapshot = CampaignCheckpoint(
            seed=self.seed,
            digest=self.digest,
            next_step=next_step,
            spawn_position=campaign.spawn_position,
            events_used=tracker.events_used,
            exposures=[
                e.to_dict() for e in campaign.result.exposures
            ],
            events=[e.to_dict() for e in events],
        )
        supervisor.call(
            "checkpoint",
            lambda: snapshot.save(self.checkpoint_path),
            retry_on=(TransientHarnessError, CheckpointError),
        )


@dataclass
class SupervisedFleetResult:
    """Outcome of one :class:`FleetRunner` run (or segment).

    Attributes:
        result: the simulated days so far.
        events: harness interventions, in order.
        completed: False when stopped early at the deadline.
        days_completed: days simulated so far.
        n_days: requested simulation length.
        elapsed_s: wall-clock spent in this segment.
    """

    result: FleetYearResult
    events: List[HarnessEvent] = field(default_factory=list)
    completed: bool = True
    days_completed: int = 0
    n_days: int = 0
    elapsed_s: float = 0.0


class FleetRunner:
    """Supervised executor for the year-long fleet simulation.

    Args:
        simulator: a configured :class:`FleetSimulator`.
        checkpoint_path: snapshot location (``None`` = none).
        checkpoint_every_days: snapshot cadence.
        budget: wall-clock limits.
        retry: transient-fault backoff policy.
        clock: injectable monotonic clock.
        sleep: injectable backoff sleeper.
    """

    def __init__(
        self,
        simulator: FleetSimulator,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every_days: int = 30,
        budget: Optional[Budget] = None,
        retry: Optional[RetryPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        require_positive_int(
            "checkpoint_every_days", checkpoint_every_days
        )
        self.simulator = simulator
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path else None
        )
        if self.checkpoint_path is not None:
            cleanup_stale_tmp(self.checkpoint_path)
        self.checkpoint_every_days = checkpoint_every_days
        self.budget = budget or Budget()
        self.retry = retry or RetryPolicy()
        self._clock = clock
        self._sleep = sleep
        self.digest = plan_digest(
            [
                {
                    "device": simulator.device.name,
                    "scenario": simulator.scenario.label,
                    "n_devices": simulator.n_devices,
                    "rain_probability": simulator.rain_probability,
                    "rain_persistence": simulator.rain_persistence,
                    "seed": simulator.seed,
                }
            ]
        )

    def run(
        self,
        n_days: int = 365,
        years_since_solar_minimum: float = 0.0,
        resume: bool = False,
    ) -> SupervisedFleetResult:
        """Simulate ``n_days`` (or the rest of them, when resuming).

        Raises:
            ConfigurationError: when resuming without a checkpoint
                path.
            CheckpointMismatchError: when the checkpoint belongs to
                a different fleet configuration.
        """
        require_positive_int("n_days", n_days)
        with obs.span(
            "run.fleet", n_days=n_days, resume=bool(resume)
        ):
            return self._run_segment(
                n_days, years_since_solar_minimum, resume
            )

    def _run_segment(
        self,
        n_days: int,
        years_since_solar_minimum: float,
        resume: bool,
    ) -> SupervisedFleetResult:
        """The :meth:`run` body, inside the ``run.fleet`` span."""
        events = EventLog()
        result = FleetYearResult()
        start_day = 0
        if resume:
            start_day = self._restore(result, events, n_days)
        else:
            self.simulator.start()
        tracker = BudgetTracker(self.budget, clock=self._clock)
        supervisor = Supervisor(
            self.retry, tracker, events, sleep=self._sleep
        )

        days_done = start_day
        for day in range(start_day, n_days):
            if tracker.deadline_exceeded():
                events.record(
                    EventKind.DEADLINE,
                    "fleet",
                    "wall-clock budget"
                    f" ({self.budget.wall_clock_s:.1f} s) exhausted"
                    f" after {tracker.elapsed_s():.1f} s at day"
                    f" {day}; checkpoint and stop",
                )
                break
            record = supervisor.call(
                f"day {day}",
                lambda d=day: self._step_day(
                    d, years_since_solar_minimum
                ),
            )
            result.days.append(record)
            days_done = day + 1
            if (
                self.checkpoint_path is not None
                and days_done % self.checkpoint_every_days == 0
            ):
                self._write_checkpoint(
                    result, events, days_done, supervisor
                )

        completed = days_done == n_days
        if self.checkpoint_path is not None:
            self._write_checkpoint(
                result, events, days_done, supervisor
            )
        return SupervisedFleetResult(
            result=result,
            events=list(events),
            completed=completed,
            days_completed=days_done,
            n_days=n_days,
            elapsed_s=tracker.elapsed_s(),
        )

    # ------------------------------------------------------------------

    def _step_day(
        self, day: int, years_since_solar_minimum: float
    ) -> FleetDay:
        with obs.span("fleet.day", day=day):
            obs.inc("repro_fleet_days_total")
            # Before the simulator touches its generator, so a retried
            # day consumes exactly the draws of an unfaulted one.
            fault_point("fleet.day", day=day)
            return self.simulator.step_day(
                day, years_since_solar_minimum
            )

    def _restore(
        self,
        result: FleetYearResult,
        events: EventLog,
        n_days: int,
    ) -> int:
        if self.checkpoint_path is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint_path"
            )
        snapshot = FleetCheckpoint.load(self.checkpoint_path)
        snapshot.require_digest(self.digest)
        self.simulator.load_state(
            {
                "rng_state": snapshot.rng_state,
                "raining": snapshot.raining,
            }
        )
        result.days.extend(
            FleetDay.from_dict(raw) for raw in snapshot.days
        )
        events.extend_from_dicts(snapshot.events)
        events.record(
            EventKind.RESUME,
            "fleet",
            f"resumed from {self.checkpoint_path} at day"
            f" {snapshot.next_day}/{n_days}",
        )
        return snapshot.next_day

    def _write_checkpoint(
        self,
        result: FleetYearResult,
        events: EventLog,
        next_day: int,
        supervisor: Supervisor,
    ) -> None:
        state = self.simulator.state_dict()
        snapshot = FleetCheckpoint(
            seed=self.simulator.seed,
            digest=self.digest,
            next_day=next_day,
            rng_state=state["rng_state"],
            raining=state["raining"],
            days=[d.to_dict() for d in result.days],
            events=[e.to_dict() for e in events],
        )
        supervisor.call(
            "checkpoint",
            lambda: snapshot.save(self.checkpoint_path),
            retry_on=(TransientHarnessError, CheckpointError),
        )


# ----------------------------------------------------------------------
# Built-in plans (the CLI's ``--plan`` choices)
# ----------------------------------------------------------------------


def figure4_plan(
    chipir_duration_s: float = 1800.0,
    rotax_duration_s: float = 4.0 * 3600.0,
) -> List[ExposureStep]:
    """Counting-mode ChipIR + ROTAX sweep over the full catalog.

    The supervised version of the Figure 4 ratio campaign: every
    device, every supported code, both beams.
    """
    plan: List[ExposureStep] = []
    for device in DEVICES.values():
        for code in device.supported_codes:
            plan.append(
                ExposureStep(
                    mode="counting",
                    beamline="chipir",
                    device=device.name,
                    code=code,
                    duration_s=chipir_duration_s,
                )
            )
            plan.append(
                ExposureStep(
                    mode="counting",
                    beamline="rotax",
                    device=device.name,
                    code=code,
                    duration_s=rotax_duration_s,
                )
            )
    return plan


def heterogeneous_plan(
    duration_s: float = 3600.0,
    max_events_per_step: int = 30,
) -> List[ExposureStep]:
    """Event-level APU plan: SC and BFS through both beams.

    Small simulated exposures of the paper's thermally-soft
    heterogeneous codes — the plan the degradation and isolation
    machinery is exercised against.
    """
    plan: List[ExposureStep] = []
    for code, args in (
        ("SC", (("n", 128),)),
        ("BFS", (("n_nodes", 64),)),
    ):
        for beamline in ("chipir", "rotax"):
            plan.append(
                ExposureStep(
                    mode="simulated",
                    beamline=beamline,
                    device="APU-CPU+GPU",
                    code=code,
                    duration_s=duration_s,
                    max_events=max_events_per_step,
                    workload_args=args,
                )
            )
    return plan


#: Named plans the CLI exposes.
PLAN_FACTORIES: Dict[str, Callable[[], List[ExposureStep]]] = {
    "figure4": figure4_plan,
    "heterogeneous": heterogeneous_plan,
}


__all__ = [
    "CampaignRunner",
    "ExposureStep",
    "FleetRunner",
    "PLAN_FACTORIES",
    "Supervisor",
    "SupervisedCampaignResult",
    "SupervisedFleetResult",
    "figure4_plan",
    "heterogeneous_plan",
]
