"""Budgets, deadlines, and the deterministic retry policy.

Long campaigns run against two budgets: a **wall-clock deadline**
(beam time is allocated by the hour) and an **event budget** (each
simulated strike costs a workload execution).  The tracker answers
"may I start this, and how much may it use" questions; the supervised
runtime turns the answers into graceful degradation instead of a
crash.

The clock is injectable so tests — and deterministic resume — never
depend on when they run; the default is ``time.monotonic`` which
measures elapsed time only (no wall-clock reads).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.runtime.errors import (
    BudgetExceededError,
    ConfigurationError,
    DeadlineExceededError,
)


@dataclass(frozen=True)
class Budget:
    """Resource limits for one supervised run.

    Attributes:
        wall_clock_s: elapsed-time deadline (``None`` = unlimited).
        max_events: total simulated-strike budget across all
            exposures (``None`` = unlimited).
    """

    wall_clock_s: Optional[float] = None
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_clock_s is not None and self.wall_clock_s <= 0.0:
            raise ConfigurationError(
                "wall-clock budget must be positive,"
                f" got {self.wall_clock_s}"
            )
        if self.max_events is not None and self.max_events < 0:
            raise ConfigurationError(
                f"event budget must be >= 0, got {self.max_events}"
            )


class BudgetTracker:
    """Tracks consumption against a :class:`Budget`.

    Args:
        budget: the limits (an all-``None`` budget never trips).
        clock: zero-argument monotonic-seconds callable; injectable
            for deterministic tests.
        events_used: starting event consumption (checkpoint resume).
    """

    def __init__(
        self,
        budget: Optional[Budget] = None,
        clock: Optional[Callable[[], float]] = None,
        events_used: int = 0,
    ) -> None:
        if events_used < 0:
            raise ConfigurationError(
                f"events_used must be >= 0, got {events_used}"
            )
        self.budget = budget or Budget()
        self._clock = clock or time.monotonic
        self._start = self._clock()
        self.events_used = int(events_used)

    # -- wall clock ----------------------------------------------------

    def elapsed_s(self) -> float:
        """Elapsed seconds since the tracker was created."""
        return self._clock() - self._start

    def deadline_exceeded(self) -> bool:
        """True once the wall-clock budget has run out."""
        limit_s = self.budget.wall_clock_s
        return limit_s is not None and self.elapsed_s() >= limit_s

    def check_deadline(self, label: str = "run") -> None:
        """Raise if the deadline has passed.

        Raises:
            DeadlineExceededError: when past the wall-clock budget.
        """
        if self.deadline_exceeded():
            raise DeadlineExceededError(
                f"{label}: wall-clock budget of"
                f" {self.budget.wall_clock_s:.1f} s exhausted after"
                f" {self.elapsed_s():.1f} s"
            )

    # -- event budget --------------------------------------------------

    def events_remaining(self) -> Optional[int]:
        """Events left in the budget (``None`` = unlimited)."""
        if self.budget.max_events is None:
            return None
        return max(self.budget.max_events - self.events_used, 0)

    def event_budget_exhausted(self) -> bool:
        """True once every budgeted event has been spent."""
        remaining = self.events_remaining()
        return remaining is not None and remaining <= 0

    def consume_events(self, n_events: int) -> None:
        """Record ``n_events`` simulated strikes as spent.

        Overspend is recorded (the exposure that spent it already
        happened) — the *next* request sees an exhausted budget.
        """
        if n_events < 0:
            raise ConfigurationError(
                f"n_events must be >= 0, got {n_events}"
            )
        self.events_used += int(n_events)

    def require_events(self, n_events: int, label: str = "run") -> None:
        """Raise unless ``n_events`` fit in the remaining budget.

        Raises:
            BudgetExceededError: when the budget cannot cover it.
        """
        remaining = self.events_remaining()
        if remaining is not None and n_events > remaining:
            raise BudgetExceededError(
                f"{label}: event budget exhausted"
                f" ({self.events_used} used of"
                f" {self.budget.max_events}; {n_events} requested)"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry-with-backoff for transient harness faults.

    Attributes:
        max_attempts: total tries, including the first (>= 1).
        base_delay_s: backoff before the first retry.
        multiplier: geometric growth factor between retries.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0.0:
            raise ConfigurationError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delays_s(self) -> Tuple[float, ...]:
        """Backoff before each retry (``max_attempts - 1`` entries)."""
        return tuple(
            self.base_delay_s * self.multiplier ** i
            for i in range(self.max_attempts - 1)
        )


__all__ = ["Budget", "BudgetTracker", "RetryPolicy"]
