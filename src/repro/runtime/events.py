"""Harness events: the supervised runtime's flight recorder.

Beam campaigns treat DUEs, SEFIs and power-cycles as *data*, not as
failures — the device is rebooted and the run continues (paper
Section III-C).  The runtime mirrors that protocol for the harness
itself: every recovery action (an isolated crash, a degraded
exposure, a retry, a checkpoint, a deadline stop) is recorded as a
:class:`HarnessEvent` so no intervention is ever silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.runtime.errors import ConfigurationError


class EventKind:
    """Harness event vocabulary (string constants, JSON-stable)."""

    ISOLATION = "isolation"
    DEGRADATION = "degradation"
    RETRY = "retry"
    CHECKPOINT = "checkpoint"
    RESUME = "resume"
    DEADLINE = "deadline"
    INTERRUPT = "interrupt"

    ALL = (
        ISOLATION, DEGRADATION, RETRY, CHECKPOINT, RESUME, DEADLINE,
        INTERRUPT,
    )


@dataclass(frozen=True)
class HarnessEvent:
    """One recovery action taken by the supervised runtime.

    Attributes:
        kind: one of :class:`EventKind`.
        label: what was being executed (step label, subsystem name).
        message: human-readable description of what happened.
        step: plan-step index the event belongs to (-1 = run level).
    """

    kind: str
    label: str
    message: str
    step: int = -1

    def __post_init__(self) -> None:
        if self.kind not in EventKind.ALL:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r};"
                f" valid: {EventKind.ALL}"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "kind": self.kind,
            "label": self.label,
            "message": self.message,
            "step": self.step,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HarnessEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            label=str(data["label"]),
            message=str(data["message"]),
            step=int(data.get("step", -1)),
        )


@dataclass
class EventLog:
    """Append-only store of :class:`HarnessEvent` records."""

    events: List[HarnessEvent] = field(default_factory=list)

    def record(
        self, kind: str, label: str, message: str, step: int = -1
    ) -> HarnessEvent:
        """Append one event and return it."""
        event = HarnessEvent(
            kind=kind, label=label, message=message, step=step
        )
        self.events.append(event)
        return event

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def of_kind(self, kind: str) -> List[HarnessEvent]:
        """All events of one kind, in record order."""
        return [e for e in self.events if e.kind == kind]

    def summary(self) -> Dict[str, int]:
        """``{kind: count}`` over the kinds that actually occurred."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def extend_from_dicts(self, records: Sequence[dict]) -> None:
        """Append events serialized by :meth:`HarnessEvent.to_dict`."""
        for raw in records:
            self.events.append(HarnessEvent.from_dict(raw))

    def __iter__(self) -> Iterator[HarnessEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


__all__ = ["EventKind", "EventLog", "HarnessEvent"]
