"""Deterministic campaign/fleet checkpoints (JSON snapshots).

A checkpoint captures *everything* a supervised run needs to continue
in a fresh process and still produce a byte-identical result:

* for beam campaigns — the seed, the ``SeedSequence`` spawn position,
  the exposures completed so far, and the cursor into the plan;
* for fleet simulations — the generator's bit-level state, the
  weather chain state, and the days simulated so far.

A digest of the plan is stored so a checkpoint can refuse to resume a
*different* run (:class:`~repro.runtime.errors.CheckpointMismatchError`).

Durability (format v3):

* writes are write-to-tmp / fsync / rename / fsync-directory, so a
  crash at any instant leaves either the previous checkpoint or the
  new one — never a torn file (stale ``*.tmp`` leftovers are swept by
  :func:`cleanup_stale_tmp` on runner startup);
* every payload carries a SHA-256 ``checksum`` over its canonical
  JSON, so a checkpoint that was silently altered on disk while
  remaining valid JSON raises :class:`CheckpointError` instead of
  resuming from wrong state.  Versions 1–2 (no checksum) still load,
  with a :class:`UserWarning`.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.beam.results import CampaignResult, ExposureResult
from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.runtime.errors import CheckpointError, CheckpointMismatchError

#: Format version written into every checkpoint file.
CHECKPOINT_VERSION = 3

#: Versions :func:`_check_version` accepts (older ones load with a
#: warning and without checksum verification).
SUPPORTED_VERSIONS = (1, 2, 3)


def plan_digest(plan_dicts: List[dict]) -> str:
    """Stable SHA-256 digest of a serialized plan."""
    canonical = json.dumps(plan_dicts, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON of ``payload`` sans checksum.

    The ``checksum`` key itself is excluded so the digest can be both
    computed at write time and re-verified at load time from the same
    function.
    """
    body = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def verify_checksum(data: dict, path: Union[str, Path]) -> None:
    """Validate the stored payload checksum of a loaded checkpoint.

    Raises:
        CheckpointError: when a v3+ checkpoint is missing its
            checksum or the stored value does not match the payload
            (the file was altered at rest).
    """
    version = data.get("version", 0)
    if version < 3:
        warnings.warn(
            f"checkpoint {path} uses format v{version} (no payload"
            " checksum); silent on-disk corruption cannot be"
            " detected — rewrite it by running with --checkpoint",
            UserWarning,
            stacklevel=2,
        )
        return
    stored = data.get("checksum")
    if stored is None:
        raise CheckpointError(
            f"checkpoint {path} (v{version}) has no payload checksum"
        )
    expected = payload_checksum(data)
    if stored != expected:
        raise CheckpointError(
            f"checkpoint {path} failed checksum verification"
            f" (stored {str(stored)[:12]}…, payload"
            f" {expected[:12]}…): file corrupted at rest"
        )


def cleanup_stale_tmp(path: Union[str, Path]) -> bool:
    """Remove a leftover ``<path>.tmp`` from an interrupted write.

    A crash between the tmp write and the rename leaks the tmp file;
    runners call this on startup so the leak is bounded to one write.

    Returns:
        True when a stale tmp file was found and removed.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        if tmp.exists():
            tmp.unlink()
            return True
    except OSError:
        # Best-effort sweep: an unreadable tmp never blocks startup.
        return False
    return False


def _fsync_dir(directory: Path) -> None:
    """Flush a rename to disk by fsyncing the parent directory.

    Best-effort: some filesystems refuse O_RDONLY fsync on
    directories, and durability of the *data* was already ensured by
    the tmp-file fsync.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_json(path: Path, payload: dict) -> None:
    """Durably and atomically write ``payload`` as JSON.

    Write-to-tmp, fsync, rename, fsync-directory: a crash at any
    point leaves the previous checkpoint (or no file), never a torn
    one.

    Traced as the ``checkpoint.write`` span; the span carries no path
    attribute so traces stay byte-identical across working
    directories.
    """
    with obs.span("checkpoint.write"):
        obs.inc("repro_checkpoint_writes_total")
        tmp = path.with_suffix(path.suffix + ".tmp")
        text = json.dumps(payload, indent=2, sort_keys=True)
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {path}: {exc}"
            ) from exc
        # The durable-tmp / not-yet-renamed instant: a crash here must
        # leave the previous checkpoint intact and only leak the tmp.
        fault_point(
            "checkpoint.write",
            path=str(path),
            tmp=str(tmp),
            text=text,
        )
        try:
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {path}: {exc}"
            ) from exc
        _fsync_dir(path.parent)


def _read_json(path: Path) -> dict:
    """Read and parse a checkpoint file.

    Traced as the ``checkpoint.load`` span (path-free, like the write
    span, so traces stay location-independent).
    """
    with obs.span("checkpoint.load"):
        obs.inc("repro_checkpoint_loads_total")
        fault_point("checkpoint.load", path=str(path))
        try:
            data = json.loads(Path(path).read_text())
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointError(
                f"checkpoint {path} has no top-level object"
            )
        return data


def _check_version(data: dict, path: Union[str, Path]) -> None:
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in {path};"
            f" supported: {SUPPORTED_VERSIONS}"
        )


@dataclass
class CampaignCheckpoint:
    """Snapshot of a supervised beam campaign.

    Attributes:
        seed: campaign seed.
        digest: digest of the serialized plan being executed.
        next_step: index of the first step not yet completed.
        spawn_position: ``SeedSequence`` children spawned so far.
        events_used: simulated strikes consumed from the event budget.
        exposures: completed exposures (dict form).
        events: harness events recorded so far (dict form).
    """

    seed: int
    digest: str
    next_step: int = 0
    spawn_position: int = 0
    events_used: int = 0
    exposures: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready, checksum included)."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "kind": "campaign",
            "seed": self.seed,
            "digest": self.digest,
            "next_step": self.next_step,
            "spawn_position": self.spawn_position,
            "events_used": self.events_used,
            "exposures": list(self.exposures),
            "events": list(self.events),
        }
        payload["checksum"] = payload_checksum(payload)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignCheckpoint":
        """Rebuild from :meth:`to_dict` output.

        Raises:
            CheckpointError: on a missing/unsupported version or a
                non-campaign snapshot.
        """
        _check_version(data, "<dict>")
        if data.get("kind") != "campaign":
            raise CheckpointError(
                f"not a campaign checkpoint: kind={data.get('kind')!r}"
            )
        return cls(
            seed=int(data["seed"]),
            digest=str(data["digest"]),
            next_step=int(data["next_step"]),
            spawn_position=int(data["spawn_position"]),
            events_used=int(data.get("events_used", 0)),
            exposures=list(data.get("exposures", [])),
            events=list(data.get("events", [])),
        )

    def restore_result(self) -> CampaignResult:
        """Rebuild the partial :class:`CampaignResult`."""
        result = CampaignResult()
        for raw in self.exposures:
            result.add(ExposureResult.from_dict(raw))
        return result

    def require_digest(self, digest: str) -> None:
        """Refuse to resume a different plan.

        Raises:
            CheckpointMismatchError: when the plan digests differ.
        """
        if digest != self.digest:
            raise CheckpointMismatchError(
                "checkpoint belongs to a different plan"
                f" (stored digest {self.digest[:12]}…, current"
                f" {digest[:12]}…); start a fresh run or pass the"
                " original plan"
            )

    def save(self, path: Union[str, Path]) -> None:
        """Write the snapshot as JSON (atomic rename)."""
        _write_json(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignCheckpoint":
        """Read a snapshot back from JSON.

        Raises:
            CheckpointError: on unreadable/invalid files, an
                unsupported version, or a checksum mismatch.
        """
        data = _read_json(Path(path))
        _check_version(data, path)
        verify_checksum(data, path)
        return cls.from_dict(data)


@dataclass
class FleetCheckpoint:
    """Snapshot of a supervised fleet-year simulation.

    Attributes:
        seed: simulator seed (provenance only).
        digest: digest of the fleet configuration.
        next_day: first day not yet simulated.
        rng_state: the generator's ``bit_generator.state`` dict.
        raining: weather-chain state entering ``next_day``.
        days: simulated days (dict form).
        events: harness events recorded so far (dict form).
    """

    seed: int
    digest: str
    next_day: int = 0
    rng_state: Dict = field(default_factory=dict)
    raining: bool = False
    days: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready, checksum included)."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "kind": "fleet",
            "seed": self.seed,
            "digest": self.digest,
            "next_day": self.next_day,
            "rng_state": self.rng_state,
            "raining": self.raining,
            "days": list(self.days),
            "events": list(self.events),
        }
        payload["checksum"] = payload_checksum(payload)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "FleetCheckpoint":
        """Rebuild from :meth:`to_dict` output.

        Raises:
            CheckpointError: on a missing/unsupported version or a
                non-fleet snapshot.
        """
        _check_version(data, "<dict>")
        if data.get("kind") != "fleet":
            raise CheckpointError(
                f"not a fleet checkpoint: kind={data.get('kind')!r}"
            )
        return cls(
            seed=int(data["seed"]),
            digest=str(data["digest"]),
            next_day=int(data["next_day"]),
            rng_state=dict(data["rng_state"]),
            raining=bool(data["raining"]),
            days=list(data.get("days", [])),
            events=list(data.get("events", [])),
        )

    def require_digest(self, digest: str) -> None:
        """Refuse to resume a different fleet configuration.

        Raises:
            CheckpointMismatchError: when the digests differ.
        """
        if digest != self.digest:
            raise CheckpointMismatchError(
                "checkpoint belongs to a different fleet"
                f" configuration (stored digest {self.digest[:12]}…,"
                f" current {digest[:12]}…)"
            )

    def save(self, path: Union[str, Path]) -> None:
        """Write the snapshot as JSON (atomic rename)."""
        _write_json(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FleetCheckpoint":
        """Read a snapshot back from JSON.

        Raises:
            CheckpointError: on unreadable/invalid files, an
                unsupported version, or a checksum mismatch.
        """
        data = _read_json(Path(path))
        _check_version(data, path)
        verify_checksum(data, path)
        return cls.from_dict(data)


__all__ = [
    "CHECKPOINT_VERSION",
    "CampaignCheckpoint",
    "FleetCheckpoint",
    "cleanup_stale_tmp",
    "payload_checksum",
    "plan_digest",
]
