"""Typed exception hierarchy and argument validators.

Library code raises these instead of bare built-ins so callers (and
the supervised runtime) can distinguish *configuration* mistakes
(fail fast, never retry) from *budget* exhaustion (stop gracefully,
flag the result) from *checkpoint* trouble (retry, then surface) from
*transient harness* faults (retry with backoff, then isolate).

Every class also subclasses the built-in it historically replaced
(``ValueError`` / ``RuntimeError``), so ``except ValueError`` call
sites and existing tests keep working.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


class ReproError(Exception):
    """Base class for every error this library raises on purpose."""


class ConfigurationError(ReproError, ValueError):
    """A caller-supplied argument or configuration is invalid.

    Never retried: the same call will fail the same way.
    """


class BudgetExceededError(ReproError, RuntimeError):
    """A wall-clock or event budget was exhausted mid-run."""


class DeadlineExceededError(BudgetExceededError):
    """The wall-clock deadline passed before the work completed."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint could not be written, read, or parsed."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint does not belong to the run trying to resume it."""


class TransientHarnessError(ReproError, RuntimeError):
    """A retryable harness fault (the beam-room power blip).

    The supervised runtime retries these with deterministic backoff;
    anything still failing after the last attempt is isolated.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its iteration budget.

    Raised by the deterministic transport engine when a source
    iteration cannot reach its tolerance within ``max_iterations``
    sweeps.  Not retried: the same solve diverges the same way —
    loosen the tolerance, raise the budget, or refine the setup.
    """


# ----------------------------------------------------------------------
# Shared validators — one vocabulary of error messages everywhere.
# ----------------------------------------------------------------------


def require_positive_duration_s(duration_s: float) -> float:
    """Validate an exposure/simulation duration in seconds.

    Raises:
        ConfigurationError: if ``duration_s`` is not a positive number.
    """
    if not isinstance(duration_s, (int, float)) or isinstance(
        duration_s, bool
    ):
        raise ConfigurationError(
            f"duration_s must be a number, got {type(duration_s).__name__}"
        )
    if duration_s <= 0.0:
        raise ConfigurationError(
            f"duration must be positive, got {duration_s};"
            " pass the exposure length in seconds"
        )
    return float(duration_s)


def require_position(position: int) -> int:
    """Validate a board position (non-negative integer).

    Raises:
        ConfigurationError: if ``position`` is not an int ``>= 0``.
    """
    if isinstance(position, bool) or not isinstance(position, int):
        raise ConfigurationError(
            f"position must be an integer board index,"
            f" got {type(position).__name__}"
        )
    if position < 0:
        raise ConfigurationError(
            f"position must be >= 0, got {position};"
            " board 0 is closest to the beam exit"
        )
    return position


def require_positive_int(name: str, value: int) -> int:
    """Validate a strictly positive integer argument."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{name} must be an integer, got {type(value).__name__}"
        )
    if value <= 0:
        raise ConfigurationError(
            f"{name} must be positive, got {value}"
        )
    return value


def require_probability(name: str, value: float) -> float:
    """Validate a probability in ``[0, 1)``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if not 0.0 <= value < 1.0:
        raise ConfigurationError(
            f"{name} must be in [0, 1), got {value}"
        )
    return float(value)


def require_non_empty(name: str, value: Sequence[T]) -> Sequence[T]:
    """Validate that a sequence argument has at least one element."""
    if not value:
        raise ConfigurationError(
            f"{name} must not be empty: pass at least one entry"
        )
    return value


__all__ = [
    "ReproError",
    "ConfigurationError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "CheckpointError",
    "CheckpointMismatchError",
    "TransientHarnessError",
    "ConvergenceError",
    "require_positive_duration_s",
    "require_position",
    "require_positive_int",
    "require_probability",
    "require_non_empty",
]
