"""Supervised, fault-tolerant execution for long-running campaigns.

The paper's protocol expects failures: DUEs, SEFIs and power-cycles
are logged, the device is rebooted, and the campaign continues with
fluence accounting intact.  This package gives the *virtual*
campaigns the same resilience:

* :mod:`repro.runtime.errors` — the typed exception hierarchy and
  shared argument validators;
* :mod:`repro.runtime.events` — the harness flight recorder
  (isolation, degradation, retry, checkpoint, resume, deadline);
* :mod:`repro.runtime.budget` — wall-clock deadlines, event budgets,
  and the deterministic retry-with-backoff policy;
* :mod:`repro.runtime.checkpoint` — JSON snapshots of campaign/fleet
  state (including the ``SeedSequence`` spawn position) for
  byte-identical resume;
* :mod:`repro.runtime.supervisor` — :class:`CampaignRunner` /
  :class:`FleetRunner`, the supervised drivers behind
  ``python -m repro run --resume``.

This ``__init__`` re-exports only the leaf layers (errors, events,
budgets) that low-level packages import; the supervisor and
checkpoint layers sit *above* ``repro.beam``/``repro.core`` and are
imported as submodules (``from repro.runtime.supervisor import
CampaignRunner``) to keep the dependency graph acyclic.
"""

from repro.runtime.errors import (
    BudgetExceededError,
    CheckpointError,
    CheckpointMismatchError,
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    TransientHarnessError,
    require_non_empty,
    require_position,
    require_positive_duration_s,
    require_positive_int,
    require_probability,
)
from repro.runtime.events import EventKind, EventLog, HarnessEvent
from repro.runtime.budget import Budget, BudgetTracker, RetryPolicy

__all__ = [
    "ReproError",
    "ConfigurationError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "CheckpointError",
    "CheckpointMismatchError",
    "TransientHarnessError",
    "require_non_empty",
    "require_position",
    "require_positive_duration_s",
    "require_positive_int",
    "require_probability",
    "EventKind",
    "EventLog",
    "HarnessEvent",
    "Budget",
    "BudgetTracker",
    "RetryPolicy",
]
