"""Every number the paper publishes, in one place.

The calibration constants are scattered across the modules that use
them; this registry collects the *published* values with their source
section, so benches, tests and docs cite a single source of truth.
Values are exactly as printed in the paper (DSN 2020).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PaperValue:
    """One published number.

    Attributes:
        value: the number as printed.
        units: physical units ("" for ratios/fractions).
        source: paper section/figure.
        note: what it means.
    """

    value: float
    units: str
    source: str
    note: str


#: Registry keyed by a stable slug.
PAPER_VALUES: Dict[str, PaperValue] = {
    # --- Section III-C: beamlines ---
    "chipir_flux_above_10mev": PaperValue(
        5.4e6, "n/cm^2/s", "Sec. III-C",
        "ChipIR flux with neutron energy above 10 MeV",
    ),
    "chipir_thermal_flux": PaperValue(
        4.0e5, "n/cm^2/s", "Sec. III-C",
        "ChipIR thermal (E < 0.5 eV) component",
    ),
    "rotax_thermal_flux": PaperValue(
        2.72e6, "n/cm^2/s", "Sec. III-C",
        "ROTAX thermal beam flux",
    ),
    "thermal_cutoff": PaperValue(
        0.5, "eV", "Sec. II-A",
        "upper bound of the thermal band (cadmium cutoff)",
    ),
    # --- Section II / V: boron and ratios ---
    "b10_natural_abundance": PaperValue(
        0.20, "", "Sec. II",
        "approximately 20% of naturally occurring boron is 10B",
    ),
    "bpsg_error_multiplier": PaperValue(
        8.0, "", "Sec. II (history)",
        "BPSG-era 10B increased the device error rate by 8x",
    ),
    "xeonphi_sdc_ratio": PaperValue(
        10.14, "", "Fig. 4",
        "Xeon Phi high-energy/thermal SDC cross-section ratio",
    ),
    "xeonphi_due_ratio": PaperValue(
        6.37, "", "Fig. 4",
        "Xeon Phi high-energy/thermal DUE cross-section ratio",
    ),
    "apu_cpu_gpu_due_ratio": PaperValue(
        1.18, "", "Fig. 4 / Sec. V",
        "APU CPU+GPU DUE ratio — thermals nearly as dangerous",
    ),
    "fpga_sdc_ratio": PaperValue(
        2.33, "", "Sec. V",
        "FPGA SDC cross-section ratio",
    ),
    # --- Section IV: DDR ---
    "ddr_direction_dominance": PaperValue(
        0.95, "", "Sec. IV",
        "more than 95% of errors in one flip direction",
    ),
    "ddr4_permanent_share_min": PaperValue(
        0.50, "", "Sec. IV",
        "permanent errors exceed 50% of DDR4 errors",
    ),
    "ddr3_permanent_share_max": PaperValue(
        0.30, "", "Sec. IV",
        "permanent errors below 30% of DDR3 errors",
    ),
    # --- Section VI: fluxes and environment ---
    "water_thermal_enhancement": PaperValue(
        0.24, "", "Fig. 5 / Sec. VI",
        "2 inches of water raise thermal counts by ~24%",
    ),
    "concrete_thermal_enhancement": PaperValue(
        0.20, "", "Sec. VI (literature)",
        "concrete slab raises thermal rates by up to 20%",
    ),
    "machine_room_adjustment": PaperValue(
        0.44, "", "Sec. VI",
        "overall thermal-flux increase applied to FIT graphs",
    ),
    "rain_thermal_multiplier": PaperValue(
        2.0, "", "Sec. VI (Ziegler)",
        "thunderstorm thermal flux up to 2x a sunny day",
    ),
    "max_thermal_fit_share": PaperValue(
        0.40, "", "Sec. VII",
        "thermal contribution to total error rate up to 40%",
    ),
    "xeonphi_nyc_sdc_share": PaperValue(
        0.042, "", "Sec. VI",
        "Xeon Phi thermal share of SDC FIT at NYC",
    ),
    "xeonphi_leadville_due_share": PaperValue(
        0.106, "", "Sec. VI",
        "Xeon Phi thermal share of DUE FIT at Leadville",
    ),
    "k20_leadville_sdc_share": PaperValue(
        0.29, "", "Sec. VI",
        "K20 thermal share of SDC FIT at Leadville",
    ),
    "apu_leadville_due_share": PaperValue(
        0.39, "", "Sec. VI",
        "APU CPU+GPU thermal share of DUE FIT at Leadville",
    ),
}


def paper_value(slug: str) -> float:
    """The published number for a slug.

    Raises:
        KeyError: listing valid slugs.
    """
    try:
        return PAPER_VALUES[slug].value
    except KeyError:
        raise KeyError(
            f"unknown paper value {slug!r}; valid:"
            f" {sorted(PAPER_VALUES)}"
        ) from None


def citation(slug: str) -> str:
    """Human-readable citation line for a slug."""
    entry = PAPER_VALUES[slug]
    units = f" {entry.units}" if entry.units else ""
    return f"{entry.value}{units} ({entry.source}): {entry.note}"


def all_anchors() -> Tuple[str, ...]:
    """All registered slugs, sorted."""
    return tuple(sorted(PAPER_VALUES))


__all__ = [
    "all_anchors",
    "citation",
    "paper_value",
]
