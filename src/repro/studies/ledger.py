"""The study write-ahead ledger: append-only, fsync'd, checksummed.

One JSON-lines file records everything that ever *happened* to a
study: ``study-started``, per-shard ``shard-committed`` /
``shard-failed`` / ``shard-quarantined``, and ``study-finished``.
Each line is a serde-tagged record carrying a sequence number and a
SHA-256 payload checksum; every append is flushed and fsynced before
the scheduler acts on it, so a SIGKILL at any instant loses at most
the record in flight.

Replay is strict about *corruption* and tolerant of *crashes*:

* A **torn tail** — a trailing line that is not complete, parseable
  JSON — is what a power cut or SIGKILL mid-append leaves behind.  It
  is discarded and healed (truncated away) by the next append.
* A **duplicate record** — the same sequence number with byte-equal
  content, the residue of an at-least-once retry — is skipped.
* Anything else (a checksum mismatch, a record mid-stream that does
  not parse, an out-of-order sequence number) is corruption, and
  replay refuses with :class:`LedgerError` rather than resuming from
  state it cannot trust.  A well-formed record with a bad checksum is
  *never* treated as a torn tail: torn writes produce partial lines,
  not valid JSON with wrong checksums.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Union

from repro import serde
from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.runtime.budget import RetryPolicy
from repro.runtime.checkpoint import _fsync_dir, payload_checksum
from repro.runtime.errors import (
    CheckpointError,
    TransientHarnessError,
)

__all__ = [
    "LEDGER_RECORD_TYPES",
    "LedgerError",
    "LedgerState",
    "StudyLedger",
]

#: Every record type the ledger may carry, in no particular order.
LEDGER_RECORD_TYPES = (
    "study-started",
    "shard-committed",
    "shard-failed",
    "shard-quarantined",
    "study-finished",
)


class LedgerError(CheckpointError):
    """The ledger is corrupt or inconsistent; refuse to resume."""


@dataclass
class LedgerState:
    """Replayed view of one ledger file.

    Attributes:
        records: every valid record, in sequence order.
        started: the ``study-started`` body, if present.
        committed: shard index -> ``shard-committed`` body.
        failures: shard index -> count of ``shard-failed`` records.
        quarantined: shard indices with a ``shard-quarantined``
            record.
        finished: the ``study-finished`` body, if present.
        valid_end: byte offset of the end of the last valid record
            (appends resume here, truncating any torn tail).
        torn_tail: True when a trailing partial line was discarded.
    """

    records: List[dict] = field(default_factory=list)
    started: Optional[dict] = None
    committed: Dict[int, dict] = field(default_factory=dict)
    failures: Dict[int, int] = field(default_factory=dict)
    quarantined: Set[int] = field(default_factory=set)
    finished: Optional[dict] = None
    valid_end: int = 0
    torn_tail: bool = False


def _parse_record(text: str) -> dict:
    """One ledger line -> validated record dict.

    Raises:
        LedgerError: for anything that is not a complete, correctly
            checksummed ledger record.  The *caller* decides whether
            an unparseable line is a tolerable torn tail; a parseable
            record that fails validation is always fatal, so the
            distinction is surfaced via :attr:`LedgerError.parsed`.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        error = LedgerError(f"unparseable ledger line: {text[:80]!r}")
        error.parsed = False
        return _raise(error)
    if not isinstance(data, dict):
        error = LedgerError(
            f"ledger line is not an object: {text[:80]!r}"
        )
        error.parsed = False
        return _raise(error)
    try:
        serde.check("study-ledger-record", data)
    except serde.SchemaError as exc:
        error = LedgerError(f"bad ledger record schema: {exc}")
        error.parsed = True
        return _raise(error)
    stored = data.get("checksum")
    if stored != payload_checksum(data):
        error = LedgerError(
            f"ledger record seq={data.get('seq')!r} checksum"
            " mismatch (corrupt record)"
        )
        error.parsed = True
        return _raise(error)
    if data.get("type") not in LEDGER_RECORD_TYPES:
        error = LedgerError(
            f"unknown ledger record type {data.get('type')!r}"
        )
        error.parsed = True
        return _raise(error)
    if not isinstance(data.get("seq"), int) or data["seq"] < 0:
        error = LedgerError(
            f"bad ledger sequence number {data.get('seq')!r}"
        )
        error.parsed = True
        return _raise(error)
    return data


def _raise(error: LedgerError) -> dict:
    raise error


class StudyLedger:
    """Append-only durable event log for one study.

    Args:
        path: the ledger file (created on first append).
        retry: backoff policy for transient append faults.
        sleep: injectable backoff sleeper (tests never wait).
    """

    def __init__(
        self,
        path: Union[str, Path],
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.path = Path(path)
        self._retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep if sleep is not None else time.sleep
        self._valid_end: Optional[int] = None
        self._next_seq: Optional[int] = None

    # -- replay --------------------------------------------------------

    def replay(self) -> LedgerState:
        """Read the ledger back into a :class:`LedgerState`.

        Raises:
            LedgerError: on corruption (see the module docstring for
                what is tolerated vs fatal).
        """
        obs.inc("repro_study_ledger_replays_total")
        state = LedgerState()
        if not self.path.exists():
            self._valid_end = 0
            self._next_seq = 0
            return state
        raw = self.path.read_bytes()
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            terminated = newline >= 0
            end = newline if terminated else len(raw)
            line = raw[offset:end]
            next_offset = end + 1 if terminated else len(raw)
            remainder = raw[next_offset:]
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                offset = next_offset
                continue
            try:
                record = _parse_record(text)
            except LedgerError as exc:
                if getattr(exc, "parsed", True) or remainder.strip():
                    # Corruption: a well-formed-but-invalid record,
                    # or garbage with real records after it.
                    raise
                # A trailing partial line: the torn tail of a crashed
                # append.  Discard it; the next append truncates it.
                state.torn_tail = True
                break
            seq = record["seq"]
            if seq == len(state.records):
                state.records.append(record)
                self._absorb(state, record)
            elif (
                seq < len(state.records)
                and state.records[seq] == record
            ):
                pass  # at-least-once duplicate: idempotent, skip
            else:
                raise LedgerError(
                    f"ledger sequence broken at seq={seq}"
                    f" (expected {len(state.records)})"
                )
            state.valid_end = next_offset if terminated else end
            offset = next_offset
        self._valid_end = state.valid_end
        self._next_seq = len(state.records)
        return state

    @staticmethod
    def _absorb(state: LedgerState, record: dict) -> None:
        """Fold one record into the state's derived views."""
        kind = record["type"]
        body = record.get("body", {})
        if kind == "study-started":
            if state.started is not None:
                raise LedgerError(
                    "ledger carries two study-started records"
                )
            state.started = body
        elif kind == "shard-committed":
            shard = int(body["shard"])
            if shard in state.committed:
                raise LedgerError(
                    f"shard {shard} committed twice"
                    " (double-counted result)"
                )
            state.committed[shard] = body
        elif kind == "shard-failed":
            shard = int(body["shard"])
            state.failures[shard] = state.failures.get(shard, 0) + 1
        elif kind == "shard-quarantined":
            shard = int(body["shard"])
            if shard in state.quarantined:
                raise LedgerError(
                    f"shard {shard} quarantined twice"
                )
            state.quarantined.add(shard)
        elif kind == "study-finished":
            if state.finished is not None:
                raise LedgerError(
                    "ledger carries two study-finished records"
                )
            state.finished = body

    # -- append --------------------------------------------------------

    def append(self, record_type: str, body: dict) -> dict:
        """Durably append one record; returns the written record.

        The record is written, flushed, and fsynced before this
        returns.  Transient faults (including torn writes injected at
        the ``studies.ledger_append`` fault point) are retried with
        deterministic backoff; each retry first truncates the file
        back to the last valid end, so a torn tail never survives a
        successful append.

        Raises:
            LedgerError: when every attempt failed, or on an unknown
                record type.
        """
        if record_type not in LEDGER_RECORD_TYPES:
            raise LedgerError(
                f"unknown ledger record type {record_type!r}"
            )
        if self._valid_end is None or self._next_seq is None:
            self.replay()
        record = serde.tag(
            "study-ledger-record",
            {
                "seq": self._next_seq,
                "type": record_type,
                "body": dict(body),
            },
        )
        record["checksum"] = payload_checksum(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        attempts = self._retry.delays_s() + (None,)
        anchor = self._valid_end
        for delay_s in attempts:
            try:
                # A failed attempt may have torn this record half-way
                # onto disk; roll the valid end back so the retry
                # truncates the fragment before rewriting.
                self._valid_end = anchor
                self._append_line(line, record["seq"])
            except (OSError, TransientHarnessError) as exc:
                if delay_s is None:
                    raise LedgerError(
                        f"ledger append failed after"
                        f" {len(attempts)} attempts: {exc}"
                    ) from exc
                self._sleep(delay_s)
                continue
            break
        self._next_seq += 1
        obs.inc("repro_study_ledger_appends_total")
        return record

    def _append_line(self, line: str, seq: int) -> None:
        """One durable append attempt (truncate-heal, write, fsync)."""
        payload = line.encode("utf-8")
        start = self._valid_end
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "r+b" if self.path.exists() else "wb"
        with open(self.path, mode) as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size > start:
                # Heal the torn tail of a previous failed attempt.
                handle.seek(start)
                handle.truncate()
            start = min(size, start)
            if start > 0:
                # A crash can leave a valid record without its
                # trailing newline; never glue two records together.
                handle.seek(start - 1)
                if handle.read(1) != b"\n":
                    payload = b"\n" + payload
            handle.seek(start)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(self.path.parent)
        self._valid_end = start + len(payload)
        # The chaos window: everything after the durable write, so a
        # kill here proves the record survives and a torn write here
        # proves the retry heals the tail.
        fault_point(
            "studies.ledger_append",
            path=str(self.path),
            tmp=str(self.path),
            text=line,
            offset=start,
            store=self._rogue_append,
            index=seq,
            part=line,
        )

    def _rogue_append(self, _seq: int, part: str) -> None:
        """Chaos helper: blindly re-append a line (duplicate action).

        Simulates an at-least-once double delivery; replay must skip
        the duplicate.
        """
        with open(self.path, "ab") as handle:
            handle.write(str(part).encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())

    # -- guards --------------------------------------------------------

    def require_spec_digest(self, digest: str) -> LedgerState:
        """Replay and refuse to resume under a different spec.

        Raises:
            LedgerError: when the ledger was started by a study with
                a different digest.
        """
        state = self.replay()
        if state.started is not None:
            recorded = state.started.get("digest", "")
            if recorded != digest:
                raise LedgerError(
                    f"ledger {self.path} belongs to study digest"
                    f" {recorded[:12]}..., not {digest[:12]}...;"
                    " refusing to resume"
                )
        return state
