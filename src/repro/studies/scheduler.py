"""The crash-tolerant study scheduler.

Executes a :class:`~repro.studies.spec.StudySpec`'s shard plan with
the robustness contract the runtime already gives campaigns, applied
to whole grids:

* **Durability** — every state transition is a write-ahead-ledger
  record, fsynced before the scheduler acts on it.  Re-running the
  same command after a SIGKILL replays the ledger and continues;
  committed shards are never recomputed and never double-counted.
* **At-least-once, idempotent** — a shard that crashed between its
  result write and its commit record is re-executed; its
  content-addressed result key lands on the same bytes, so the merged
  report is byte-identical either way.
* **Retry, then quarantine** — transient faults retry on the
  runtime's deterministic backoff; a shard that fails
  ``max_shard_failures`` times deterministically is quarantined as
  poison and the study completes ``degraded`` instead of wedging.
* **Engine-degradation cascade** — per-engine circuit breakers (the
  service idiom) walk batch -> deterministic -> scalar under repeated
  failures or budget pressure; every fallback is flagged on the shard
  in the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Set, Union

from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.runtime.budget import Budget, BudgetTracker, RetryPolicy
from repro.runtime.events import EventLog
from repro.runtime.supervisor import Supervisor
from repro.runtime.errors import TransientHarnessError
from repro.service.compute import CircuitBreaker
from repro.studies.evaluate import evaluate_shard
from repro.studies.ledger import StudyLedger
from repro.studies.report import StudyReport, build_report
from repro.studies.spec import Shard, StudySpec
from repro.studies.store import ShardResultStore
from repro.transport.api import LIVE_CASCADE, pick_live_engine

__all__ = ["ENGINE_CASCADE", "StudyOutcome", "StudyScheduler"]

#: Fallback order under failure or budget pressure — the shared
#: cascade policy from :mod:`repro.transport.api` (the service
#: breaker walks the same sequence).  Kept as a name here for
#: backwards compatibility.
ENGINE_CASCADE = LIVE_CASCADE


@dataclass(frozen=True)
class StudyOutcome:
    """One scheduler run's result.

    Attributes:
        status: ``complete`` / ``degraded`` / ``incomplete``.
        interrupted: True when an interrupt callback stopped the run
            between shards.
        report: the merged durable-state report.
    """

    status: str
    interrupted: bool
    report: StudyReport


class StudyScheduler:
    """Runs a study's shard plan durably (see module docstring).

    Args:
        spec: the study to run.
        ledger_path: write-ahead ledger file (created on first run;
            an existing ledger resumes, after a spec-digest check).
        store_root: content-addressed shard-result directory.
        budget: optional wall-clock/event budget; the run stops
            cleanly (``incomplete``) at the deadline, and degrades
            the engine under budget pressure before that.
        retry: transient-fault backoff policy.
        sleep: injectable backoff sleeper.
        clock: injectable monotonic clock for the budget tracker.
        interrupt: polled between shards; returning True stops the
            run cleanly (``incomplete``, ``interrupted`` flagged).
        evaluate: shard evaluation hook (tests and chaos trials
            inject failures); defaults to the real evaluator.
        max_shards: stop after committing/quarantining this many
            shards this run (``None`` = no limit) — the smoke jobs'
            deterministic mid-run stop.
        breakers: injectable per-engine circuit breakers.
    """

    def __init__(
        self,
        spec: StudySpec,
        ledger_path: Union[str, Path],
        store_root: Union[str, Path],
        budget: Optional[Budget] = None,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
        interrupt: Optional[Callable[[], bool]] = None,
        evaluate: Optional[
            Callable[[Shard, StudySpec, str], dict]
        ] = None,
        max_shards: Optional[int] = None,
        breakers: Optional[Dict[str, CircuitBreaker]] = None,
    ) -> None:
        self.spec = spec
        self.budget = budget
        self._retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep if sleep is not None else time.sleep
        self._clock = clock if clock is not None else time.monotonic
        self._interrupt = interrupt
        self._evaluate = (
            evaluate if evaluate is not None else evaluate_shard
        )
        self._max_shards = max_shards
        self.ledger = StudyLedger(
            ledger_path, retry=self._retry, sleep=self._sleep
        )
        self.store = ShardResultStore(
            store_root, retry=self._retry, sleep=self._sleep
        )
        self.breakers = (
            breakers
            if breakers is not None
            else {engine: CircuitBreaker() for engine in ENGINE_CASCADE}
        )
        self.events = EventLog()
        self._supervisor = Supervisor(
            retry=self._retry, events=self.events, sleep=self._sleep
        )
        self._committed: Dict[int, dict] = {}
        self._failures: Dict[int, int] = {}
        self._quarantined: Set[int] = set()

    # -- the run -------------------------------------------------------

    def run(self) -> StudyOutcome:
        """Execute (or resume) the study; never wedges.

        Raises:
            repro.studies.ledger.LedgerError: when the ledger is
                corrupt or belongs to a different spec — detected
                up front, never silently resumed.
        """
        with obs.span("study.run", study=self.spec.name):
            state = self.ledger.require_spec_digest(self.spec.digest())
            if state.started is None:
                self.ledger.append(
                    "study-started",
                    {
                        "digest": self.spec.digest(),
                        "name": self.spec.name,
                        "n_shards": self.spec.n_shards,
                    },
                )
            self._committed = dict(state.committed)
            self._failures = dict(state.failures)
            self._quarantined = set(state.quarantined)
            tracker = (
                BudgetTracker(self.budget, clock=self._clock)
                if self.budget is not None
                else None
            )
            interrupted = False
            resolved_this_run = 0
            for shard in self.spec.shards():
                if (
                    shard.index in self._committed
                    or shard.index in self._quarantined
                ):
                    continue
                if self._interrupt is not None and self._interrupt():
                    interrupted = True
                    break
                if tracker is not None and tracker.deadline_exceeded():
                    break
                if (
                    self._max_shards is not None
                    and resolved_this_run >= self._max_shards
                ):
                    break
                self._run_shard(shard, tracker)
                resolved_this_run += 1
            report = build_report(
                self.spec, self._replayed_state(), self.store
            )
            if (
                report.status in ("complete", "degraded")
                and state.finished is None
            ):
                self.ledger.append(
                    "study-finished", {"status": report.status}
                )
            return StudyOutcome(
                status=report.status,
                interrupted=interrupted,
                report=report,
            )

    def _replayed_state(self):
        """Fresh durable view (what a resume would actually see)."""
        return self.ledger.replay()

    # -- one shard -----------------------------------------------------

    def _run_shard(
        self, shard: Shard, tracker: Optional[BudgetTracker]
    ) -> None:
        """Drive one shard to committed or quarantined."""
        key = self.spec.shard_key(shard)
        failures = self._failures.get(shard.index, 0)
        while True:
            stored = self.store.get(key)
            if stored is not None:
                # At-least-once residue: the work is durable already
                # (this run or a killed predecessor); commit it
                # verbatim so resume stays byte-identical.
                self._commit(shard, key, stored)
                return
            engine, reason = self._pick_engine(tracker)
            try:
                payload = self._supervisor.call(
                    f"shard-{shard.index}",
                    lambda: self._dispatch(shard, engine),
                    step=shard.index,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except TransientHarnessError:
                # Retries exhausted: deterministic enough to count.
                failures = self._record_failure(
                    shard, engine, "TransientHarnessError", failures
                )
            except Exception as exc:  # noqa: BLE001 — quarantine path
                failures = self._record_failure(
                    shard, engine, type(exc).__name__, failures
                )
            else:
                self._breaker_for(engine).record_success()
                degraded = engine != self.spec.engine
                payload["degraded"] = degraded
                payload["reason"] = reason if degraded else ""
                self.store.put(key, payload)
                self._commit(shard, key, payload)
                return
            if failures >= self.spec.max_shard_failures:
                self._quarantine(shard, failures)
                return

    def _dispatch(self, shard: Shard, engine: str) -> dict:
        """One evaluation attempt (the chaos dispatch window)."""
        with obs.span(
            "study.shard", shard=shard.index, engine=engine
        ):
            fault_point(
                "studies.shard_dispatch",
                shard=shard.index,
                engine=engine,
            )
            return self._evaluate(shard, self.spec, engine)

    def _pick_engine(
        self, tracker: Optional[BudgetTracker]
    ) -> "tuple[str, str]":
        """Walk the shared cascade; returns (engine, reason).

        Negotiation policies (``auto``/``surrogate``) pass through
        to the evaluator unless a live fallback is being forced —
        the transport facade resolves them per query.
        """
        pressure = (
            tracker is not None
            and tracker.budget.wall_clock_s is not None
            and tracker.elapsed_s()
            >= 0.5 * tracker.budget.wall_clock_s
        )
        blocked = frozenset(
            engine
            for engine in LIVE_CASCADE
            if self.breakers[engine].open
        )
        engine, reason = pick_live_engine(
            self.spec.engine,
            blocked=blocked,
            budget_pressure=pressure,
        )
        if self.spec.engine not in LIVE_CASCADE and not reason:
            # Nothing forced a downgrade: keep the policy so the
            # facade can serve shielded points from the surrogate.
            return self.spec.engine, ""
        return engine, reason

    # -- durable transitions -------------------------------------------

    def _commit(self, shard: Shard, key: str, payload: dict) -> None:
        """Record a shard's durable result in the ledger."""
        self.ledger.append(
            "shard-committed",
            {
                "shard": shard.index,
                "key": key,
                "engine": payload.get("engine", self.spec.engine),
                "degraded": bool(payload.get("degraded", False)),
                "reason": payload.get("reason", ""),
            },
        )
        self._committed[shard.index] = {"shard": shard.index}
        obs.inc("repro_study_shards_total")
        if payload.get("degraded"):
            obs.inc("repro_study_shards_degraded_total")

    def _breaker_for(self, engine: str) -> CircuitBreaker:
        """Breaker bucket for an engine string.  Negotiation
        policies (``auto``/``surrogate``) resolve to live engines
        per query, so their health is charged to the cascade head."""
        if engine in self.breakers:
            return self.breakers[engine]
        return self.breakers[LIVE_CASCADE[0]]

    def _record_failure(
        self, shard: Shard, engine: str, error: str, failures: int
    ) -> int:
        """Count one deterministic shard failure durably."""
        failures += 1
        self._failures[shard.index] = failures
        self._breaker_for(engine).record_failure()
        self.ledger.append(
            "shard-failed",
            {
                "shard": shard.index,
                "engine": engine,
                "error": error,
                "failures": failures,
            },
        )
        return failures

    def _quarantine(self, shard: Shard, failures: int) -> None:
        """Mark a poison shard aside; the study degrades, not wedges."""
        attempts = self._retry.delays_s() + (None,)
        for delay_s in attempts:
            try:
                fault_point("studies.quarantine", shard=shard.index)
            except TransientHarnessError:
                if delay_s is None:
                    raise
                self._sleep(delay_s)
                continue
            break
        self.ledger.append(
            "shard-quarantined",
            {"shard": shard.index, "failures": failures},
        )
        self._quarantined.add(shard.index)
        obs.event("study.quarantine", shard=shard.index)
        obs.inc("repro_study_shards_quarantined_total")
