"""Study verbs for the FIT service: submit / status / cancel.

The :class:`StudyGateway` lets NDJSON clients drive durable studies
on a running ``repro serve`` instance.  A submitted study runs on a
background thread against the same crash-tolerant scheduler the CLI
uses — the service process dying mid-study loses nothing; resubmitting
the same spec resumes from the ledger.

Wire shapes (each is one request line; responses use the service's
standard envelope):

* ``{"id": "s1", "kind": "study-submit", "spec": {...study spec...}}``
  -> ``result`` carries the study digest and ``state``
  (``accepted`` or ``running``).
* ``{"id": "s2", "kind": "study-status", "study": "<digest>"}``
  -> ``result`` carries ``state`` (``running``/``idle``),
  ``status`` (``complete``/``degraded``/``incomplete``), and shard
  counts, all derived from the replayed ledger.
* ``{"id": "s3", "kind": "study-cancel", "study": "<digest>"}``
  -> asks the running study to stop at the next shard boundary
  (durable state is already on disk; a later submit resumes).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.runtime.errors import ConfigurationError
from repro.service.protocol import STUDY_KINDS, ServiceError
from repro.studies.ledger import LedgerError, StudyLedger
from repro.studies.scheduler import StudyOutcome, StudyScheduler
from repro.studies.spec import StudySpec

__all__ = ["STUDY_KINDS", "StudyGateway"]

#: Default seconds a draining gateway waits for running studies.
DRAIN_DEADLINE_S = 10.0


@dataclass
class _StudyJob:
    """One background study execution."""

    spec: StudySpec
    stop: threading.Event
    thread: Optional[threading.Thread] = None
    outcome: Optional[StudyOutcome] = None
    error: str = ""


class StudyGateway:
    """Background study runner behind the service's study verbs.

    Args:
        root: durable root; each study's ledger lives under its
            digest, and all studies share one content-addressed
            result store (identical shard work is computed once).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._jobs: Dict[str, _StudyJob] = {}
        self._lock = threading.Lock()

    # -- layout ----------------------------------------------------------

    def paths(self, digest: str) -> Tuple[Path, Path]:
        """(ledger path, store root) for one study digest."""
        return (
            self.root / digest[:16] / "ledger.jsonl",
            self.root / "store",
        )

    # -- verb dispatch ---------------------------------------------------

    def handle(self, data: dict) -> dict:
        """Answer one study-verb request (already JSON-decoded).

        Raises:
            ServiceError: ``bad-request`` for malformed verbs or
                specs, ``internal`` for a corrupt ledger.
        """
        kind = data.get("kind")
        if kind == "study-submit":
            return self.submit(data.get("spec"))
        if kind == "study-status":
            return self.status(self._digest_of(data))
        if kind == "study-cancel":
            return self.cancel(self._digest_of(data))
        raise ServiceError(
            "bad-request",
            f"unknown study verb {kind!r}; valid: {STUDY_KINDS}",
        )

    @staticmethod
    def _digest_of(data: dict) -> str:
        digest = data.get("study")
        if not isinstance(digest, str) or not digest:
            raise ServiceError(
                "bad-request",
                "study verb needs a non-empty string 'study'"
                " (the digest study-submit returned)",
            )
        return digest

    # -- verbs -----------------------------------------------------------

    def submit(self, spec_data) -> dict:
        """Start (or resume) a study; idempotent on the digest."""
        if not isinstance(spec_data, dict):
            raise ServiceError(
                "bad-request",
                "study-submit needs a 'spec' object",
            )
        try:
            spec = StudySpec.from_dict(spec_data)
        except ConfigurationError as exc:
            raise ServiceError(
                "bad-request", f"bad study spec: {exc}"
            ) from exc
        digest = spec.digest()
        with self._lock:
            job = self._jobs.get(digest)
            if job is not None and job.thread is not None:
                if job.thread.is_alive():
                    return {"study": digest, "state": "running"}
            job = _StudyJob(spec=spec, stop=threading.Event())
            ledger_path, store_root = self.paths(digest)
            scheduler = StudyScheduler(
                spec,
                ledger_path=ledger_path,
                store_root=store_root,
                interrupt=job.stop.is_set,
            )

            def run() -> None:
                try:
                    job.outcome = scheduler.run()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:  # noqa: BLE001 — wire boundary
                    job.error = f"{type(exc).__name__}: {exc}"

            job.thread = threading.Thread(
                target=run,
                name=f"repro-study-{digest[:8]}",
                daemon=True,
            )
            self._jobs[digest] = job
            job.thread.start()
        return {"study": digest, "state": "accepted"}

    def status(self, digest: str) -> dict:
        """Durable-state status for one study digest."""
        with self._lock:
            job = self._jobs.get(digest)
        running = (
            job is not None
            and job.thread is not None
            and job.thread.is_alive()
        )
        ledger_path, _ = self.paths(digest)
        if not ledger_path.exists():
            if job is None:
                raise ServiceError(
                    "bad-request",
                    f"unknown study {digest[:16]!r}",
                )
            # Submitted but no record durable yet.
            return {
                "study": digest,
                "state": "running" if running else "idle",
                "status": "incomplete",
                "n_shards": job.spec.n_shards,
                "committed": 0,
                "quarantined": 0,
                "error": job.error,
            }
        try:
            state = StudyLedger(ledger_path).replay()
        except LedgerError as exc:
            raise ServiceError(
                "internal", f"study ledger corrupt: {exc}"
            ) from exc
        n_shards = int((state.started or {}).get("n_shards", 0))
        pending = (
            n_shards - len(state.committed) - len(state.quarantined)
        )
        degraded = bool(state.quarantined) or any(
            body.get("degraded")
            for body in state.committed.values()
        )
        status = (
            "incomplete"
            if pending > 0
            else ("degraded" if degraded else "complete")
        )
        return {
            "study": digest,
            "state": "running" if running else "idle",
            "status": status,
            "n_shards": n_shards,
            "committed": len(state.committed),
            "quarantined": len(state.quarantined),
            "error": job.error if job is not None else "",
        }

    def cancel(self, digest: str) -> dict:
        """Stop a running study at its next shard boundary."""
        with self._lock:
            job = self._jobs.get(digest)
        if job is None:
            ledger_path, _ = self.paths(digest)
            if not ledger_path.exists():
                raise ServiceError(
                    "bad-request",
                    f"unknown study {digest[:16]!r}",
                )
            return {
                "study": digest,
                "state": "idle",
                "cancelled": False,
            }
        job.stop.set()
        running = job.thread is not None and job.thread.is_alive()
        return {
            "study": digest,
            "state": "running" if running else "idle",
            "cancelled": running,
        }

    # -- lifecycle -------------------------------------------------------

    def drain(self, deadline_s: float = DRAIN_DEADLINE_S) -> bool:
        """Stop every running study and wait for the threads.

        Durable state makes this safe at any instant; the deadline
        only bounds how long shutdown blocks.

        Returns:
            True when every study thread exited within the deadline.
        """
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            job.stop.set()
        clean = True
        for job in jobs:
            if job.thread is not None:
                job.thread.join(timeout=max(0.0, deadline_s))
                clean = clean and not job.thread.is_alive()
        return clean
