"""Durable content-addressed shard results.

The shard result store is what makes at-least-once shard execution
safe: results are keyed on ``(shard digest, seed)`` — the service
cache's key scheme — so re-executing a shard after a crash lands on
the same key with the same bytes.  Writes use the checkpoint layer's
durable idiom (tmp file, flush, fsync, atomic rename, directory
fsync) and each entry carries a serde tag plus a SHA-256 payload
checksum; an unreadable or corrupt entry is a *miss* (the shard is
deterministic, so a recompute reproduces it exactly), never a wrong
answer.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro import serde
from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.runtime.budget import RetryPolicy
from repro.runtime.checkpoint import _fsync_dir, payload_checksum
from repro.runtime.errors import TransientHarnessError
from repro.studies.ledger import LedgerError

__all__ = ["ShardResultStore"]


class ShardResultStore:
    """Content-addressed durable storage for shard result payloads.

    Args:
        root: store directory (two-level fan-out, like the service
            cache).
        retry: backoff policy for transient write faults.
        sleep: injectable backoff sleeper.
    """

    def __init__(
        self,
        root: Union[str, Path],
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.root = Path(root)
        self._retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep if sleep is not None else time.sleep

    def entry_path(self, key: str) -> Path:
        """Where one key's entry lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    # -- read ----------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt entry (unparseable, wrong schema, checksum
        mismatch) is discarded and reported as a miss — the caller
        recomputes deterministically.
        """
        path = self.entry_path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        if not isinstance(data, dict):
            self._discard(path)
            return None
        try:
            serde.check("study-shard-result", data)
        except serde.SchemaError:
            self._discard(path)
            return None
        if data.get("checksum") != payload_checksum(data):
            self._discard(path)
            return None
        return data.get("payload")

    @staticmethod
    def _discard(path: Path) -> None:
        """Drop an unreadable entry (best-effort)."""
        try:
            path.unlink()
        except OSError:
            pass

    # -- write ---------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Durably store ``payload`` under ``key``.

        Raises:
            LedgerError: when every write attempt failed — the shard
                result could not be made durable, so committing it to
                the ledger would be a lie.
        """
        record = serde.tag(
            "study-shard-result", {"key": key, "payload": payload}
        )
        record["checksum"] = payload_checksum(record)
        text = json.dumps(record, sort_keys=True)
        attempts = self._retry.delays_s() + (None,)
        for delay_s in attempts:
            try:
                self._write(key, text)
            except (OSError, TransientHarnessError) as exc:
                if delay_s is None:
                    raise LedgerError(
                        f"shard result write failed after"
                        f" {len(attempts)} attempts: {exc}"
                    ) from exc
                self._sleep(delay_s)
                continue
            return

    def _write(self, key: str, text: str) -> None:
        """One durable write attempt (tmp, fsync, rename, dir fsync)."""
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        # The chaos window: after the durable tmp write, before the
        # atomic publish — a kill here must leave the shard
        # recomputable, a duplicate here must be idempotent.
        fault_point(
            "studies.shard_commit",
            path=str(path),
            tmp=str(tmp),
            text=text,
        )
        os.replace(tmp, path)
        _fsync_dir(path.parent)
