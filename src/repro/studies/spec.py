"""Study specifications: validated axis grids and shard plans.

A :class:`StudySpec` names a grid of FIT evaluation points (the
cartesian product of its axes) and how to shard it.  Everything
downstream — ledger identity, shard cache keys, per-point RNG seeds —
derives deterministically from the spec, so two processes holding the
same spec always agree on the plan, and a sharded run is bit-equal to
the same grid run unsharded (the per-point seeds do not depend on the
sharding).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import serde
from repro.devices.catalog import DEVICES
from repro.runtime.checkpoint import plan_digest
from repro.runtime.errors import ConfigurationError
from repro.service.protocol import MAX_N_NEUTRONS, SERVICE_SITES, SHIELDS
from repro.transport.api import coerce_policy

__all__ = ["AXES", "Shard", "StudySpec"]

#: Allowed values per axis, in canonical (sorted) order.  A spec may
#: list any non-empty subset per axis; unlisted axes collapse to the
#: first canonical value.
AXES: Dict[str, Tuple[str, ...]] = {
    "cooling": ("liquid", "air", "outdoor"),
    "device": tuple(sorted(DEVICES)),
    "shield": ("none",) + tuple(sorted(SHIELDS)),
    "site": tuple(sorted(SERVICE_SITES)),
    "weather": ("sunny", "overcast", "rain"),
}

#: Default value used for axes the spec leaves out.
AXIS_DEFAULTS: Dict[str, str] = {
    "cooling": "liquid",
    "device": "K20",
    "shield": "none",
    "site": "nyc",
    "weather": "sunny",
}


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: a contiguous slice of the point grid.

    Attributes:
        index: position in the shard plan (0-based).
        points: the grid points this shard evaluates, each a full
            axis->value dict.
    """

    index: int
    points: Tuple[Dict[str, str], ...]


@dataclass(frozen=True)
class StudySpec:
    """A declarative sharded FIT study over an axis grid.

    Args:
        name: human label (also the ledger's display name).
        axes: axis name -> tuple of values; every value must belong
            to that axis's vocabulary in :data:`AXES`.  Missing axes
            take :data:`AXIS_DEFAULTS`.
        seed: master seed; per-point MC seeds derive from it and the
            point content (never from the sharding).
        n_neutrons: MC histories per shielded point.
        shard_size: grid points per shard.
        max_shard_failures: deterministic failures before a shard is
            quarantined as poison.
        engine: requested transport engine policy (the top of the
            degradation cascade; ``"auto"`` lets shielded points be
            served from a certified surrogate surface when one is
            configured).
    """

    name: str
    axes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    seed: int = 2020
    n_neutrons: int = 2048
    shard_size: int = 1
    max_shard_failures: int = 3
    engine: str = "batch"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("study name must be non-empty")
        clean: Dict[str, Tuple[str, ...]] = {}
        for axis, values in dict(self.axes).items():
            if axis not in AXES:
                raise ConfigurationError(
                    f"unknown study axis {axis!r};"
                    f" allowed: {tuple(sorted(AXES))}"
                )
            values = tuple(values)
            if not values:
                raise ConfigurationError(
                    f"axis {axis!r} must list at least one value"
                )
            if len(set(values)) != len(values):
                raise ConfigurationError(
                    f"axis {axis!r} repeats a value: {values}"
                )
            for value in values:
                if value not in AXES[axis]:
                    raise ConfigurationError(
                        f"axis {axis!r} value {value!r} not in"
                        f" {AXES[axis]}"
                    )
            clean[axis] = values
        object.__setattr__(self, "axes", clean)
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0, got {self.seed}"
            )
        if not 0 < self.n_neutrons <= MAX_N_NEUTRONS:
            raise ConfigurationError(
                f"n_neutrons must be in (0, {MAX_N_NEUTRONS}],"
                f" got {self.n_neutrons}"
            )
        if self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.max_shard_failures < 1:
            raise ConfigurationError(
                "max_shard_failures must be >= 1,"
                f" got {self.max_shard_failures}"
            )
        # Normalizes and validates in one step.
        object.__setattr__(
            self, "engine", coerce_policy(self.engine)
        )

    # -- the grid ------------------------------------------------------

    def points(self) -> List[Dict[str, str]]:
        """Every grid point, in deterministic order.

        Axes iterate in sorted-name order; values in the order the
        spec lists them.  Each point carries *all* axes (defaults
        filled in) so point digests are insensitive to which axes the
        spec spelled out.
        """
        names = sorted(AXES)
        columns = [
            self.axes.get(axis, (AXIS_DEFAULTS[axis],))
            for axis in names
        ]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*columns)
        ]

    def shards(self) -> List[Shard]:
        """The deterministic shard plan: the grid in fixed chunks."""
        points = self.points()
        return [
            Shard(
                index=i // self.shard_size,
                points=tuple(points[i : i + self.shard_size]),
            )
            for i in range(0, len(points), self.shard_size)
        ]

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        n_points = len(self.points())
        return -(-n_points // self.shard_size)

    # -- digests and seeds ---------------------------------------------

    def digest(self) -> str:
        """SHA-256 identity of the whole study (ledger guard)."""
        return plan_digest([self._body()])

    def point_seed(self, point: Dict[str, str]) -> int:
        """Deterministic MC seed for one grid point.

        Derived from the master seed and the point *content* only —
        never the sharding — so sharded and unsharded runs of the
        same grid draw identical histories.
        """
        material = hashlib.sha256(
            plan_digest(
                [
                    {
                        "point": point,
                        "seed": self.seed,
                        "n_neutrons": self.n_neutrons,
                        "engine": self.engine,
                    }
                ]
            ).encode("ascii")
        ).digest()
        return int.from_bytes(material[:4], "big")

    def shard_digest(self, shard: Shard) -> str:
        """Content digest of one shard's work (index-free)."""
        return plan_digest(
            [
                {
                    "points": list(shard.points),
                    "n_neutrons": self.n_neutrons,
                    "engine": self.engine,
                }
            ]
        )

    def shard_key(self, shard: Shard) -> str:
        """Content-addressed result key: (shard digest, seed).

        The service-cache key scheme, so identical shard work under
        the same seed lands on the same stored result no matter which
        study or attempt computed it.
        """
        return hashlib.sha256(
            f"{self.shard_digest(shard)}:{self.seed}".encode("ascii")
        ).hexdigest()

    # -- serde ---------------------------------------------------------

    def _body(self) -> dict:
        return {
            "name": self.name,
            "axes": {k: list(v) for k, v in sorted(self.axes.items())},
            "seed": self.seed,
            "n_neutrons": self.n_neutrons,
            "shard_size": self.shard_size,
            "max_shard_failures": self.max_shard_failures,
            "engine": self.engine,
        }

    def to_dict(self) -> dict:
        """Serde-tagged JSON-ready form."""
        return serde.tag("study-spec", self._body())

    @classmethod
    def from_dict(cls, data: dict) -> "StudySpec":
        """Rebuild a spec from :meth:`to_dict` or a hand-written dict.

        Hand-authored spec files may omit the serde tag; tagged input
        is version-checked.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"study spec must be an object, got {type(data).__name__}"
            )
        if serde.SCHEMA_KEY in data:
            serde.check("study-spec", data)
        known = (
            "name",
            "axes",
            "seed",
            "n_neutrons",
            "shard_size",
            "max_shard_failures",
            "engine",
        )
        extra = (
            set(data)
            - set(known)
            - {serde.SCHEMA_KEY, serde.VERSION_KEY}
        )
        if extra:
            raise ConfigurationError(
                f"unknown study spec fields: {sorted(extra)}"
            )
        if "name" not in data:
            raise ConfigurationError("study spec needs a 'name'")
        axes = data.get("axes", {})
        if not isinstance(axes, dict):
            raise ConfigurationError("'axes' must be an object")
        return cls(
            name=str(data["name"]),
            axes={k: tuple(v) for k, v in axes.items()},
            seed=int(data.get("seed", 2020)),
            n_neutrons=int(data.get("n_neutrons", 2048)),
            shard_size=int(data.get("shard_size", 1)),
            max_shard_failures=int(data.get("max_shard_failures", 3)),
            engine=str(data.get("engine", "batch")),
        )
