"""Durable sharded studies: declarative sweeps that survive crashes.

A *study* is a declarative FIT sweep over an axis grid (site x device
x weather x cooling x shielding) compiled into a deterministic shard
plan and executed by a crash-tolerant scheduler:

* :mod:`repro.studies.spec` — :class:`StudySpec`: the validated grid,
  its deterministic shard plan, and the content-addressed digests the
  durability story hangs off.
* :mod:`repro.studies.ledger` — an append-only, fsync'd write-ahead
  ledger of serde-tagged, checksummed records; a SIGKILL at any
  instant resumes byte-identically, torn tails are healed on replay.
* :mod:`repro.studies.store` — idempotent content-addressed shard
  results keyed on ``(shard digest, seed)`` (the service-cache key
  scheme).
* :mod:`repro.studies.scheduler` — :class:`StudyScheduler`:
  at-least-once shards with deterministic retry backoff, poison-shard
  quarantine after N failures, and a batch -> deterministic -> scalar
  engine-degradation cascade behind per-engine circuit breakers.
* :mod:`repro.studies.report` — the merged study report with per-shard
  degradation flags and MC tallies.
* :mod:`repro.studies.cli` / :mod:`repro.studies.service` — the
  ``repro studies`` subcommands and the NDJSON service verbs
  (``study-submit`` / ``study-status`` / ``study-cancel``).
"""

from repro.studies.ledger import LedgerError, StudyLedger
from repro.studies.report import StudyReport
from repro.studies.scheduler import StudyOutcome, StudyScheduler
from repro.studies.spec import Shard, StudySpec
from repro.studies.store import ShardResultStore

__all__ = [
    "LedgerError",
    "Shard",
    "ShardResultStore",
    "StudyLedger",
    "StudyOutcome",
    "StudyReport",
    "StudyScheduler",
    "StudySpec",
]
