"""``repro studies`` — run, plan, and report durable sharded studies.

Examples::

    python -m repro studies plan --spec study.json
    python -m repro studies run --spec study.json \\
        --ledger study.ledger --store store/
    python -m repro studies report --spec study.json \\
        --ledger study.ledger --store store/ --json report.json

``run`` is crash-tolerant by construction: re-running the identical
command after a SIGKILL (or a SIGINT, which stops cleanly between
shards) resumes from the write-ahead ledger.  The exit code
distinguishes the three terminal states:

* ``complete``   -> :attr:`~repro.exitcodes.ExitCode.OK`
* ``degraded``   -> :attr:`~repro.exitcodes.ExitCode.DEGRADED`
  (quarantined poison shards and/or engine fallbacks — results
  present, flags raised)
* ``incomplete`` -> :attr:`~repro.exitcodes.ExitCode.INCOMPLETE`
  (shards pending: deadline, ``--max-shards``, or interrupt; an
  interrupt exits :attr:`~repro.exitcodes.ExitCode.INTERRUPTED`)
"""

from __future__ import annotations

import argparse
import json
import signal
from pathlib import Path

from repro.exitcodes import ExitCode
from repro.runtime.budget import Budget
from repro.runtime.errors import ConfigurationError
from repro.studies.ledger import LedgerError, StudyLedger
from repro.studies.report import build_report
from repro.studies.scheduler import StudyScheduler
from repro.studies.spec import StudySpec
from repro.studies.store import ShardResultStore

__all__ = ["add_studies_arguments", "run_studies"]


def _load_spec(path: str) -> StudySpec:
    """Read and validate a study spec file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"spec file not found: {path}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"spec file is not JSON: {exc}")
    return StudySpec.from_dict(data)


def add_studies_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``studies`` sub-subcommands to ``parser``."""
    sub = parser.add_subparsers(dest="studies_command", required=True)

    p = sub.add_parser(
        "plan", help="print the deterministic shard plan of a spec"
    )
    p.add_argument(
        "--spec", required=True, help="study spec JSON file"
    )
    p.set_defaults(studies_func=_cmd_plan)

    p = sub.add_parser(
        "run", help="execute (or resume) a study durably"
    )
    p.add_argument(
        "--spec", required=True, help="study spec JSON file"
    )
    p.add_argument(
        "--ledger", required=True,
        help="write-ahead ledger path (re-use to resume)",
    )
    p.add_argument(
        "--store", required=True,
        help="content-addressed shard-result directory",
    )
    p.add_argument(
        "--deadline-s", type=float, default=None,
        help="wall-clock budget in seconds (stops incomplete)",
    )
    p.add_argument(
        "--max-shards", type=int, default=None,
        help="resolve at most this many shards this run, then stop",
    )
    p.add_argument(
        "--json", default="",
        help="write the study report JSON to this path",
    )
    p.set_defaults(studies_func=_cmd_run)

    p = sub.add_parser(
        "report",
        help="rebuild the merged report from durable state only",
    )
    p.add_argument(
        "--spec", required=True, help="study spec JSON file"
    )
    p.add_argument(
        "--ledger", required=True, help="write-ahead ledger path"
    )
    p.add_argument(
        "--store", required=True,
        help="content-addressed shard-result directory",
    )
    p.add_argument(
        "--json", default="",
        help="write the report JSON to this path",
    )
    p.set_defaults(studies_func=_cmd_report)


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    print(
        f"study {spec.name} [{spec.digest()[:12]}]:"
        f" {len(spec.points())} points in {spec.n_shards} shards"
        f" of {spec.shard_size}"
    )
    for shard in spec.shards():
        labels = ",".join(
            "/".join(point[axis] for axis in sorted(point))
            for point in shard.points
        )
        print(
            f"  shard {shard.index}"
            f" [{spec.shard_key(shard)[:12]}]: {labels}"
        )
    return ExitCode.OK


_STATUS_EXIT = {
    "complete": ExitCode.OK,
    "degraded": ExitCode.DEGRADED,
    "incomplete": ExitCode.INCOMPLETE,
}


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    budget = (
        Budget(wall_clock_s=args.deadline_s)
        if args.deadline_s is not None
        else None
    )
    # Graceful interrupt, mirroring `repro run`: the scheduler polls
    # the flag between shards, so the in-flight ledger append still
    # lands and the study resumes exactly where it stopped.
    interrupt_flag = {"hit": False}

    def _on_signal(signum: int, frame) -> None:
        del signum, frame
        interrupt_flag["hit"] = True

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(
                signum, _on_signal
            )
        except (ValueError, OSError):
            break
    scheduler = StudyScheduler(
        spec,
        ledger_path=args.ledger,
        store_root=args.store,
        budget=budget,
        interrupt=lambda: interrupt_flag["hit"],
        max_shards=args.max_shards,
    )
    try:
        outcome = scheduler.run()
    except LedgerError as exc:
        print(f"ledger error: {exc}")
        print(
            "the ledger was not used; move it aside to start over,"
            " or restore an uncorrupted copy to resume"
        )
        return ExitCode.CHECKPOINT
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
    print(outcome.report.to_text())
    if args.json:
        Path(args.json).write_text(
            json.dumps(outcome.report.to_dict(), sort_keys=True)
        )
        print(f"report written to {args.json}")
    if outcome.status == "incomplete":
        print(
            f"resume with: python -m repro studies run"
            f" --spec {args.spec} --ledger {args.ledger}"
            f" --store {args.store}"
        )
    if outcome.interrupted:
        print("INTERRUPTED: stopped cleanly between shards")
        return ExitCode.INTERRUPTED
    return _STATUS_EXIT[outcome.status]


def _cmd_report(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    ledger = StudyLedger(args.ledger)
    try:
        state = ledger.replay()
    except LedgerError as exc:
        print(f"ledger error: {exc}")
        return ExitCode.CHECKPOINT
    report = build_report(spec, state, ShardResultStore(args.store))
    print(report.to_text())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), sort_keys=True)
        )
        print(f"report written to {args.json}")
    return ExitCode.OK


def run_studies(args: argparse.Namespace) -> int:
    """Entry point for the ``studies`` subcommand."""
    try:
        return args.studies_func(args)
    except ConfigurationError as exc:
        print(f"usage error: {exc}")
        return ExitCode.USAGE
