"""The merged study report: rows, tallies, degradation flags.

Built purely from durable state (the replayed ledger plus the
content-addressed result store), so the report after a kill-and-resume
is byte-identical to the report of an uninterrupted run — the chaos
invariant cells diff exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import serde
from repro.studies.evaluate import evaluate_shard
from repro.studies.ledger import LedgerState
from repro.studies.spec import StudySpec
from repro.studies.store import ShardResultStore

__all__ = ["StudyReport", "build_report"]


@dataclass(frozen=True)
class StudyReport:
    """One study's merged, durable-state-derived result.

    Attributes:
        name: the spec's study name.
        digest: the spec digest the ledger is bound to.
        status: ``complete`` (every shard committed cleanly),
            ``degraded`` (all shards resolved, but some quarantined
            or served by a fallback engine), or ``incomplete``
            (shards still pending).
        n_shards: shard-plan size.
        committed: sorted committed shard indices.
        quarantined: sorted poison-shard indices.
        degraded_shards: per-shard degradation flags
            ``(shard, engine, reason)`` for every committed shard
            that fell back.
        rows: per-point result rows in grid order.
        tallies: merged MC tallies across all committed shards.
    """

    name: str
    digest: str
    status: str
    n_shards: int
    committed: Tuple[int, ...]
    quarantined: Tuple[int, ...]
    degraded_shards: Tuple[Dict[str, object], ...]
    rows: Tuple[dict, ...]
    tallies: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serde-tagged JSON-ready form."""
        return serde.tag(
            "study-report",
            {
                "name": self.name,
                "digest": self.digest,
                "status": self.status,
                "n_shards": self.n_shards,
                "committed": list(self.committed),
                "quarantined": list(self.quarantined),
                "degraded_shards": [
                    dict(d) for d in self.degraded_shards
                ],
                "rows": [dict(r) for r in self.rows],
                "tallies": dict(self.tallies),
            },
        )

    def to_text(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"study {self.name} [{self.digest[:12]}]: {self.status}",
            f"  shards: {len(self.committed)}/{self.n_shards}"
            f" committed, {len(self.quarantined)} quarantined,"
            f" {len(self.degraded_shards)} degraded",
        ]
        for entry in self.degraded_shards:
            lines.append(
                f"  degraded shard {entry['shard']}:"
                f" engine={entry['engine']}"
                f" reason={entry['reason']}"
            )
        for shard in self.quarantined:
            lines.append(f"  quarantined shard {shard}: poison")
        tallies = self.tallies
        lines.append(
            "  tallies: source={mc_source}"
            " transmitted_thermal={mc_transmitted_thermal}".format(
                **tallies
            )
        )
        for row in self.rows:
            point = row["point"]
            label = "/".join(
                point[axis]
                for axis in (
                    "site",
                    "device",
                    "weather",
                    "cooling",
                    "shield",
                )
            )
            lines.append(
                f"  {label}: FIT={row['shielded_total_fit']:.3f}"
            )
        return "\n".join(lines)


def build_report(
    spec: StudySpec,
    state: LedgerState,
    store: Optional[ShardResultStore],
) -> StudyReport:
    """Assemble the report for ``spec`` from durable state.

    A committed shard whose store entry went missing is recomputed
    in place (shards are deterministic), keeping the report total —
    never silently dropped.
    """
    shards = spec.shards()
    rows: List[dict] = []
    tallies = {"mc_source": 0, "mc_transmitted_thermal": 0}
    degraded: List[Dict[str, object]] = []
    for shard in shards:
        body = state.committed.get(shard.index)
        if body is None:
            continue
        payload = (
            store.get(spec.shard_key(shard))
            if store is not None
            else None
        )
        if payload is None:
            payload = evaluate_shard(
                shard, spec, str(body.get("engine", spec.engine))
            )
        rows.extend(payload["rows"])
        for key in tallies:
            tallies[key] += int(payload["tallies"][key])
        if body.get("degraded"):
            degraded.append(
                {
                    "shard": shard.index,
                    "engine": body.get("engine", ""),
                    "reason": body.get("reason", ""),
                }
            )
    committed = tuple(sorted(state.committed))
    quarantined = tuple(sorted(state.quarantined))
    pending = len(shards) - len(committed) - len(quarantined)
    if pending > 0:
        status = "incomplete"
    elif quarantined or degraded:
        status = "degraded"
    else:
        status = "complete"
    return StudyReport(
        name=spec.name,
        digest=spec.digest(),
        status=status,
        n_shards=len(shards),
        committed=committed,
        quarantined=quarantined,
        degraded_shards=tuple(degraded),
        rows=tuple(rows),
        tallies=tallies,
    )
