"""Shard evaluation: grid points -> FIT rows and MC tallies.

One grid point is a (site, device, weather, cooling, shield) tuple.
Evaluation builds the paper's flux scenario for it, computes the full
SDC+DUE FIT decomposition, and — when the point is shielded — runs
shield transmission on the requested engine to scale the thermal FIT
contribution.  Per-point MC seeds come from the spec (derived from
point content, not sharding), so a sharded study merges to exactly
the tallies of the same grid run unsharded.
"""

from __future__ import annotations

from typing import Dict

from repro.core.fit import FitCalculator
from repro.devices import get_device
from repro.environment import (
    WeatherCondition,
    datacenter_scenario,
    outdoor_scenario,
)
from repro.service.protocol import SERVICE_SITES, SHIELDS
from repro.spectra.beamlines import rotax_spectrum
from repro.studies.spec import Shard, StudySpec
from repro.transport.api import TransportQuery, answer

__all__ = ["evaluate_shard"]

_WEATHER = {
    "sunny": WeatherCondition.SUNNY,
    "overcast": WeatherCondition.OVERCAST,
    "rain": WeatherCondition.RAIN,
}


def evaluate_point(
    point: Dict[str, str],
    n_neutrons: int,
    seed: int,
    engine: str,
) -> dict:
    """Evaluate one grid point; returns a JSON-ready row."""
    site = SERVICE_SITES[point["site"]]
    weather = _WEATHER[point["weather"]]
    if point["cooling"] == "outdoor":
        scenario = outdoor_scenario(site, weather=weather)
    else:
        scenario = datacenter_scenario(
            site,
            liquid_cooled=point["cooling"] == "liquid",
            weather=weather,
        )
    device = get_device(point["device"])
    report = FitCalculator().report(device, scenario)
    fit_thermal = report.sdc.fit_thermal + report.due.fit_thermal
    fit_high_energy = (
        report.sdc.fit_high_energy + report.due.fit_high_energy
    )
    row = {
        "point": dict(point),
        "scenario": scenario.label,
        "fit_thermal": fit_thermal,
        "fit_high_energy": fit_high_energy,
        "total_fit": report.total_fit,
        "shielded_total_fit": report.total_fit,
        "shield_transmission": None,
        "engine": "",
        "mc_source": 0,
        "mc_transmitted_thermal": 0,
    }
    if point["shield"] != "none":
        material, thickness_cm = SHIELDS[point["shield"]]
        served = answer(
            TransportQuery(
                mode="transmission",
                material=material,
                thickness_cm=thickness_cm,
                source_spectrum=rotax_spectrum(),
                n_neutrons=n_neutrons,
                seed=seed,
                engine=engine,
            )
        )
        result = served.result
        fraction = result.thermal_transmission_fraction()
        row["shield_transmission"] = fraction
        # The engine that actually answered, not the policy asked
        # for — "auto" may resolve to the surrogate or any live
        # engine.
        row["engine"] = served.provenance.engine
        row["shielded_total_fit"] = (
            fit_high_energy + fit_thermal * fraction
        )
        if served.provenance.engine in ("batch", "scalar"):
            # MC engines count histories; the deterministic solver
            # and the surrogate answer in fractions (no tallies to
            # merge).
            row["mc_source"] = int(result.source)
            row["mc_transmitted_thermal"] = int(
                result.transmitted_thermal
            )
    return row


def evaluate_shard(shard: Shard, spec: StudySpec, engine: str) -> dict:
    """Evaluate every point in a shard; returns the shard payload."""
    rows = [
        evaluate_point(
            point,
            n_neutrons=spec.n_neutrons,
            # point_seed() hashes the spec seed with the point's
            # content — deterministic, sharding-independent.
            seed=spec.point_seed(point),  # repro: noqa REP101
            engine=engine,
        )
        for point in shard.points
    ]
    return {
        "shard": shard.index,
        "engine": engine,
        "rows": rows,
        "tallies": {
            "mc_source": sum(r["mc_source"] for r in rows),
            "mc_transmitted_thermal": sum(
                r["mc_transmitted_thermal"] for r in rows
            ),
        },
    }
