"""Query execution: worker pool, bounded retry, circuit breaker.

The execution layer turns a validated
:class:`~repro.service.protocol.Query` into a plain result dict,
surviving the ways real compute backends die:

* **Transient faults** are retried with the supervisor's bounded
  deterministic backoff (:class:`~repro.runtime.supervisor.Supervisor`
  around every dispatch).
* **Worker death** (a SIGKILL'd pool process) breaks the pool; the
  executor rebuilds it and recomputes the query in-process, flagging
  the response ``degraded`` — the service answer is late, never
  wrong, never a hang.
* **Repeated shard/worker failure** trips a :class:`CircuitBreaker`
  that blocks the batch engine; blocked transmission queries walk
  the shared cascade policy of :mod:`repro.transport.api`
  (batch -> deterministic -> scalar, same as the studies scheduler)
  until enough consecutive successes close the breaker again.

``_execute_query`` is a module-level function on purpose: it must be
picklable for the ``fork`` process pool, and it hosts the
``service.dispatch`` fault point so chaos can kill a *worker*
mid-query.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.chaos.faultpoints import fault_point
from repro.core.fit import FitCalculator
from repro.devices import get_device
from repro.environment import (
    WeatherCondition,
    datacenter_scenario,
    outdoor_scenario,
)
from repro.faults.models import BeamKind, Outcome
from repro.obs import core as obs
from repro.runtime.budget import RetryPolicy
from repro.runtime.events import EventLog
from repro.runtime.supervisor import Supervisor
from repro.service.protocol import SERVICE_SITES, SHIELDS, Query
from repro.spectra.beamlines import rotax_spectrum
from repro.transport.api import AccuracyTarget, TransportQuery, answer

__all__ = [
    "CircuitBreaker",
    "ExecutionOutcome",
    "QueryExecutor",
]


def _scenario(payload: dict):
    """Build the flux scenario a query describes."""
    site = SERVICE_SITES[payload["site"]]
    weather = (
        WeatherCondition.RAIN
        if payload["rain"]
        else WeatherCondition.SUNNY
    )
    if payload["room"]:
        return datacenter_scenario(
            site,
            liquid_cooled=not payload["air_cooled"],
            weather=weather,
        )
    return outdoor_scenario(site, weather=weather)


def _decomposition(decomp) -> dict:
    """JSON-ready form of one FIT decomposition."""
    return {
        "fit_high_energy": decomp.fit_high_energy,
        "fit_thermal": decomp.fit_thermal,
        "total": decomp.total,
        "thermal_share": (
            decomp.thermal_share if decomp.total > 0.0 else None
        ),
    }


def _fit(payload: dict) -> dict:
    """FIT decomposition for a device in a scenario."""
    device = get_device(payload["device"])
    scenario = _scenario(payload)
    code = payload["code"] or None
    report = FitCalculator().report(device, scenario, code)
    return {
        "device": device.name,
        "code": payload["code"],
        "scenario": scenario.label,
        "sdc": _decomposition(report.sdc),
        "due": _decomposition(report.due),
        "total_fit": report.total_fit,
        "mtbf_h": (
            report.mtbf_hours() if report.total_fit > 0.0 else None
        ),
    }


def _cross_section(payload: dict) -> dict:
    """Per-beam cross sections and HE/thermal ratios."""
    device = get_device(payload["device"])
    code = payload["code"] or None
    out: dict = {"device": device.name, "code": payload["code"]}
    for outcome in (Outcome.SDC, Outcome.DUE):
        sigma_he = device.sigma(BeamKind.HIGH_ENERGY, outcome, code)
        sigma_th = device.sigma(BeamKind.THERMAL, outcome, code)
        out[outcome.value.lower()] = {
            "sigma_high_energy_cm2": sigma_he,
            "sigma_thermal_cm2": sigma_th,
            "ratio": (
                sigma_he / sigma_th if sigma_th > 0.0 else None
            ),
        }
    return out


def _flux(payload: dict) -> dict:
    """Environmental flux description of a scenario."""
    scenario = _scenario(payload)
    return {
        "scenario": scenario.label,
        "fast_flux_per_h": scenario.fast_flux_per_h(),
        "thermal_flux_per_h": scenario.thermal_flux_per_h(),
        "thermal_to_fast_ratio": scenario.thermal_to_fast_ratio(),
    }


def _transmission(payload: dict) -> dict:
    """Shield transmission through the transport facade.

    The facade negotiates who answers: a certified surrogate
    surface, or a live engine picked by the shared cascade policy
    (``payload["blocked"]`` lists engines the breaker disabled).
    """
    material = SHIELDS[payload["shield"]][0]
    served = answer(
        TransportQuery(
            mode="transmission",
            material=material,
            thickness_cm=payload["thickness_cm"],
            source_spectrum=rotax_spectrum(),
            n_neutrons=payload["n_neutrons"],
            seed=payload["seed"],
            engine=payload["engine"],
            accuracy=AccuracyTarget(
                rel_err=payload.get("rel_err", 0.05),
                confidence=payload.get("confidence", 0.95),
            ),
        ),
        blocked=frozenset(payload.get("blocked", ())),
    )
    result = served.result
    return {
        "shield": payload["shield"],
        "thickness_cm": payload["thickness_cm"],
        # The engine that actually answered (the policy asked for
        # is in provenance.requested_engine).
        "engine": served.provenance.engine,
        "thermal_transmission": (
            result.thermal_transmission_fraction()
        ),
        "transport": result.to_dict(),
        "provenance": served.provenance.to_dict(),
    }


_KIND_HANDLERS = {
    "fit": _fit,
    "cross-section": _cross_section,
    "flux": _flux,
    "transmission": _transmission,
}


def _execute_query(payload: dict) -> dict:
    """Compute one canonical query payload (pool-worker entry).

    Module-level and dict-in/dict-out so the ``fork`` pool can pickle
    both ends; the ``service.dispatch`` fault point sits before any
    RNG work so a retried query replays identical draws.
    """
    fault_point("service.dispatch", kind=payload.get("kind", ""))
    return _KIND_HANDLERS[payload["kind"]](payload)


class CircuitBreaker:
    """Consecutive-failure breaker over the batch transport engine.

    Deterministic on purpose — no clocks, no probabilities: the
    breaker opens after ``failure_threshold`` consecutive dispatch
    failures and closes again after ``recovery_successes``
    consecutive successes, so chaos trials can assert its exact
    state.

    Args:
        failure_threshold: consecutive failures that open it.
        recovery_successes: consecutive successes that close it.
    """

    def __init__(
        self,
        failure_threshold: int = 2,
        recovery_successes: int = 4,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1,"
                f" got {failure_threshold}"
            )
        if recovery_successes < 1:
            raise ValueError(
                "recovery_successes must be >= 1,"
                f" got {recovery_successes}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_successes = recovery_successes
        self._consecutive_failures = 0
        self._successes_while_open = 0
        self._open = False

    @property
    def open(self) -> bool:
        """True while batch-engine dispatch is disabled."""
        return self._open

    def record_failure(self) -> None:
        """Count one dispatch failure; may open the breaker."""
        self._consecutive_failures += 1
        self._successes_while_open = 0
        if self._consecutive_failures >= self.failure_threshold:
            self._open = True
        obs.set_gauge(
            "repro_service_breaker_open", 1.0 if self._open else 0.0
        )

    def record_success(self) -> None:
        """Count one clean dispatch; may close the breaker."""
        self._consecutive_failures = 0
        if self._open:
            self._successes_while_open += 1
            if self._successes_while_open >= self.recovery_successes:
                self._open = False
                self._successes_while_open = 0
        obs.set_gauge(
            "repro_service_breaker_open", 1.0 if self._open else 0.0
        )


@dataclass(frozen=True)
class ExecutionOutcome:
    """One executed query: its result plus degradation flags.

    Attributes:
        result: the computed result dict.
        degraded: True when the service had to fall back (worker
            death recompute, breaker-forced engine downgrade,
            surrogate fallback).
        reason: machine-readable degradation cause (``""`` = clean;
            e.g. ``worker-retry`` / ``breaker-open``).
        provenance: the transport facade's provenance block, for
            kinds that have one (transmission).
    """

    result: dict
    degraded: bool = False
    reason: str = ""
    provenance: Optional[dict] = None


class QueryExecutor:
    """Executes queries with retry, pooling, and degradation.

    Args:
        n_workers: transmission queries dispatch to a ``fork``
            process pool of this size when > 1 (other kinds are
            cheap and always run in-process).
        retry: transient-fault backoff policy around every dispatch.
        sleep: injectable backoff sleeper.
        breaker: injectable circuit breaker (tests/chaos assert its
            transitions).
    """

    def __init__(
        self,
        n_workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.n_workers = n_workers
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker()
        )
        self.events = EventLog()
        self._supervisor = Supervisor(
            retry=retry,
            events=self.events,
            sleep=time.sleep if sleep is None else sleep,
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Queries actually computed (the coalescing tests' witness).
        self.compute_count = 0

    # -- lifecycle -----------------------------------------------------

    def warm(self) -> None:
        """Pre-spawn the worker pool from the current thread.

        Forking from the main thread before the server's event loop
        and executor threads exist avoids fork-while-threaded
        hazards; a no-op for in-process executors.
        """
        if self.n_workers > 1:
            self._ensure_pool()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            # Spawn the workers eagerly so they inherit current
            # process state (the chaos controller, for one).
            self._pool.submit(_noop).result()
        return self._pool

    # -- execution -----------------------------------------------------

    def execute(self, query: Query) -> ExecutionOutcome:
        """Compute one query; degrade rather than fail or hang."""
        payload = query.to_dict()
        if query.kind == "transmission" and self.breaker.open:
            # Hand the open breaker to the shared cascade policy
            # (transport.api) instead of hard-coding a downgrade —
            # batch-blocked queries walk batch -> deterministic ->
            # scalar, same as the studies scheduler.
            payload["blocked"] = ["batch"]
        result, worker_died = self._supervisor.call(
            query.kind, lambda: self._dispatch(payload)
        )
        self.compute_count += 1
        provenance = (
            result.get("provenance")
            if isinstance(result, dict)
            else None
        )
        degraded = bool(provenance and provenance.get("degraded"))
        reason = (
            str(provenance.get("reason", "")) if degraded else ""
        )
        if worker_died:
            degraded = True
            reason = reason or "worker-retry"
            self.breaker.record_failure()
        elif query.kind == "transmission":
            if result.get("transport", {}).get("degraded_shards", 0):
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        if degraded:
            obs.inc("repro_service_degraded_total")
        return ExecutionOutcome(
            result=result,
            degraded=degraded,
            reason=reason,
            provenance=provenance,
        )

    def _dispatch(self, payload: dict) -> Tuple[dict, bool]:
        """Run one payload; survive pool-worker death.

        Returns:
            ``(result, worker_died)`` — when the pool broke (a
            worker was SIGKILL'd mid-query) the result comes from an
            in-process recompute and ``worker_died`` is True.
        """
        if self.n_workers <= 1 or payload["kind"] != "transmission":
            return _execute_query(payload), False
        try:
            pool = self._ensure_pool()
            return pool.submit(_execute_query, payload).result(), False
        except BrokenProcessPool:
            self.close()
            return _execute_query(payload), True


def _noop() -> None:
    """Pool warm-up task (forces eager worker spawn)."""
