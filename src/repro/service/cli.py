"""``repro serve`` — boot the FIT query service.

Wires the service stack (cache, executor, admission, coalescer) to
an asyncio TCP server, installs SIGINT/SIGTERM handlers for graceful
shutdown, and prints the bound address on stdout in a
machine-parseable line (``--port 0`` asks the kernel for an
ephemeral port; CI's smoke job parses the line to find it).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
from pathlib import Path
from typing import Dict, Optional, Set

from repro.exitcodes import ExitCode
from repro.obs import core as obs
from repro.obs.metrics import MetricsRegistry
from repro.runtime.budget import Budget
from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.compute import QueryExecutor
from repro.service.server import FitService
from repro.studies.service import StudyGateway
from repro.transport import api as transport_api

__all__ = ["add_serve_arguments", "load_plans", "run_serve"]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro serve`` arguments to a subparser."""
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: %(default)s)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=7920,
        help="TCP port to bind; 0 = ephemeral (default: %(default)s)",
    )
    parser.add_argument(
        "--plan-root",
        type=Path,
        default=None,
        help="directory of *.json query presets clients may"
        " reference by plan name",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="durable result-cache directory (default: no cache)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="transmission worker processes (default: %(default)s)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="global concurrent-query ceiling (default: %(default)s)",
    )
    parser.add_argument(
        "--tenant-events",
        type=int,
        default=0,
        help="per-tenant query budget; 0 = unbudgeted"
        " (default: %(default)s)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="write an observability trace to this JSONL path",
    )
    parser.add_argument(
        "--study-root",
        type=Path,
        default=None,
        help="durable root for study ledgers and shard results;"
        " enables the study-submit/status/cancel verbs",
    )
    parser.add_argument(
        "--surrogate-root",
        type=Path,
        default=None,
        help="directory of certified surrogate artifacts (from"
        " 'repro surrogate build'); enables sub-millisecond"
        " surrogate answers for engine=auto/surrogate queries",
    )
    parser.add_argument(
        "--drain-s",
        type=float,
        default=5.0,
        help="seconds to let in-flight work finish after"
        " SIGINT/SIGTERM before cancelling (default: %(default)s)",
    )


def load_plans(plan_root: Optional[Path]) -> Dict[str, dict]:
    """Load named query presets from ``<plan_root>/*.json``.

    Each file's stem is the plan name; unparsable files are skipped
    with a warning line rather than aborting boot.
    """
    plans: Dict[str, dict] = {}
    if plan_root is None or not plan_root.is_dir():
        return plans
    for path in sorted(plan_root.glob("*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(
                f"repro serve: skipping plan {path.name}: {exc}",
                flush=True,
            )
            continue
        if isinstance(data, dict):
            plans[path.stem] = data
    return plans


def run_serve(args: argparse.Namespace) -> int:
    """Entry point for ``repro serve``; blocks until shutdown.

    Exits :data:`ExitCode.INTERRUPTED` after a graceful
    SIGINT/SIGTERM shutdown, mirroring ``repro run``: the service
    stops accepting, drains in-flight work within ``--drain-s``,
    flushes metrics, and only then returns.
    """
    cache = (
        ResultCache(args.cache_dir)
        if args.cache_dir is not None
        else None
    )
    surrogate_root = getattr(args, "surrogate_root", None)
    if surrogate_root is not None:
        # Configure the process-wide store before the pool warms so
        # forked transmission workers inherit it.
        transport_api.configure(str(surrogate_root))
    executor = QueryExecutor(n_workers=args.workers)
    executor.warm()
    default_budget = (
        Budget(max_events=args.tenant_events)
        if args.tenant_events > 0
        else None
    )
    studies = (
        StudyGateway(args.study_root)
        if args.study_root is not None
        else None
    )
    service = FitService(
        executor=executor,
        cache=cache,
        admission=AdmissionController(
            max_inflight=args.max_inflight,
            default_budget=default_budget,
        ),
        plans=load_plans(args.plan_root),
        studies=studies,
    )
    observer = obs.Observer(
        trace_path=args.trace, registry=MetricsRegistry()
    )
    interrupted = False
    try:
        with obs.observing(observer):
            if cache is not None:
                obs.inc(
                    "repro_service_cache_swept_total",
                    cache.swept_on_init,
                )
            interrupted = asyncio.run(
                _serve_async(
                    service,
                    args.host,
                    args.port,
                    drain_s=args.drain_s,
                )
            )
            if studies is not None:
                studies.drain(args.drain_s)
    finally:
        service.close()
    if interrupted:
        return int(ExitCode.INTERRUPTED)
    return int(ExitCode.OK)


async def _serve_async(
    service: FitService,
    host: str,
    port: int,
    drain_s: float = 5.0,
) -> bool:
    """Run the TCP server until SIGINT/SIGTERM.

    Returns:
        True when shutdown was triggered by a signal (always, at
        present — the server has no other way to stop).
    """
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            signal.signal(signum, lambda *_: stop.set())
    connections: Set["asyncio.Task"] = set()

    async def handle(reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            connections.add(task)
            task.add_done_callback(connections.discard)
        await service.handle_connection(reader, writer)

    server = await asyncio.start_server(handle, host, port)
    addr = server.sockets[0].getsockname()
    print(
        f"repro service listening on {addr[0]}:{addr[1]}",
        flush=True,
    )
    interrupted = False
    try:
        await stop.wait()
        interrupted = True
    finally:
        # Stop accepting, then give in-flight work a bounded window
        # before cancelling what remains.
        service.begin_shutdown()
        server.close()
        deadline = loop.time() + max(0.0, drain_s)
        try:
            await asyncio.wait_for(
                service.coalescer.drain(),
                timeout=max(0.0, deadline - loop.time()),
            )
        except asyncio.TimeoutError:
            pass
        if connections:
            # Idle NDJSON connections never end on their own; the
            # deadline bounds how long a busy one may hold shutdown.
            await asyncio.wait(
                list(connections),
                timeout=max(0.0, deadline - loop.time()),
            )
        for task in list(connections):
            task.cancel()
        if connections:
            await asyncio.gather(
                *connections, return_exceptions=True
            )
        try:
            # 3.12.1+ waits for connection handlers here; ours are
            # already cancelled, so this should be instant — the
            # timeout is a belt against stragglers.
            await asyncio.wait_for(server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:
            pass
        for signum in installed:
            loop.remove_signal_handler(signum)
    print("repro service: clean shutdown", flush=True)
    return interrupted
