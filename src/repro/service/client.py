"""Blocking NDJSON client for the FIT query service.

:class:`ServiceClient` owns its own timeout and retry policy,
independent of the server's: connection failures and dropped sockets
are retried with the same bounded deterministic backoff the runtime
uses (:class:`~repro.runtime.budget.RetryPolicy`), reconnecting
between attempts.  Structured server errors are surfaced as
:class:`~repro.service.protocol.ServiceError` — they are *answers*,
not transport failures, and are never retried here (the error code
tells the caller which ones are worth retrying).
"""

from __future__ import annotations

import json
import socket
import time
from typing import Callable, Optional

from repro.runtime.budget import RetryPolicy
from repro.service.protocol import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Synchronous client speaking the service's NDJSON protocol.

    Args:
        host: server host.
        port: server port.
        timeout_s: socket timeout per I/O operation, and the
            default ``timeout_ms`` advertised to the server.
        retry: transport-failure backoff policy.
        sleep: injectable backoff sleeper.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._retry = retry if retry is not None else RetryPolicy()
        self._sleep = time.sleep if sleep is None else sleep
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- transport -----------------------------------------------------

    def _connect(self):
        """Ensure a live connection; return its buffered file."""
        if self._file is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._file = self._sock.makefile("rwb")
        return self._file

    def _disconnect(self) -> None:
        """Drop the current connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the client's connection."""
        self._disconnect()

    def _exchange(self, line: bytes) -> bytes:
        """One request/response round trip on a live connection."""
        handle = self._connect()
        handle.write(line)
        handle.flush()
        response = handle.readline()
        if not response:
            raise ConnectionError(
                "service closed the connection mid-request"
            )
        return response

    def request(self, body: dict) -> dict:
        """Send one raw request dict; return the decoded response.

        Transport failures (refused/reset/closed connections) are
        retried with backoff on a fresh connection; the last failure
        propagates.
        """
        line = (
            json.dumps(body, sort_keys=True).encode("utf-8") + b"\n"
        )
        for delay_s in self._retry.delays_s():
            try:
                return json.loads(self._exchange(line))
            except (OSError, ConnectionError, ValueError):
                self._disconnect()
                self._sleep(delay_s)
        return json.loads(self._exchange(line))

    # -- protocol ------------------------------------------------------

    def query(
        self,
        kind: str,
        params: Optional[dict] = None,
        tenant: str = "default",
        timeout_ms: Optional[float] = None,
        plan: Optional[str] = None,
        accuracy: Optional[dict] = None,
    ) -> dict:
        """Run one query and return its success envelope.

        Args:
            accuracy: optional accuracy target for transmission
                queries, e.g. ``{"rel_err": 0.05,
                "confidence": 0.95}`` (protocol v2).

        Raises:
            ServiceError: for any structured error response, with
                the server's error ``code`` and ``message``.
        """
        self._next_id += 1
        body: dict = {
            "id": f"c{self._next_id}",
            "v": 2,
            "kind": kind,
            "params": dict(params or {}),
            "tenant": tenant,
            "timeout_ms": (
                self.timeout_s * 1000.0
                if timeout_ms is None
                else timeout_ms
            ),
        }
        if accuracy is not None:
            body["accuracy"] = dict(accuracy)
        if plan is not None:
            body["plan"] = plan
        response = self.request(body)
        if not isinstance(response, dict):
            raise ConnectionError(
                f"malformed service response: {response!r}"
            )
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "internal"),
            error.get("message", "malformed error response"),
            request_id=str(response.get("id", "")),
        )

    def metrics(self) -> str:
        """Scrape the server's ``/metrics`` Prometheus text."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        ) as sock:
            sock.sendall(
                b"GET /metrics HTTP/1.0\r\n"
                b"Host: repro-service\r\n\r\n"
            )
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks).decode("utf-8", errors="replace")
        _, _, payload = raw.partition("\r\n\r\n")
        return payload
