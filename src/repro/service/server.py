"""The FIT query service: NDJSON protocol handler and HTTP metrics.

:class:`FitService` wires the layers together: parse → admit →
cache → coalesce → execute → cache-fill → respond.  Its contract is
that **every line in produces exactly one line out** — a success
envelope or a structured error with a code from
:data:`~repro.service.protocol.ERROR_CODES` — and no client input or
backend failure escapes as an unhandled exception.

The same listening socket also answers plain ``GET /metrics`` (and
``/healthz``) HTTP requests: a connection whose first bytes look
like an HTTP request line is served a Prometheus scrape instead of
the NDJSON loop, so one port carries both queries and telemetry.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import TYPE_CHECKING, Dict, Optional

from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.coalesce import Coalescer
from repro.service.compute import QueryExecutor
from repro.service.protocol import (
    STUDY_KINDS,
    ServiceError,
    encode_response,
    error_body,
    ok_body,
    parse_request,
)

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.studies.service import StudyGateway

__all__ = ["FitService"]


def _peek_kind(line: str) -> Optional[str]:
    """The request's ``kind`` when the line is a JSON object."""
    try:
        data = json.loads(line)
    except ValueError:
        return None
    if isinstance(data, dict) and isinstance(data.get("kind"), str):
        return data["kind"]
    return None


class FitService:
    """One FIT query service instance (transport-agnostic core).

    Args:
        executor: query execution layer (defaults to in-process).
        cache: durable result cache (``None`` disables caching).
        admission: admission controller (defaults to permissive).
        coalescer: request coalescer (defaults to a fresh one).
        plans: named query presets clients may reference by
            ``plan``; loaded from ``--plan-root`` by the CLI.
        studies: study gateway answering the
            ``study-submit``/``study-status``/``study-cancel`` verbs
            (``None`` rejects them with a structured error).
    """

    def __init__(
        self,
        executor: Optional[QueryExecutor] = None,
        cache: Optional[ResultCache] = None,
        admission: Optional[AdmissionController] = None,
        coalescer: Optional[Coalescer] = None,
        plans: Optional[Dict[str, dict]] = None,
        studies: Optional["StudyGateway"] = None,
    ) -> None:
        self.executor = (
            executor if executor is not None else QueryExecutor()
        )
        self.cache = cache
        self.admission = (
            admission
            if admission is not None
            else AdmissionController()
        )
        self.coalescer = (
            coalescer if coalescer is not None else Coalescer()
        )
        self.plans = dict(plans or {})
        self.studies = studies
        self._closing = False

    # -- lifecycle -----------------------------------------------------

    def begin_shutdown(self) -> None:
        """Refuse new queries; in-flight ones run to completion."""
        if not self._closing:
            self._closing = True
            obs.event("service.shutdown")

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        self.executor.close()

    # -- request path --------------------------------------------------

    async def handle_line(self, line: str) -> str:
        """Answer one NDJSON request line with one response line."""
        if _peek_kind(line) in STUDY_KINDS:
            return await self._handle_study(line)
        try:
            request = parse_request(line, self.plans)
        except ServiceError as exc:
            return self._error_line(exc.request_id, exc)
        if self._closing:
            return self._error_line(
                request.request_id,
                ServiceError(
                    "shutting-down",
                    "service is shutting down; retry elsewhere",
                ),
            )
        timeout_s = (
            request.timeout_s
            if request.timeout_s is not None
            else 0.0
        )
        with obs.span("service.request", kind=request.query.kind):
            obs.inc("repro_service_requests_total")
            started_s = time.monotonic()
            try:
                self.admission.admit(
                    request.tenant,
                    request.query.kind,
                    timeout_s,
                )
            except ServiceError as exc:
                return self._error_line(request.request_id, exc)
            try:
                envelope = await self._answer(request, timeout_s)
            except asyncio.TimeoutError:
                return self._error_line(
                    request.request_id,
                    ServiceError(
                        "deadline",
                        f"query missed its {timeout_s:.3f} s"
                        " deadline",
                    ),
                )
            except ServiceError as exc:
                return self._error_line(request.request_id, exc)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 — wire boundary
                return self._error_line(
                    request.request_id,
                    ServiceError(
                        "internal",
                        f"{type(exc).__name__}: {exc}",
                    ),
                )
            finally:
                self.admission.release()
                self.admission.observe_latency(
                    request.query.kind,
                    time.monotonic() - started_s,
                )
        return self._ok_line(request.request_id, envelope)

    async def _handle_study(self, line: str) -> str:
        """Answer one study verb (submit / status / cancel).

        Study verbs bypass query parsing and admission: they are
        control-plane operations whose heavy lifting runs on the
        gateway's background thread, not on the event loop.
        """
        data = json.loads(line)
        request_id = str(data.get("id", ""))
        if not request_id:
            return self._error_line(
                "",
                ServiceError(
                    "bad-request",
                    "request must carry a non-empty string 'id'",
                ),
            )
        if self._closing:
            return self._error_line(
                request_id,
                ServiceError(
                    "shutting-down",
                    "service is shutting down; retry elsewhere",
                ),
            )
        if self.studies is None:
            return self._error_line(
                request_id,
                ServiceError(
                    "bad-request",
                    "study verbs are disabled; start the server"
                    " with --study-root",
                ),
            )
        with obs.span("service.request", kind=str(data["kind"])):
            obs.inc("repro_service_requests_total")
            try:
                result = await asyncio.to_thread(
                    self.studies.handle, data
                )
            except ServiceError as exc:
                return self._error_line(request_id, exc)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 — wire boundary
                return self._error_line(
                    request_id,
                    ServiceError(
                        "internal",
                        f"{type(exc).__name__}: {exc}",
                    ),
                )
        return self._ok_line(
            request_id,
            {
                "result": result,
                "cached": False,
                "degraded": False,
                "degraded_reason": "",
                "provenance": None,
            },
        )

    async def _answer(self, request, timeout_s: float) -> dict:
        """Produce the success envelope for an admitted request."""
        query = request.query
        key = query.cache_key()

        def job() -> dict:
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    obs.inc("repro_service_cache_hits_total")
                    return {
                        "result": cached,
                        "cached": True,
                        "degraded": False,
                        "degraded_reason": "",
                        "provenance": (
                            cached.get("provenance")
                            if isinstance(cached, dict)
                            else None
                        ),
                    }
                obs.inc("repro_service_cache_misses_total")
            outcome = self.executor.execute(query)
            # Degraded answers (engine fallback, worker recompute)
            # are correct but second-choice; caching them would pin
            # the degradation past recovery.
            if self.cache is not None and not outcome.degraded:
                self.cache.put(key, query, outcome.result)
            return {
                "result": outcome.result,
                "cached": False,
                "degraded": outcome.degraded,
                "degraded_reason": outcome.reason,
                "provenance": outcome.provenance,
            }

        if timeout_s > 0.0:
            return await asyncio.wait_for(
                self.coalescer.get_or_compute(key, job),
                timeout=timeout_s,
            )
        return await self.coalescer.get_or_compute(key, job)

    # -- response encoding ---------------------------------------------

    def _ok_line(self, request_id: str, envelope: dict) -> str:
        """Encode a success envelope; degrade to an error line."""
        body = ok_body(request_id, envelope)
        try:
            # Last instant before bytes hit the wire: a fault here
            # must become a structured error, not a dropped line.
            fault_point(
                "service.respond", request_id=request_id
            )
            return encode_response(body)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 — wire boundary
            return self._error_line(
                request_id,
                ServiceError(
                    "internal",
                    f"response serialization failed:"
                    f" {type(exc).__name__}: {exc}",
                ),
            )

    def _error_line(
        self, request_id: str, error: ServiceError
    ) -> str:
        """Encode a structured error line (fault-free path)."""
        obs.inc("repro_service_errors_total", code=error.code)
        return encode_response(error_body(request_id, error))

    # -- connection handling -------------------------------------------

    async def handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        """Serve one client connection (NDJSON or HTTP scrape)."""
        try:
            first = await reader.readline()
            if first.startswith(b"GET "):
                await self._serve_http(first, reader, writer)
                return
            while first:
                line = first.decode("utf-8", errors="replace")
                if line.strip():
                    response = await self.handle_line(line)
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
                first = await reader.readline()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _serve_http(
        self,
        request_line: bytes,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        """Answer one HTTP/1.0-style GET on the shared port."""
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        parts = request_line.decode("ascii", errors="replace").split()
        target = parts[1] if len(parts) > 1 else "/"
        if target == "/metrics":
            observer = obs.active()
            registry = (
                observer.registry if observer is not None else None
            )
            text = (
                registry.to_prometheus()
                if registry is not None
                else ""
            )
            status = "200 OK"
            content_type = "text/plain; version=0.0.4"
        elif target == "/healthz":
            text = json.dumps(
                {"status": "shutting-down" if self._closing else "ok"}
            )
            status = "200 OK"
            content_type = "application/json"
        else:
            text = f"no route for {target}\n"
            status = "404 Not Found"
            content_type = "text/plain"
        body = text.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()
