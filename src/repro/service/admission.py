"""Admission control: per-tenant budgets and deadline-aware shedding.

Every query passes through :class:`AdmissionController` before any
work happens.  Three gates, each with its own structured error code
so clients can tell them apart:

* **Load shedding** (``overloaded``) — a global in-flight ceiling;
  beyond it the service refuses instantly rather than queueing into
  collapse.
* **Tenant budgets** (``budget-exhausted``) — each tenant gets a
  :class:`~repro.runtime.budget.BudgetTracker` (the same machinery
  that bounds campaign runs); an exhausted event budget or expired
  wall-clock deadline rejects the query before it costs anything.
* **Deadline triage** (``deadline``) — a per-kind EWMA of observed
  latencies; a query whose own timeout is shorter than the expected
  service time is rejected up front instead of burning a worker on
  an answer the client will never read.

All rejections are :class:`~repro.service.protocol.ServiceError`
values — structured payloads on the wire, never unhandled
exceptions.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.obs import core as obs
from repro.runtime.budget import Budget, BudgetTracker
from repro.runtime.errors import (
    BudgetExceededError,
    DeadlineExceededError,
)
from repro.service.protocol import ServiceError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Gates queries on load, tenant budgets, and deadlines.

    Args:
        max_inflight: global concurrent-query ceiling; queries beyond
            it are shed with ``overloaded``.
        default_budget: budget applied to tenants without an explicit
            one (``None`` = unbudgeted).
        tenant_budgets: per-tenant budget overrides.
        clock: injectable monotonic clock for budget deadlines.
        latency_alpha: EWMA smoothing factor for per-kind latency
            estimates (higher = more reactive).
    """

    def __init__(
        self,
        max_inflight: int = 64,
        default_budget: Optional[Budget] = None,
        tenant_budgets: Optional[Dict[str, Budget]] = None,
        clock: Optional[Callable[[], float]] = None,
        latency_alpha: float = 0.2,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if not 0.0 < latency_alpha <= 1.0:
            raise ValueError(
                f"latency_alpha must be in (0, 1], got {latency_alpha}"
            )
        self.max_inflight = max_inflight
        self._default_budget = default_budget
        self._budget_overrides = dict(tenant_budgets or {})
        self._clock = time.monotonic if clock is None else clock
        self._alpha = latency_alpha
        self._trackers: Dict[str, BudgetTracker] = {}
        self._latency_s: Dict[str, float] = {}
        self.inflight = 0

    # -- gates ---------------------------------------------------------

    def admit(self, tenant: str, kind: str, timeout_s: float) -> None:
        """Admit one query or raise a coded :class:`ServiceError`.

        On success the in-flight count is incremented; the caller
        must pair every successful ``admit`` with a ``release``.
        """
        if self.inflight >= self.max_inflight:
            obs.inc("repro_service_shed_total")
            raise ServiceError(
                "overloaded",
                f"service at capacity ({self.max_inflight} queries"
                " in flight); retry with backoff",
            )
        tracker = self._tracker(tenant)
        if tracker is not None:
            try:
                tracker.check_deadline()
                tracker.require_events(1)
            except (
                BudgetExceededError,
                DeadlineExceededError,
            ) as exc:
                raise ServiceError(
                    "budget-exhausted",
                    f"tenant {tenant!r} budget exhausted: {exc}",
                ) from exc
            tracker.consume_events(1)
        estimate_s = self._latency_s.get(kind)
        if (
            timeout_s > 0.0
            and estimate_s is not None
            and estimate_s > timeout_s
        ):
            obs.inc("repro_service_shed_total")
            raise ServiceError(
                "deadline",
                f"{kind} queries currently take ~{estimate_s:.3f} s;"
                f" the {timeout_s:.3f} s deadline cannot be met",
            )
        self.inflight += 1

    def release(self) -> None:
        """Return one admitted query's in-flight slot."""
        if self.inflight > 0:
            self.inflight -= 1

    # -- feedback ------------------------------------------------------

    def observe_latency(self, kind: str, elapsed_s: float) -> None:
        """Fold one completed query's latency into the estimate."""
        previous = self._latency_s.get(kind)
        if previous is None:
            self._latency_s[kind] = elapsed_s
        else:
            self._latency_s[kind] = (
                self._alpha * elapsed_s
                + (1.0 - self._alpha) * previous
            )

    def _tracker(self, tenant: str) -> Optional[BudgetTracker]:
        """The tenant's budget tracker, created on first sight."""
        tracker = self._trackers.get(tenant)
        if tracker is None:
            budget = self._budget_overrides.get(
                tenant, self._default_budget
            )
            if budget is None:
                return None
            tracker = BudgetTracker(budget, clock=self._clock)
            self._trackers[tenant] = tracker
        return tracker
