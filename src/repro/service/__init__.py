"""Fault-tolerant FIT query service.

A long-running asyncio server answering FIT / cross-section / flux /
shield-transmission queries over newline-delimited JSON, built to
stay correct under failure: a durable content-addressed result cache
that quarantines corruption (:mod:`repro.service.cache`), request
coalescing so identical concurrent queries cost one computation
(:mod:`repro.service.coalesce`), per-tenant admission control with
structured rejections (:mod:`repro.service.admission`), and a
retry/circuit-breaker execution layer that degrades rather than
fails (:mod:`repro.service.compute`).  Boot it with
``python -m repro serve``; talk to it with
:class:`~repro.service.client.ServiceClient`.
"""

from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.coalesce import Coalescer
from repro.service.compute import (
    CircuitBreaker,
    ExecutionOutcome,
    QueryExecutor,
)
from repro.service.protocol import (
    ERROR_CODES,
    QUERY_KINDS,
    Query,
    Request,
    ServiceError,
)
from repro.service.server import FitService

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Coalescer",
    "ERROR_CODES",
    "ExecutionOutcome",
    "FitService",
    "QUERY_KINDS",
    "Query",
    "QueryExecutor",
    "Request",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
]
