"""Durable content-addressed result cache for the FIT service.

Entries live at ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
query's :meth:`~repro.service.protocol.Query.cache_key` — SHA-256
over (plan digest, seed), the same digest discipline the checkpoint
layer uses.  Writes follow the checkpoint write idiom exactly:
write-to-tmp, fsync, rename, fsync-directory, so a crash at any
instant leaves either no entry or a complete one.  Every entry also
carries a SHA-256 ``checksum`` over its canonical JSON
(:func:`~repro.runtime.checkpoint.payload_checksum`).

Failure policy, in one sentence: **the cache is an accelerator, never
an authority** — a corrupt, torn, or unreadable entry is quarantined
(renamed aside for post-mortem) and reported as a miss so the query
recomputes, and a write that keeps failing is abandoned with a
metric, never surfaced to the client.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro import serde
from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.runtime.budget import RetryPolicy
from repro.runtime.checkpoint import payload_checksum
from repro.runtime.errors import TransientHarnessError
from repro.service.protocol import Query

__all__ = ["QUARANTINE_SUFFIX", "ResultCache"]

#: Suffix a corrupt entry is renamed to when quarantined.
QUARANTINE_SUFFIX = ".quarantined"


class ResultCache:
    """Filesystem-backed result cache with corruption quarantine.

    Args:
        root: cache directory (created on demand).  Stale ``*.tmp``
            leftovers from interrupted writes are swept immediately.
        retry: backoff policy for transient write faults.
        sleep: injectable backoff sleeper (tests and chaos trials
            pass a no-op).
    """

    def __init__(
        self,
        root: Union[str, Path],
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.root = Path(root)
        self._retry = retry if retry is not None else RetryPolicy()
        self._sleep = time.sleep if sleep is None else sleep
        #: Stale ``*.tmp`` files removed at construction — exposed so
        #: ``repro serve`` can count the sweep in a metric.
        self.swept_on_init = self._sweep_stale_tmp()

    # -- lookup --------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key``, or ``None``.

        A missing entry is a plain miss.  An entry that fails any
        validation — unparsable JSON, wrong schema tag, wrong key,
        or checksum mismatch — is quarantined and reported as a miss,
        so corrupt bytes are never served and never fatal.
        """
        path = self.entry_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return self._validate(key, raw)
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            return None

    @staticmethod
    def _validate(key: str, raw: str) -> dict:
        """Parse and verify one entry's bytes; raise on any defect."""
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError("cache entry is not a JSON object")
        serde.check("service-cache-entry", data)
        stored = data.get("checksum")
        if stored is None:
            raise ValueError("cache entry has no checksum")
        if stored != payload_checksum(data):
            raise ValueError("cache entry failed checksum")
        if data.get("key") != key:
            raise ValueError(
                f"cache entry carries key {data.get('key')!r},"
                f" expected {key!r}"
            )
        result = data["result"]
        if not isinstance(result, dict):
            raise ValueError("cache entry result is not an object")
        return result

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt entry aside; never raises."""
        del exc
        obs.inc("repro_service_cache_quarantined_total")
        try:
            os.replace(
                path, path.with_name(path.name + QUARANTINE_SUFFIX)
            )
        except OSError:
            pass

    # -- store ---------------------------------------------------------

    def put(self, key: str, query: Query, result: dict) -> bool:
        """Durably store one computed result.

        Transient write faults (including torn tmp writes) are
        retried with backoff; anything still failing afterwards — or
        any non-transient failure — abandons the write with a
        failure metric.  The caller's response is never affected.

        Returns:
            True when the entry landed on disk.
        """
        payload = serde.tag(
            "service-cache-entry",
            {
                "key": key,
                "query": query.to_dict(),
                "result": result,
            },
        )
        payload["checksum"] = payload_checksum(payload)
        text = json.dumps(payload, indent=2, sort_keys=True)
        path = self.entry_path(key)
        for delay_s in self._retry.delays_s():
            try:
                self._write(path, text)
            except (OSError, TransientHarnessError):
                self._sleep(delay_s)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:  # noqa: BLE001 — cache is best-effort
                # Non-transient failure: retrying would repeat it.
                obs.inc("repro_service_cache_write_failures_total")
                return False
            else:
                obs.inc("repro_service_cache_writes_total")
                return True
        try:
            self._write(path, text)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 — cache is best-effort
            obs.inc("repro_service_cache_write_failures_total")
            return False
        obs.inc("repro_service_cache_writes_total")
        return True

    @staticmethod
    def _write(path: Path, text: str) -> None:
        """One durable tmp/fsync/rename/fsync-dir write attempt."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        # The durable-tmp / not-yet-renamed instant: a fault here
        # must cost at most a retry, never a torn visible entry.
        fault_point(
            "service.cache_write",
            path=str(path),
            tmp=str(tmp),
            text=text,
        )
        os.replace(tmp, path)
        _fsync_dir(path.parent)

    # -- layout --------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        """Where ``key``'s entry lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def _sweep_stale_tmp(self) -> int:
        """Remove ``*.tmp`` leftovers from interrupted writes."""
        if not self.root.exists():
            return 0
        swept = 0
        for tmp in self.root.rglob("*.tmp"):
            try:
                tmp.unlink()
                swept += 1
            except OSError:
                continue
        return swept


def _fsync_dir(directory: Path) -> None:
    """Flush a rename to disk by fsyncing the parent directory.

    Best-effort, mirroring the checkpoint layer: data durability was
    already ensured by the tmp-file fsync.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
