"""Request coalescing: one computation per identical in-flight query.

A thundering herd of clients asking the same question (same cache
key) must cost one computation, with every waiter receiving the
single shared result — or the single shared error.  The
:class:`Coalescer` keeps a dict of in-flight computations keyed by
cache key; late arrivals attach to the existing flight instead of
starting their own.

Cancellation safety is the subtle part: the flight is owned by its
own task and every waiter awaits the shared future through
``asyncio.shield``, so the *initiating* client disconnecting (its
handler task cancelled) never cancels the computation out from under
the other waiters — the handoff survives the initiator.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict

from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs

__all__ = ["Coalescer"]


class _Flight:
    """One in-flight computation and its subscriber count."""

    def __init__(self, future: "asyncio.Future") -> None:
        self.future = future
        self.waiters = 1
        self.task: "asyncio.Task | None" = None


class Coalescer:
    """Deduplicates concurrent identical computations by key."""

    def __init__(self) -> None:
        self._flights: Dict[str, _Flight] = {}

    @property
    def inflight(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._flights)

    async def get_or_compute(
        self, key: str, compute: Callable[[], Any]
    ) -> Any:
        """Await the result for ``key``, computing it at most once.

        ``compute`` is a blocking callable; it runs in the event
        loop's default thread pool.  Concurrent callers with the same
        key all await one shared future.  If this caller is
        cancelled, the computation continues for the others.
        """
        loop = asyncio.get_running_loop()
        flight = self._flights.get(key)
        if flight is None:
            future = loop.create_future()
            # A flight whose every waiter got cancelled would
            # otherwise log "exception was never retrieved".
            future.add_done_callback(_consume_exception)
            flight = _Flight(future)
            self._flights[key] = flight
            flight.task = loop.create_task(
                self._run(key, flight, compute)
            )
        else:
            flight.waiters += 1
            obs.inc("repro_service_coalesced_total")
        return await asyncio.shield(flight.future)

    async def _run(
        self, key: str, flight: _Flight, compute: Callable[[], Any]
    ) -> None:
        """Drive one computation and hand the result to all waiters."""
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, compute)
            # The computed-but-not-yet-delivered instant: a fault
            # here must become one clean error shared by every
            # waiter, never a wedge or a partial delivery.
            fault_point(
                "service.handoff", key=key, waiters=flight.waiters
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 — shared handoff
            self._flights.pop(key, None)
            if not flight.future.done():
                flight.future.set_exception(exc)
            return
        self._flights.pop(key, None)
        if not flight.future.done():
            flight.future.set_result(result)

    async def drain(self) -> None:
        """Wait for every in-flight computation to settle."""
        tasks = [
            flight.task
            for flight in list(self._flights.values())
            if flight.task is not None
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


def _consume_exception(future: "asyncio.Future") -> None:
    """Mark a settled future's exception as retrieved."""
    if not future.cancelled():
        future.exception()
