"""Wire protocol of the FIT query service.

One request per line, one response per line, both JSON objects — the
shape a batch scheduler or a curl-equipped operator can speak without
a client library.  A request is::

    {"id": "q1", "kind": "fit",
     "params": {"device": "K20", "site": "leadville", "room": true},
     "tenant": "ci", "timeout_ms": 5000}

``kind`` selects the computation (:data:`QUERY_KINDS`); ``params``
are validated *here*, at the protocol boundary, so a malformed query
becomes a structured ``bad-request`` error payload instead of an
exception deep inside a worker.  Responses are tagged with the
``service-response`` schema (:mod:`repro.serde`) and carry either an
``ok`` result envelope (with ``cached``/``degraded`` flags) or an
``error`` object whose ``code`` is one of :data:`ERROR_CODES`.

A parsed :class:`Query` canonicalizes to a plan dict whose
:func:`~repro.runtime.checkpoint.plan_digest` — combined with the
seed — is the service's content-addressed cache key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro import serde
from repro.devices import DEVICES
from repro.environment import (
    ISIS,
    LEADVILLE,
    LOS_ALAMOS,
    NEW_YORK,
    Site,
)
from repro.runtime.checkpoint import plan_digest
from repro.runtime.errors import ReproError
from repro.transport.materials import (
    BORATED_POLYETHYLENE,
    CADMIUM,
    CONCRETE,
    WATER,
    Material,
)

__all__ = [
    "ERROR_CODES",
    "MAX_N_NEUTRONS",
    "PROTOCOL_VERSIONS",
    "QUERY_KINDS",
    "STUDY_KINDS",
    "Query",
    "Request",
    "SERVICE_SITES",
    "SHIELDS",
    "ServiceError",
    "encode_response",
    "error_body",
    "ok_body",
    "parse_request",
]

#: Computations the service answers, by request ``kind``.
QUERY_KINDS = ("fit", "cross-section", "flux", "transmission")

#: Study control-plane verbs, answered by the study gateway rather
#: than the query path (see :mod:`repro.studies.service`).
STUDY_KINDS = ("study-submit", "study-status", "study-cancel")

#: Structured error codes a response's ``error.code`` may carry.
ERROR_CODES = (
    "bad-request",
    "unknown-plan",
    "overloaded",
    "budget-exhausted",
    "deadline",
    "internal",
    "shutting-down",
)

#: Named deployment sites a query may reference (mirrors the CLI's
#: ``--site`` vocabulary; duplicated here so the protocol layer never
#: imports the CLI).
SERVICE_SITES: Dict[str, Site] = {
    "nyc": NEW_YORK,
    "leadville": LEADVILLE,
    "lanl": LOS_ALAMOS,
    "isis": ISIS,
}

#: Shield materials a transmission query may name, with the default
#: thickness used when the query omits ``thickness_cm``.
SHIELDS: Dict[str, Tuple[Material, float]] = {
    "cadmium": (CADMIUM, 0.1),
    "borated-poly": (BORATED_POLYETHYLENE, 5.0),
    "water": (WATER, 10.0),
    "concrete": (CONCRETE, 30.0),
}

#: Per-query Monte Carlo history cap (admission control for the one
#: parameter that directly buys CPU time).
MAX_N_NEUTRONS = 200_000

#: Transport engine policies a transmission query may request
#: (:data:`repro.transport.api.ENGINE_POLICIES`).  The deterministic
#: engine and the surrogate ignore ``n_neutrons``/``seed`` (their
#: answers are noise-free fractions) but both stay
#: admission-controlled.
_ENGINES = ("auto", "batch", "deterministic", "scalar", "surrogate")

#: Wire protocol versions this server accepts.  v1 requests carry no
#: ``accuracy`` field (defaults apply); v2 adds ``accuracy`` on
#: requests and ``provenance`` on responses.
PROTOCOL_VERSIONS = (1, 2)


class ServiceError(ReproError):
    """A structured service failure with a wire-visible error code.

    Args:
        code: one of :data:`ERROR_CODES`.
        message: human-readable detail for the error payload.
        request_id: the offending request's ``id`` when it could be
            extracted (echoed back so clients can correlate).
    """

    def __init__(
        self, code: str, message: str, request_id: str = ""
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(
                f"unknown service error code {code!r};"
                f" valid: {ERROR_CODES}"
            )
        super().__init__(message)
        self.code = code
        self.message = message
        self.request_id = request_id

    def to_payload(self) -> dict:
        """The response's ``error`` object."""
        return {"code": self.code, "message": self.message}


@dataclass(frozen=True)
class Query:
    """One validated, canonical FIT-service computation.

    Fields irrelevant to a query's kind are pinned to their defaults
    by :meth:`from_params`, so equal computations always canonicalize
    to equal dicts — the property the coalescer and the cache key
    both rely on.

    Attributes:
        kind: one of :data:`QUERY_KINDS`.
        device: device catalog name (fit / cross-section).
        code: optional workload restriction (fit / cross-section).
        site: named site (fit / flux).
        room: machine-room scenario instead of outdoor.
        rain: thunderstorm weather.
        air_cooled: machine room without liquid cooling.
        shield: :data:`SHIELDS` name (transmission).
        thickness_cm: shield thickness (transmission).
        n_neutrons: Monte Carlo histories (transmission).
        seed: RNG seed (transmission; part of the cache key).
        engine: requested transport engine policy (transmission).
        rel_err: accuracy target — max relative error on the
            headline value (transmission; gates surrogate serving).
        confidence: accuracy target — min coverage of the error
            bound (transmission).
    """

    kind: str
    device: str = ""
    code: str = ""
    site: str = "nyc"
    room: bool = False
    rain: bool = False
    air_cooled: bool = False
    shield: str = "cadmium"
    thickness_cm: float = 0.0
    n_neutrons: int = 0
    seed: int = 2020
    engine: str = "batch"
    rel_err: float = 0.05
    confidence: float = 0.95

    @classmethod
    def from_params(cls, kind: str, params: dict) -> "Query":
        """Validate raw request params into a canonical query.

        Raises:
            ServiceError: (code ``bad-request``) for an unknown kind,
                unknown parameter names, or out-of-range values.
        """
        if kind not in QUERY_KINDS:
            raise ServiceError(
                "bad-request",
                f"unknown query kind {kind!r};"
                f" valid: {QUERY_KINDS}",
            )
        if not isinstance(params, dict):
            raise ServiceError(
                "bad-request", "params must be a JSON object"
            )
        allowed = _ALLOWED_PARAMS[kind]
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise ServiceError(
                "bad-request",
                f"unknown parameter(s) {unknown} for kind"
                f" {kind!r}; allowed: {sorted(allowed)}",
            )
        builder = {
            "fit": cls._fit_params,
            "cross-section": cls._fit_params,
            "flux": cls._flux_params,
            "transmission": cls._transmission_params,
        }[kind]
        return cls(kind=kind, **builder(params))

    # -- per-kind validators -------------------------------------------

    @staticmethod
    def _fit_params(params: dict) -> dict:
        device = params.get("device", "")
        if device not in DEVICES:
            raise ServiceError(
                "bad-request",
                f"unknown device {device!r};"
                f" valid: {sorted(DEVICES)}",
            )
        code = str(params.get("code", "") or "")
        if code and code not in DEVICES[device].supported_codes:
            raise ServiceError(
                "bad-request",
                f"device {device!r} does not support code {code!r}"
                f" (supported:"
                f" {DEVICES[device].supported_codes})",
            )
        out = Query._flux_params(params)
        out.update(device=str(device), code=code)
        return out

    @staticmethod
    def _flux_params(params: dict) -> dict:
        site = params.get("site", "nyc")
        if site not in SERVICE_SITES:
            raise ServiceError(
                "bad-request",
                f"unknown site {site!r};"
                f" valid: {sorted(SERVICE_SITES)}",
            )
        return {
            "site": str(site),
            "room": _flag(params, "room"),
            "rain": _flag(params, "rain"),
            "air_cooled": _flag(params, "air_cooled"),
        }

    @staticmethod
    def _transmission_params(params: dict) -> dict:
        shield = params.get("shield", "cadmium")
        if shield not in SHIELDS:
            raise ServiceError(
                "bad-request",
                f"unknown shield {shield!r};"
                f" valid: {sorted(SHIELDS)}",
            )
        default_cm = SHIELDS[shield][1]
        thickness_cm = _number(
            params, "thickness_cm", default_cm
        )
        if thickness_cm <= 0.0:
            raise ServiceError(
                "bad-request",
                f"thickness_cm must be positive, got {thickness_cm}",
            )
        n_neutrons = _integer(params, "n_neutrons", 4096)
        if not 1 <= n_neutrons <= MAX_N_NEUTRONS:
            raise ServiceError(
                "bad-request",
                f"n_neutrons must be in [1, {MAX_N_NEUTRONS}],"
                f" got {n_neutrons}",
            )
        engine = params.get("engine", "batch")
        if engine not in _ENGINES:
            raise ServiceError(
                "bad-request",
                f"unknown engine {engine!r}; valid: {_ENGINES}",
            )
        return {
            "shield": str(shield),
            "thickness_cm": float(thickness_cm),
            "n_neutrons": n_neutrons,
            "seed": _integer(params, "seed", 2020),
            "engine": str(engine),
        }

    def with_accuracy(
        self, rel_err: float, confidence: float
    ) -> "Query":
        """A copy carrying an explicit accuracy target."""
        return replace(
            self, rel_err=rel_err, confidence=confidence
        )

    # -- canonical forms -----------------------------------------------

    def to_dict(self) -> dict:
        """Canonical plan dict (JSON-ready, digest input)."""
        return {
            "kind": self.kind,
            "device": self.device,
            "code": self.code,
            "site": self.site,
            "room": self.room,
            "rain": self.rain,
            "air_cooled": self.air_cooled,
            "shield": self.shield,
            "thickness_cm": self.thickness_cm,
            "n_neutrons": self.n_neutrons,
            "seed": self.seed,
            "engine": self.engine,
            "rel_err": self.rel_err,
            "confidence": self.confidence,
        }

    def digest(self) -> str:
        """Plan digest over the seed-free canonical form."""
        body = self.to_dict()
        del body["seed"]
        return plan_digest([body])

    def cache_key(self) -> str:
        """Content address: SHA-256 over (plan digest, seed)."""
        token = f"{self.digest()}:{self.seed}"
        return hashlib.sha256(token.encode("utf-8")).hexdigest()


#: Parameter names each kind accepts (strict: anything else is a
#: ``bad-request``, so typos fail loudly instead of silently running
#: the default computation).
_ALLOWED_PARAMS: Dict[str, Tuple[str, ...]] = {
    "fit": ("device", "code", "site", "room", "rain", "air_cooled"),
    "cross-section": (
        "device", "code", "site", "room", "rain", "air_cooled",
    ),
    "flux": ("site", "room", "rain", "air_cooled"),
    "transmission": (
        "shield", "thickness_cm", "n_neutrons", "seed", "engine",
    ),
}


@dataclass(frozen=True)
class Request:
    """One parsed request envelope.

    Attributes:
        request_id: client-chosen correlation id, echoed in the
            response.
        tenant: admission-control tenant name.
        timeout_s: client deadline (``None`` = server default).
        query: the validated computation.
    """

    request_id: str
    tenant: str
    timeout_s: Optional[float]
    query: Query


def _parse_accuracy(
    data: dict, request_id: str
) -> Optional[Tuple[float, float]]:
    """Validate an optional top-level ``accuracy`` object.

    Returns:
        ``(rel_err, confidence)`` when present, else ``None``.
    """
    raw = data.get("accuracy")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ServiceError(
            "bad-request",
            f"accuracy must be a JSON object, got {raw!r}",
            request_id,
        )
    unknown = sorted(set(raw) - {"rel_err", "confidence"})
    if unknown:
        raise ServiceError(
            "bad-request",
            f"unknown accuracy field(s) {unknown};"
            " allowed: ['confidence', 'rel_err']",
            request_id,
        )
    rel_err = raw.get("rel_err", 0.05)
    confidence = raw.get("confidence", 0.95)
    for name, value in (
        ("rel_err", rel_err), ("confidence", confidence)
    ):
        if not isinstance(value, (int, float)) or isinstance(
            value, bool
        ):
            raise ServiceError(
                "bad-request",
                f"accuracy.{name} must be a number, got {value!r}",
                request_id,
            )
    if not 0.0 < float(rel_err) <= 1.0:
        raise ServiceError(
            "bad-request",
            f"accuracy.rel_err must be in (0, 1], got {rel_err}",
            request_id,
        )
    if not 0.0 < float(confidence) < 1.0:
        raise ServiceError(
            "bad-request",
            "accuracy.confidence must be in (0, 1),"
            f" got {confidence}",
            request_id,
        )
    return float(rel_err), float(confidence)


def parse_request(line: str, plans: Dict[str, dict]) -> Request:
    """Parse and validate one request line.

    Args:
        line: one newline-delimited JSON request.
        plans: named plan presets (from ``--plan-root``); a request
            carrying ``"plan": name`` starts from that preset's
            params (and kind), overridden by its own ``params``.

    Raises:
        ServiceError: ``bad-request`` for malformed JSON/fields, an
            unsupported protocol version, or ``unknown-plan`` for an
            undeclared plan name.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(
            "bad-request", f"request is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ServiceError(
            "bad-request", "request must be a JSON object"
        )
    request_id = str(data.get("id", ""))
    if not request_id:
        raise ServiceError(
            "bad-request",
            "request must carry a non-empty string 'id'",
        )
    version = data.get("v", 1)
    if (
        isinstance(version, bool)
        or not isinstance(version, int)
        or version not in PROTOCOL_VERSIONS
    ):
        raise ServiceError(
            "bad-request",
            f"unsupported protocol version {version!r};"
            f" this server speaks {PROTOCOL_VERSIONS}",
            request_id,
        )
    accuracy = _parse_accuracy(data, request_id)
    kind = data.get("kind", "")
    params = data.get("params", {})
    plan_name = data.get("plan")
    if plan_name is not None:
        if plan_name not in plans:
            raise ServiceError(
                "unknown-plan",
                f"unknown plan {plan_name!r};"
                f" loaded: {sorted(plans)}",
                request_id,
            )
        preset = plans[plan_name]
        kind = kind or preset.get("kind", "")
        merged = dict(preset.get("params", {}))
        if isinstance(params, dict):
            merged.update(params)
        params = merged
    timeout_s = None
    if data.get("timeout_ms") is not None:
        raw = data["timeout_ms"]
        if (
            not isinstance(raw, (int, float))
            or isinstance(raw, bool)
            or raw <= 0
        ):
            raise ServiceError(
                "bad-request",
                f"timeout_ms must be a positive number, got {raw!r}",
                request_id,
            )
        timeout_s = float(raw) / 1000.0
    try:
        query = Query.from_params(str(kind), params)
    except ServiceError as exc:
        # Re-raise with the id attached so the error payload still
        # correlates to the request that caused it.
        raise ServiceError(
            exc.code, exc.message, request_id
        ) from exc
    if accuracy is not None and query.kind == "transmission":
        query = query.with_accuracy(*accuracy)
    return Request(
        request_id=request_id,
        tenant=str(data.get("tenant", "default")),
        timeout_s=timeout_s,
        query=query,
    )


def ok_body(request_id: str, envelope: dict) -> dict:
    """Build a tagged success response body.

    Args:
        request_id: echoed correlation id.
        envelope: ``result`` / ``cached`` / ``degraded`` /
            ``degraded_reason`` fields from the execution layer.
    """
    body = {"id": request_id, "ok": True}
    body.update(envelope)
    return serde.tag("service-response", body)


def error_body(request_id: str, error: ServiceError) -> dict:
    """Build a tagged structured-error response body."""
    return serde.tag(
        "service-response",
        {
            "id": request_id,
            "ok": False,
            "error": error.to_payload(),
        },
    )


def encode_response(body: dict) -> str:
    """Serialize a response body to its canonical wire line."""
    return json.dumps(body, sort_keys=True)


def _flag(params: dict, name: str) -> bool:
    """Read an optional boolean parameter strictly."""
    value = params.get(name, False)
    if not isinstance(value, bool):
        raise ServiceError(
            "bad-request",
            f"{name} must be a boolean, got {value!r}",
        )
    return value


def _number(params: dict, name: str, default: float) -> float:
    """Read an optional numeric parameter strictly."""
    value = params.get(name, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ServiceError(
            "bad-request",
            f"{name} must be a number, got {value!r}",
        )
    return float(value)


def _integer(params: dict, name: str, default: int) -> int:
    """Read an optional integer parameter strictly."""
    value = params.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            "bad-request",
            f"{name} must be an integer, got {value!r}",
        )
    return int(value)
