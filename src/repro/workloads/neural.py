"""The two neural-network codes: a YOLO-like detector and MNIST.

Both classify semantically, like the paper does: an output is an SDC
only if the *detections/labels* change, not if some internal activation
wiggles.  This reproduces the companion result that CNN object
detection has low SDC sensitivity (most flips are absorbed by the
argmax) while its long pipeline leaves room for DUEs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.faults.models import Outcome
from repro.workloads.base import State, Workload, WorkloadDomain


def _conv2d(image: np.ndarray, kernels: np.ndarray) -> np.ndarray:
    """Valid 2-D convolution: (H, W, Cin) x (K, K, Cin, Cout)."""
    k = kernels.shape[0]
    h, w, cin = image.shape
    if kernels.shape[2] != cin:
        raise ValueError(
            f"kernel Cin {kernels.shape[2]} != image Cin {cin}"
        )
    oh, ow = h - k + 1, w - k + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("kernel larger than image")
    out = np.zeros((oh, ow, kernels.shape[3]))
    for dy in range(k):
        for dx in range(k):
            patch = image[dy : dy + oh, dx : dx + ow, :]
            out += np.einsum("hwc,co->hwo", patch, kernels[dy, dx])
    return out


def _maxpool2(x: np.ndarray) -> np.ndarray:
    """2x2 max pooling (truncating odd edges)."""
    h, w, c = x.shape
    h2, w2 = h // 2, w // 2
    x = x[: h2 * 2, : w2 * 2, :]
    return x.reshape(h2, 2, w2, 2, c).max(axis=(1, 3))


class YoloDetector(Workload):
    """A miniature single-shot detector in the YOLO mould.

    Pipeline: conv -> relu -> pool -> conv -> relu -> pool -> per-cell
    heads (objectness + class scores).  The output is a small detection
    grid; classification compares detected (cell, class) sets.
    """

    name = "YOLO"
    domain = WorkloadDomain.NEURAL

    #: Objectness threshold for a detection.
    threshold = 0.5

    def __init__(self, size: int = 18, n_classes: int = 4,
                 seed: int = 1234):
        if size < 12:
            raise ValueError(f"size must be >= 12, got {size}")
        if n_classes < 2:
            raise ValueError(
                f"need >= 2 classes, got {n_classes}"
            )
        self.size = size
        self.n_classes = n_classes
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        # A frame with a few bright blobs ("vehicles/pedestrians").
        img = rng.random((self.size, self.size, 1)) * 0.1
        for _ in range(3):
            y, x = rng.integers(1, self.size - 4, size=2)
            img[y : y + 3, x : x + 3, 0] += rng.random() * 0.8 + 0.4
        w1 = rng.standard_normal((3, 3, 1, 4)) * 0.5
        w2 = rng.standard_normal((3, 3, 4, 8)) * 0.3
        # Heads: one objectness + n_classes scores per cell feature.
        w_head = rng.standard_normal((8, 1 + self.n_classes)) * 0.4
        return {
            "image": img, "w1": w1, "w2": w2, "w_head": w_head,
        }

    def stage_names(self) -> Tuple[str, ...]:
        return ("conv1", "conv2", "head")

    def run_stage(self, stage: str, state: State) -> State:
        if stage == "conv1":
            act = _conv2d(state["image"], state["w1"])
            state["act1"] = _maxpool2(np.maximum(act, 0.0))
        elif stage == "conv2":
            act = _conv2d(state["act1"], state["w2"])
            state["act2"] = _maxpool2(np.maximum(act, 0.0))
        elif stage == "head":
            feats = state["act2"]
            scores = feats @ state["w_head"]
            obj = 1.0 / (1.0 + np.exp(-scores[..., 0]))
            cls = scores[..., 1:].argmax(axis=-1)
            # Detection grid: 0 = background, else class id + 1.
            det = np.where(obj > self.threshold, cls + 1, 0)
            state["detections"] = det.astype(np.int64)
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["detections"]

    def classify(self, output: np.ndarray) -> Outcome:
        gold = self.golden()
        if output.shape != gold.shape or not np.array_equal(
            output, gold
        ):
            return Outcome.SDC
        return Outcome.MASKED


class MnistClassifier(Workload):
    """Handwritten-digit classification on a synthetic 8x8 MNIST.

    A nearest-template classifier expressed as a dense layer (the
    templates are the weights) followed by argmax — structurally a
    one-layer network, semantically exact on the clean inputs.  An
    injection is an SDC only if a predicted label changes.
    """

    name = "MNIST"
    domain = WorkloadDomain.NEURAL

    def __init__(self, n_images: int = 16, seed: int = 1234):
        if n_images <= 0:
            raise ValueError(
                f"need at least one image, got {n_images}"
            )
        self.n_images = n_images
        super().__init__(seed)

    @staticmethod
    def _templates() -> np.ndarray:
        """8x8 pixel-art digit templates, shape (10, 64)."""
        rows = {
            0: ["01111110", "11000011", "11000011", "11000011",
                "11000011", "11000011", "11000011", "01111110"],
            1: ["00011000", "00111000", "00011000", "00011000",
                "00011000", "00011000", "00011000", "01111110"],
            2: ["01111110", "11000011", "00000011", "00001110",
                "00111000", "11100000", "11000000", "11111111"],
            3: ["01111110", "11000011", "00000011", "00111110",
                "00000011", "00000011", "11000011", "01111110"],
            4: ["00001100", "00011100", "00111100", "01101100",
                "11001100", "11111111", "00001100", "00001100"],
            5: ["11111111", "11000000", "11000000", "11111110",
                "00000011", "00000011", "11000011", "01111110"],
            6: ["01111110", "11000000", "11000000", "11111110",
                "11000011", "11000011", "11000011", "01111110"],
            7: ["11111111", "00000011", "00000110", "00001100",
                "00011000", "00110000", "01100000", "11000000"],
            8: ["01111110", "11000011", "11000011", "01111110",
                "11000011", "11000011", "11000011", "01111110"],
            9: ["01111110", "11000011", "11000011", "01111111",
                "00000011", "00000011", "00000011", "01111110"],
        }
        out = np.zeros((10, 64))
        for digit, pattern in rows.items():
            bits = [int(c) for line in pattern for c in line]
            out[digit] = np.asarray(bits, dtype=float)
        return out

    def build_input(self, rng: np.random.Generator) -> State:
        templates = self._templates()
        labels = rng.integers(0, 10, size=self.n_images)
        images = templates[labels] + rng.random(
            (self.n_images, 64)
        ) * 0.2
        # Weight matrix = normalized templates (nearest-template as a
        # dense layer); bias centres the dot products.
        weights = templates / np.linalg.norm(
            templates, axis=1, keepdims=True
        )
        return {
            "images": images,
            "weights": weights,
            "labels": np.zeros(self.n_images, dtype=np.int64),
        }

    def stage_names(self) -> Tuple[str, ...]:
        return ("dense", "argmax")

    def run_stage(self, stage: str, state: State) -> State:
        if stage == "dense":
            state["scores"] = state["images"] @ state["weights"].T
        elif stage == "argmax":
            state["labels"] = state["scores"].argmax(
                axis=1
            ).astype(np.int64)
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["labels"]

    def classify(self, output: np.ndarray) -> Outcome:
        gold = self.golden()
        if output.shape != gold.shape or not np.array_equal(
            output, gold
        ):
            return Outcome.SDC
        return Outcome.MASKED
