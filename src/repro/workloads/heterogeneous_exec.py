"""CPU+GPU split execution with a vulnerable synchronization fabric.

The paper's strongest thermal result is *where* the APU is soft: "the
mechanism responsible for communication and synchronism between CPU
and GPU is particularly sensitive to thermal neutrons" (DUE ratio
1.18).  This wrapper executes a workload the way the APU campaign did
— the input split 50/50 between a CPU half and a GPU half, results
joined at a synchronization point — and exposes that fabric as an
injectable surface: descriptors corrupted at the join are exactly the
hangs/crashes the paper counted as DUEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.faults.injector import Injection, flip_bit_in_array
from repro.faults.models import DueError, Outcome
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SplitOutcome:
    """Result of one split execution.

    Attributes:
        outcome: application outcome.
        sync_fault: True if the synchronization fabric was struck.
    """

    outcome: Outcome
    sync_fault: bool


class SplitExecution:
    """Runs a workload split across two compute halves.

    The split is along the stage list: the first half of the stages
    plays the "CPU" role, the second the "GPU" role (the paper's
    heterogeneous codes pipeline CPU and GPU phases).  Between them
    sits a descriptor block — addresses, lengths, ready flags — whose
    corruption stalls the join.

    Args:
        workload: the wrapped workload (needs >= 2 stages).
        sync_words: size of the synchronization descriptor block.
        seed: RNG seed for descriptor layout.
    """

    def __init__(
        self,
        workload: Workload,
        sync_words: int = 16,
        seed: int = 2020,
    ) -> None:
        if len(workload.stage_names()) < 2:
            raise ValueError(
                "split execution needs a workload with >= 2 stages"
            )
        if sync_words <= 0:
            raise ValueError(
                f"sync_words must be positive, got {sync_words}"
            )
        self.workload = workload
        self.rng = np.random.default_rng(seed)
        # Descriptor block: plausible addresses/lengths/flags. Any
        # bit flip here is checked against the expected copy at the
        # join, like real command queues validate doorbells.
        self._sync_golden = self.rng.integers(
            0, 2 ** 48, size=sync_words, dtype=np.uint64
        )

    @property
    def cpu_stages(self) -> Sequence[str]:
        """Stages executed by the CPU half."""
        names = self.workload.stage_names()
        return names[: len(names) // 2]

    @property
    def gpu_stages(self) -> Sequence[str]:
        """Stages executed by the GPU half."""
        names = self.workload.stage_names()
        return names[len(names) // 2 :]

    def run(
        self,
        injections: Sequence[Injection] = (),
        sync_injection: Optional[int] = None,
    ) -> SplitOutcome:
        """Execute with optional data and sync-fabric faults.

        Args:
            injections: ordinary workload injections (either half).
            sync_injection: flat bit index into the descriptor block
                to flip, or None.

        Returns:
            A :class:`SplitOutcome`.
        """
        sync_block = self._sync_golden.copy()
        if sync_injection is not None:
            total_bits = sync_block.size * 64
            if not 0 <= sync_injection < total_bits:
                raise ValueError(
                    f"sync bit {sync_injection} outside block of"
                    f" {total_bits} bits"
                )
            flip_bit_in_array(
                sync_block, sync_injection // 64, sync_injection % 64
            )
        # The join validates the descriptors; any corruption means
        # the GPU half never gets (or never signals) its work: hang.
        if not np.array_equal(sync_block, self._sync_golden):
            return SplitOutcome(outcome=Outcome.DUE, sync_fault=True)
        try:
            output = self.workload.execute(list(injections))
        except DueError:
            return SplitOutcome(
                outcome=Outcome.DUE, sync_fault=False
            )
        return SplitOutcome(
            outcome=self.workload.classify(output),
            sync_fault=False,
        )

    def due_fraction(
        self,
        rng: np.random.Generator,
        sync_strike_probability: float,
        n_trials: int = 100,
    ) -> float:
        """DUE fraction under a mixed data/sync strike population.

        Args:
            rng: generator for strike placement.
            sync_strike_probability: chance a strike hits the fabric
                rather than data (the APU's thermal-soft resource —
                raise it to reproduce the CPU+GPU DUE excess).
            n_trials: strikes to simulate.
        """
        if not 0.0 <= sync_strike_probability <= 1.0:
            raise ValueError(
                "probability must be in [0, 1],"
                f" got {sync_strike_probability}"
            )
        if n_trials <= 0:
            raise ValueError(
                f"n_trials must be positive, got {n_trials}"
            )
        from repro.faults.injector import random_injection_for

        space = self.workload.injection_space()
        dues = 0
        for _ in range(n_trials):
            if rng.random() < sync_strike_probability:
                bit = int(
                    rng.integers(self._sync_golden.size * 64)
                )
                result = self.run(sync_injection=bit)
            else:
                injection = random_injection_for(rng, space)
                result = self.run([injection])
            if result.outcome is Outcome.DUE:
                dues += 1
        return dues / n_trials


__all__ = ["SplitExecution", "SplitOutcome"]
