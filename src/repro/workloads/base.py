"""Workload framework: staged execution with bit-level fault injection.

Each of the paper's nine codes is implemented as a :class:`Workload`:
a pipeline of named stages transforming a dict of NumPy arrays.  The
driver (:meth:`Workload.execute`) applies planned
:class:`~repro.faults.injector.Injection` flips at stage entry, runs
the stages, and classifies the result against a cached golden output:

* identical (within the workload's own tolerance) -> **MASKED**;
* different -> **SDC**;
* the execution raised / went out of bounds / exceeded its iteration
  budget -> **DUE** (:class:`~repro.faults.models.DueError`).

This produces the paper's phenomenology organically: compute-bound
codes mask low-order mantissa flips, index-heavy codes (BFS, SC) turn
data flips into crashes, CNNs absorb almost anything that does not
change the argmax.
"""

from __future__ import annotations

import abc
import enum
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.faults.injector import Injection, flip_bit_in_array
from repro.faults.models import DueError, Outcome

#: State arrays are dicts of name -> ndarray.
State = Dict[str, np.ndarray]


class WorkloadDomain(enum.Enum):
    """The three application classes of Section III-B."""

    HPC = "HPC"
    HETEROGENEOUS = "heterogeneous"
    NEURAL = "neural network"


class Workload(abc.ABC):
    """A deterministic staged computation with injection hooks.

    Subclasses implement :meth:`build_input`, :meth:`stage_names` and
    :meth:`run_stage`; everything else (golden caching, injection,
    classification, DUE detection) is provided here.

    Args:
        seed: seed for input generation — fixed input vector per the
            paper's methodology (same input at ChipIR and ROTAX).
    """

    #: Short name matching the paper ("MxM", "LUD", ...).
    name: str = "workload"
    #: Application class.
    domain: WorkloadDomain = WorkloadDomain.HPC
    #: Relative tolerance when comparing against the golden output.
    rtol: float = 1e-9
    #: Absolute tolerance for the same comparison.
    atol: float = 1e-12

    def __init__(self, seed: int = 1234) -> None:
        self.seed = seed
        self._input = self.build_input(np.random.default_rng(seed))
        self._golden: Optional[np.ndarray] = None
        self._space: Optional[Dict[str, Dict[str, np.ndarray]]] = None

    # ----------------------------------------------------------------
    # Abstract pipeline definition
    # ----------------------------------------------------------------

    @abc.abstractmethod
    def build_input(self, rng: np.random.Generator) -> State:
        """Create the initial state arrays."""

    @abc.abstractmethod
    def stage_names(self) -> Tuple[str, ...]:
        """Ordered pipeline stage names."""

    @abc.abstractmethod
    def run_stage(self, stage: str, state: State) -> State:
        """Execute one stage, returning the (possibly new) state."""

    @abc.abstractmethod
    def output_of(self, state: State) -> np.ndarray:
        """Extract the final output array from the terminal state."""

    # ----------------------------------------------------------------
    # Driver
    # ----------------------------------------------------------------

    def _initial_state(self) -> State:
        return {k: v.copy() for k, v in self._input.items()}

    def execute(
        self, injections: Sequence[Injection] = ()
    ) -> np.ndarray:
        """Run the pipeline, applying ``injections`` at stage entry.

        Raises:
            DueError: if the (possibly corrupted) execution crashes,
                accesses memory out of bounds, or exceeds its
                iteration budget.
        """
        by_stage: Dict[str, list] = {}
        for inj in injections:
            by_stage.setdefault(inj.stage, []).append(inj)
        unknown = set(by_stage) - set(self.stage_names())
        if unknown:
            raise ValueError(
                f"injections target unknown stages {sorted(unknown)};"
                f" valid: {self.stage_names()}"
            )

        state = self._initial_state()
        for stage in self.stage_names():
            for inj in by_stage.get(stage, []):
                self._apply(inj, state)
            try:
                # Corrupted values legitimately overflow to inf/NaN —
                # that is the SDC path, not a diagnostic.
                with np.errstate(all="ignore"):
                    state = self.run_stage(stage, state)
            except DueError:
                raise
            except (IndexError, ValueError, KeyError, ZeroDivisionError,
                    OverflowError, FloatingPointError) as exc:
                # A corrupted index/shape/value killed the execution —
                # on real hardware this is the segfault/exception that
                # the paper logs as a DUE.
                raise DueError(
                    f"{type(exc).__name__} in stage {stage!r}"
                ) from exc
        return self.output_of(state)

    def _apply(self, injection: Injection, state: State) -> None:
        if injection.array not in state:
            raise ValueError(
                f"injection targets unknown array {injection.array!r}"
                f" at stage {injection.stage!r};"
                f" available: {sorted(state)}"
            )
        arr = state[injection.array]
        # Injection indices are taken modulo the array size so plans
        # drawn against the golden space stay valid if a stage resizes
        # state (SC's compacted array shrinks, for instance).
        flip_bit_in_array(
            arr,
            injection.flat_index % arr.size,
            injection.bit % (arr.dtype.itemsize * 8),
        )

    # ----------------------------------------------------------------
    # Golden run and classification
    # ----------------------------------------------------------------

    def golden(self) -> np.ndarray:
        """The fault-free output (computed once, cached)."""
        if self._golden is None:
            self._golden = self.execute(())
        return self._golden

    def classify(self, output: np.ndarray) -> Outcome:
        """Compare an output against the golden copy.

        Subclasses with semantic outputs (CNN labels/boxes) override
        this; the default is element-wise numerical comparison.
        """
        gold = self.golden()
        if output.shape != gold.shape:
            return Outcome.SDC
        if np.allclose(
            output, gold, rtol=self.rtol, atol=self.atol, equal_nan=False
        ):
            return Outcome.MASKED
        return Outcome.SDC

    def run_and_classify(
        self, injections: Sequence[Injection] = ()
    ) -> Outcome:
        """Execute with injections and fold DUEs into the outcome."""
        try:
            output = self.execute(injections)
        except DueError:
            return Outcome.DUE
        return self.classify(output)

    # ----------------------------------------------------------------
    # Injection space
    # ----------------------------------------------------------------

    def injection_space(self) -> Mapping[str, Mapping[str, np.ndarray]]:
        """State arrays visible at each stage entry of a golden run.

        Used by :func:`repro.faults.injector.random_injection_for` to
        draw area-weighted random targets.  Computed once and cached;
        the returned arrays are snapshots (mutating them is harmless).
        """
        if self._space is None:
            space: Dict[str, Dict[str, np.ndarray]] = {}
            state = self._initial_state()
            for stage in self.stage_names():
                space[stage] = {
                    k: v.copy() for k, v in state.items()
                }
                state = self.run_stage(stage, state)
            self._space = space
        return self._space

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r},"
            f" domain={self.domain.value!r}, seed={self.seed})"
        )


def bounded_loop(limit: int, what: str):
    """Iteration guard: raise a DUE instead of hanging.

    Usage::

        for _ in bounded_loop(10_000, "BFS frontier"):
            ...
            if done: break

    On real hardware a corrupted loop bound shows up as a hang that
    the watchdog kills — the paper counts that as a DUE.
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")

    def _gen():
        for i in range(limit):
            yield i
        raise DueError(f"iteration budget exceeded in {what}")

    return _gen()
