"""Vulnerability metrics: AVF-style analysis by exhaustive sampling.

The related work the paper cites characterizes susceptibility with the
Architectural Vulnerability Factor — the fraction of bits whose
corruption changes the observable outcome.  Beam experiments measure
the *product* of raw sensitivity and AVF; the simulator can separate
them: sample bits per (stage, array) and classify each flip.

The per-array breakdown explains the code-dependent cross sections of
experiment E8 from first principles: arrays with high AVF and large
footprints dominate a code's cross section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.faults.injector import Injection
from repro.faults.models import Outcome
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ArrayVulnerability:
    """AVF of one (stage, array) surface.

    Attributes:
        stage: pipeline stage at whose entry the flips landed.
        array: state array name.
        bits: surface size in bits.
        sdc_fraction: fraction of sampled flips ending as SDC.
        due_fraction: fraction ending as DUE.
        samples: flips sampled.
    """

    stage: str
    array: str
    bits: int
    sdc_fraction: float
    due_fraction: float
    samples: int

    @property
    def avf(self) -> float:
        """Total visible fraction (SDC + DUE)."""
        return self.sdc_fraction + self.due_fraction

    @property
    def weighted_avf(self) -> float:
        """AVF weighted by the surface's bit count.

        Proportional to this surface's contribution to the device
        cross section (strikes land per-bit).
        """
        return self.avf * self.bits


def measure_vulnerability(
    workload: Workload,
    samples_per_array: int = 30,
    seed: int = 2020,
) -> List[ArrayVulnerability]:
    """Sample-based AVF of every (stage, array) surface.

    Args:
        workload: the code under analysis.
        samples_per_array: random flips per surface.
        seed: RNG seed.

    Raises:
        ValueError: on a non-positive sample count.
    """
    if samples_per_array <= 0:
        raise ValueError(
            "samples_per_array must be positive,"
            f" got {samples_per_array}"
        )
    rng = np.random.default_rng(seed)
    results: List[ArrayVulnerability] = []
    for stage, arrays in workload.injection_space().items():
        for name, arr in arrays.items():
            bits_per_elem = arr.dtype.itemsize * 8
            total_bits = arr.size * bits_per_elem
            if total_bits == 0:
                continue
            counts: Dict[Outcome, int] = {o: 0 for o in Outcome}
            for _ in range(samples_per_array):
                injection = Injection(
                    stage=stage,
                    array=name,
                    flat_index=int(rng.integers(arr.size)),
                    bit=int(rng.integers(bits_per_elem)),
                )
                counts[
                    workload.run_and_classify([injection])
                ] += 1
            results.append(
                ArrayVulnerability(
                    stage=stage,
                    array=name,
                    bits=total_bits,
                    sdc_fraction=counts[Outcome.SDC]
                    / samples_per_array,
                    due_fraction=counts[Outcome.DUE]
                    / samples_per_array,
                    samples=samples_per_array,
                )
            )
    return results


def workload_avf(
    vulnerabilities: List[ArrayVulnerability],
) -> Tuple[float, float]:
    """Bit-weighted (SDC AVF, DUE AVF) of the whole workload.

    Raises:
        ValueError: on an empty list.
    """
    if not vulnerabilities:
        raise ValueError("no vulnerability data")
    total_bits = sum(v.bits for v in vulnerabilities)
    sdc = sum(v.sdc_fraction * v.bits for v in vulnerabilities)
    due = sum(v.due_fraction * v.bits for v in vulnerabilities)
    return sdc / total_bits, due / total_bits


def most_vulnerable_surface(
    vulnerabilities: List[ArrayVulnerability],
) -> ArrayVulnerability:
    """The surface contributing most to the cross section."""
    if not vulnerabilities:
        raise ValueError("no vulnerability data")
    return max(vulnerabilities, key=lambda v: v.weighted_avf)


__all__ = [
    "ArrayVulnerability",
    "measure_vulnerability",
    "most_vulnerable_surface",
    "workload_avf",
]
