"""The three heterogeneous (APU) codes: SC, CED and BFS.

These are the codes the paper runs split across the APU's CPU and GPU;
our stage structure mirrors that split (CPU half / GPU half) so control
injections can target the synchronization boundary — the resource the
paper found unusually thermal-soft.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.faults.models import DueError
from repro.workloads.base import (
    State,
    Workload,
    WorkloadDomain,
    bounded_loop,
)


class StreamCompaction(Workload):
    """SC: remove elements matching a predicate (memory-bound).

    Scan/compact structure: flag, prefix-sum, scatter.  A flipped flag
    or prefix value corrupts the output layout (SDC); a corrupted
    element count breaks the scatter (DUE).
    """

    name = "SC"
    domain = WorkloadDomain.HETEROGENEOUS

    def __init__(self, n: int = 512, seed: int = 1234):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        values = rng.integers(0, 100, size=self.n).astype(np.int64)
        return {"values": values}

    def stage_names(self) -> Tuple[str, ...]:
        return ("flag", "scan", "scatter")

    def run_stage(self, stage: str, state: State) -> State:
        if stage == "flag":
            # Keep elements >= 50 (removes roughly half).
            state["flags"] = (state["values"] >= 50).astype(np.int64)
        elif stage == "scan":
            flags = state["flags"]
            # Exclusive prefix sum.
            scan = np.zeros_like(flags)
            np.cumsum(flags[:-1], out=scan[1:])
            state["scan"] = scan
            state["count"] = np.array(
                [int(flags.sum())], dtype=np.int64
            )
        elif stage == "scatter":
            count = int(state["count"][0])
            if count < 0 or count > state["values"].size:
                raise DueError("corrupted element count in scatter")
            out = np.zeros(count, dtype=np.int64)
            flags, scan, values = (
                state["flags"],
                state["scan"],
                state["values"],
            )
            idx = scan[flags != 0]
            if idx.size and (idx.min() < 0 or idx.max() >= max(count, 1)):
                raise DueError("scatter index out of bounds")
            out[idx] = values[flags != 0]
            state["output"] = out
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["output"]


class CannyEdgeDetection(Workload):
    """CED: Sobel gradients, non-maximum suppression, hysteresis.

    CPU and GPU work on different frames in the paper; we model one
    frame with the full operator chain.
    """

    name = "CED"
    domain = WorkloadDomain.HETEROGENEOUS
    rtol = 0.0
    atol = 0.0

    def __init__(self, size: int = 32, seed: int = 1234):
        if size < 8:
            raise ValueError(f"size must be >= 8, got {size}")
        self.size = size
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        # A synthetic "urban" frame: blocks (buildings) and a gradient
        # sky so there are real edges to find.
        img = np.zeros((self.size, self.size))
        img += np.linspace(0.0, 0.4, self.size)[None, :]
        for _ in range(4):
            x0, y0 = rng.integers(0, self.size - 6, size=2)
            w, h = rng.integers(3, 6, size=2)
            img[y0 : y0 + h, x0 : x0 + w] = rng.random() * 0.6 + 0.4
        return {"image": img}

    def stage_names(self) -> Tuple[str, ...]:
        return ("blur", "gradient", "nms", "hysteresis")

    def run_stage(self, stage: str, state: State) -> State:
        if stage == "blur":
            img = state["image"]
            padded = np.pad(img, 1, mode="edge")
            out = np.zeros_like(img)
            kernel = np.array(
                [[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=float
            ) / 16.0
            for dy in range(3):
                for dx in range(3):
                    out += kernel[dy, dx] * padded[
                        dy : dy + img.shape[0], dx : dx + img.shape[1]
                    ]
            state["blurred"] = out
        elif stage == "gradient":
            img = np.pad(state["blurred"], 1, mode="edge")
            h, w = state["blurred"].shape
            gx = (
                img[0:h, 2:] + 2 * img[1 : h + 1, 2:] + img[2:, 2:]
                - img[0:h, :w] - 2 * img[1 : h + 1, :w] - img[2:, :w]
            )
            gy = (
                img[2:, 0:w] + 2 * img[2:, 1 : w + 1] + img[2:, 2:]
                - img[:h, 0:w] - 2 * img[:h, 1 : w + 1] - img[:h, 2:]
            )
            state["magnitude"] = np.hypot(gx, gy)
            state["direction"] = np.arctan2(gy, gx)
        elif stage == "nms":
            mag = state["magnitude"]
            ang = state["direction"]
            # Quantize direction to 4 sectors and suppress non-maxima.
            sector = (
                np.round(ang / (np.pi / 4.0)).astype(int) % 4
            )
            offsets = {
                0: (0, 1), 1: (1, 1), 2: (1, 0), 3: (1, -1),
            }
            out = np.zeros_like(mag)
            h, w = mag.shape
            for s, (dy, dx) in offsets.items():
                ys, xs = np.nonzero(sector == s)
                for y, x in zip(ys, xs):
                    y1, x1 = y + dy, x + dx
                    y2, x2 = y - dy, x - dx
                    m1 = mag[y1, x1] if 0 <= y1 < h and 0 <= x1 < w else 0
                    m2 = mag[y2, x2] if 0 <= y2 < h and 0 <= x2 < w else 0
                    if mag[y, x] >= m1 and mag[y, x] >= m2:
                        out[y, x] = mag[y, x]
            state["thin"] = out
        elif stage == "hysteresis":
            thin = state["thin"]
            high = 0.35 * float(thin.max()) if thin.size else 0.0
            low = 0.5 * high
            strong = thin >= high
            weak = (thin >= low) & ~strong
            edges = strong.copy()
            # Grow strong edges into connected weak pixels.
            for _ in bounded_loop(thin.size + 1, "CED hysteresis"):
                padded = np.pad(edges, 1)
                neighbour = (
                    padded[:-2, 1:-1] | padded[2:, 1:-1]
                    | padded[1:-1, :-2] | padded[1:-1, 2:]
                    | padded[:-2, :-2] | padded[:-2, 2:]
                    | padded[2:, :-2] | padded[2:, 2:]
                )
                grown = edges | (weak & neighbour)
                if np.array_equal(grown, edges):
                    break
                edges = grown
            state["edges"] = edges.astype(np.uint8)
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["edges"]


class BreadthFirstSearch(Workload):
    """BFS over a road-network-like graph (non-uniform memory access).

    The CSR representation makes index corruption consequential: a
    flipped offset sends the traversal out of bounds — the crash the
    paper's GPS-navigation motivation implies.
    """

    name = "BFS"
    domain = WorkloadDomain.HETEROGENEOUS
    rtol = 0.0
    atol = 0.0

    def __init__(self, n_nodes: int = 256, degree: int = 4,
                 seed: int = 1234):
        if n_nodes <= 1:
            raise ValueError(f"need > 1 node, got {n_nodes}")
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.n_nodes = n_nodes
        self.degree = degree
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        # Ring + random chords: connected, low diameter, road-like.
        edges = set()
        for v in range(self.n_nodes):
            edges.add((v, (v + 1) % self.n_nodes))
            edges.add(((v + 1) % self.n_nodes, v))
        extra = self.n_nodes * (self.degree - 2) // 2
        for _ in range(max(extra, 0)):
            a, b = rng.integers(0, self.n_nodes, size=2)
            if a != b:
                edges.add((int(a), int(b)))
                edges.add((int(b), int(a)))
        by_src: dict = {}
        for a, b in sorted(edges):
            by_src.setdefault(a, []).append(b)
        offsets = np.zeros(self.n_nodes + 1, dtype=np.int64)
        targets = []
        for v in range(self.n_nodes):
            nbrs = by_src.get(v, [])
            targets.extend(nbrs)
            offsets[v + 1] = offsets[v] + len(nbrs)
        return {
            "offsets": offsets,
            "targets": np.asarray(targets, dtype=np.int64),
            "distance": np.full(self.n_nodes, -1, dtype=np.int64),
        }

    def stage_names(self) -> Tuple[str, ...]:
        return ("traverse",)

    def run_stage(self, stage: str, state: State) -> State:
        offsets, targets = state["offsets"], state["targets"]
        dist = state["distance"]
        dist[:] = -1
        dist[0] = 0
        frontier = [0]
        for _ in bounded_loop(self.n_nodes + 1, "BFS traversal"):
            if not frontier:
                break
            nxt = []
            for v in frontier:
                if not 0 <= v < self.n_nodes:
                    raise DueError("BFS vertex id out of bounds")
                lo, hi = int(offsets[v]), int(offsets[v + 1])
                if lo < 0 or hi < lo or hi > targets.size:
                    raise DueError("BFS CSR offsets corrupted")
                for w in targets[lo:hi]:
                    w = int(w)
                    if not 0 <= w < self.n_nodes:
                        raise DueError("BFS edge target out of bounds")
                    if dist[w] < 0:
                        dist[w] = dist[v] + 1
                        nxt.append(w)
            frontier = nxt
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["distance"]
