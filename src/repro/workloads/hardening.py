"""Software hardening: duplication with comparison (DWC).

The paper's remedy space is physical (boron depletion, shielding); the
standard *software* remedy for SDCs is redundant execution.  A
:class:`DuplicatedWorkload` runs the wrapped workload twice per
"execution" and compares: a mismatch is a *detection* (the SDC becomes
a DUE-like recoverable event), an agreement passes through.  Faults in
one replica are therefore never silent — at 2x the compute cost.

Used by the hardening ablation to show what fraction of the thermal
SDC FIT duplication buys back on each device class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.injector import Injection
from repro.faults.models import DueError, Outcome
from repro.workloads.base import Workload


class DwcOutcome(enum.Enum):
    """Outcome of one duplicated execution."""

    #: Replicas agreed and matched the golden output.
    CORRECT = "correct"
    #: Replicas disagreed: error detected, recovery possible.
    DETECTED = "detected"
    #: Replicas agreed on a *wrong* output (fault before the fork,
    #: or symmetric corruption): still silent.
    SILENT = "silent"
    #: A replica crashed: ordinary DUE.
    CRASHED = "crashed"


@dataclass
class DuplicatedWorkload:
    """Duplication-with-comparison wrapper around a workload.

    Faults are injected into *one* replica (radiation strikes one
    physical execution); inputs shared by both replicas are modelled
    by ``shared_input_stages`` — an injection into one of those
    stages corrupts both replicas identically and stays silent.

    Attributes:
        workload: the wrapped workload.
        shared_input_stages: stages whose state is physically shared
            (e.g. the input buffers both replicas read).
    """

    workload: Workload
    shared_input_stages: Sequence[str] = ()

    def run(self, injections: Sequence[Injection] = ()) -> DwcOutcome:
        """One duplicated execution with faults in replica A."""
        shared = [
            i
            for i in injections
            if i.stage in self.shared_input_stages
        ]
        private = [
            i
            for i in injections
            if i.stage not in self.shared_input_stages
        ]
        try:
            out_a = self.workload.execute(list(injections))
        except DueError:
            return DwcOutcome.CRASHED
        try:
            # Replica B sees only the shared-input corruption.
            out_b = self.workload.execute(shared)
        except DueError:
            return DwcOutcome.CRASHED
        if out_a.shape != out_b.shape or not np.allclose(
            out_a,
            out_b,
            rtol=self.workload.rtol,
            atol=self.workload.atol,
            equal_nan=True,
        ):
            return DwcOutcome.DETECTED
        # Replicas agree; are they right?
        if self.workload.classify(out_a) is Outcome.MASKED:
            return DwcOutcome.CORRECT
        del private
        return DwcOutcome.SILENT

    def sdc_coverage(
        self,
        rng: np.random.Generator,
        n_trials: int = 100,
    ) -> float:
        """Fraction of would-be SDCs that duplication detects.

        Draws random injections, keeps the ones that are SDCs on the
        bare workload, and checks what DWC does with them.

        Raises:
            ValueError: if no SDC-producing injections are found in
                ``n_trials`` draws (coverage undefined).
        """
        from repro.faults.injector import random_injection_for

        if n_trials <= 0:
            raise ValueError(
                f"n_trials must be positive, got {n_trials}"
            )
        space = self.workload.injection_space()
        sdc_total = 0
        detected = 0
        for _ in range(n_trials):
            injection = random_injection_for(rng, space)
            if (
                self.workload.run_and_classify([injection])
                is not Outcome.SDC
            ):
                continue
            sdc_total += 1
            if self.run([injection]) is DwcOutcome.DETECTED:
                detected += 1
        if sdc_total == 0:
            raise ValueError(
                "no SDC-producing injections found; increase"
                " n_trials"
            )
        return detected / sdc_total


__all__ = ["DwcOutcome", "DuplicatedWorkload"]
