"""The four HPC codes: MxM, LUD, LavaMD and HotSpot (Section III-B).

All are NumPy implementations sized to run in milliseconds so that a
virtual beam campaign can execute thousands of injected runs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.faults.models import DueError
from repro.workloads.base import State, Workload, WorkloadDomain


class MxM(Workload):
    """Blocked matrix multiplication — the compute-bound archetype.

    ``C = A @ B`` computed block-by-block (the blocking gives the
    pipeline distinct stages so injections can land mid-computation).
    """

    name = "MxM"
    domain = WorkloadDomain.HPC

    def __init__(
        self,
        n: int = 24,
        block: int = 8,
        seed: int = 1234,
        dtype: str = "float64",
    ):
        if n <= 0 or block <= 0 or n % block:
            raise ValueError(
                f"n ({n}) must be a positive multiple of block ({block})"
            )
        if dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be float64 or float32, got {dtype!r}"
            )
        self.n = n
        self.block = block
        # Single vs double precision: the paper's FPGA comparison
        # motivates exposing the precision knob — single-precision
        # state has fewer ignorable mantissa bits, so a larger
        # fraction of flips is visible.
        self.dtype = np.dtype(dtype)
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        return {
            "A": rng.standard_normal((self.n, self.n)).astype(
                self.dtype
            ),
            "B": rng.standard_normal((self.n, self.n)).astype(
                self.dtype
            ),
            "C": np.zeros((self.n, self.n), dtype=self.dtype),
        }

    def stage_names(self) -> Tuple[str, ...]:
        blocks = self.n // self.block
        return tuple(
            f"block-{i}-{j}" for i in range(blocks) for j in range(blocks)
        )

    def run_stage(self, stage: str, state: State) -> State:
        _, si, sj = stage.split("-")
        i, j = int(si) * self.block, int(sj) * self.block
        a = state["A"][i : i + self.block, :]
        b = state["B"][:, j : j + self.block]
        state["C"][i : i + self.block, j : j + self.block] = a @ b
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["C"]


class LUD(Workload):
    """LU decomposition (Doolittle, partial pivoting) of a dense system.

    Output is the solution of ``A x = b`` via the computed factors, so
    corrupted pivots show up as wrong answers; a zero pivot (possible
    after a high-order-bit flip) raises — a DUE, exactly like the
    device dividing by zero.
    """

    name = "LUD"
    domain = WorkloadDomain.HPC
    rtol = 1e-7

    def __init__(self, n: int = 24, seed: int = 1234):
        if n <= 1:
            raise ValueError(f"n must be > 1, got {n}")
        self.n = n
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        a = rng.standard_normal((self.n, self.n))
        # Diagonal dominance keeps the golden run well-conditioned.
        a += np.eye(self.n) * self.n
        return {
            "A": a,
            "b": rng.standard_normal(self.n),
            "x": np.zeros(self.n),
        }

    def stage_names(self) -> Tuple[str, ...]:
        return ("factor", "forward", "backward")

    def run_stage(self, stage: str, state: State) -> State:
        if stage == "factor":
            lu = state["A"].copy()
            n = self.n
            perm = np.arange(n)
            for k in range(n - 1):
                pivot_row = k + int(np.argmax(np.abs(lu[k:, k])))
                if lu[pivot_row, k] == 0.0:
                    raise DueError("zero pivot in LUD factorization")
                if pivot_row != k:
                    lu[[k, pivot_row]] = lu[[pivot_row, k]]
                    perm[[k, pivot_row]] = perm[[pivot_row, k]]
                lu[k + 1 :, k] /= lu[k, k]
                lu[k + 1 :, k + 1 :] -= np.outer(
                    lu[k + 1 :, k], lu[k, k + 1 :]
                )
            state["LU"] = lu
            state["perm"] = perm
        elif stage == "forward":
            lu, perm = state["LU"], state["perm"]
            y = state["b"][perm].astype(float)
            for i in range(1, self.n):
                y[i] -= lu[i, :i] @ y[:i]
            state["y"] = y
        elif stage == "backward":
            lu, y = state["LU"], state["y"]
            x = y.copy()
            for i in range(self.n - 1, -1, -1):
                x[i] -= lu[i, i + 1 :] @ x[i + 1 :]
                if lu[i, i] == 0.0:
                    raise DueError("zero pivot in back substitution")
                x[i] /= lu[i, i]
            state["x"] = x
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["x"]


class LavaMD(Workload):
    """Particle interactions in a 3-D box grid (cutoff pair potential).

    Mirrors the Rodinia kernel: for each box, accumulate forces from
    particles in the box and its neighbours, dominated by dot products.
    """

    name = "LavaMD"
    domain = WorkloadDomain.HPC
    rtol = 1e-8

    def __init__(
        self, boxes_per_side: int = 2, per_box: int = 8, seed: int = 1234
    ):
        if boxes_per_side <= 0 or per_box <= 0:
            raise ValueError("box grid and occupancy must be positive")
        self.boxes_per_side = boxes_per_side
        self.per_box = per_box
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        n_boxes = self.boxes_per_side ** 3
        n = n_boxes * self.per_box
        positions = rng.random((n, 3)) * self.boxes_per_side
        charges = rng.random(n)
        return {
            "positions": positions,
            "charges": charges,
            "forces": np.zeros((n, 3)),
        }

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(
            f"box-{b}" for b in range(self.boxes_per_side ** 3)
        )

    def _box_of(self, positions: np.ndarray) -> np.ndarray:
        cells = np.floor(positions).astype(int)
        cells = np.clip(cells, 0, self.boxes_per_side - 1)
        s = self.boxes_per_side
        return cells[:, 0] * s * s + cells[:, 1] * s + cells[:, 2]

    def run_stage(self, stage: str, state: State) -> State:
        box_id = int(stage.split("-")[1])
        positions, charges = state["positions"], state["charges"]
        box_index = self._box_of(positions)
        mine = np.nonzero(box_index == box_id)[0]
        if mine.size == 0:
            return state
        cutoff_sq = 1.0
        deltas = positions[None, :, :] - positions[mine][:, None, :]
        dist_sq = (deltas ** 2).sum(axis=2)
        mask = (dist_sq > 0.0) & (dist_sq < cutoff_sq)
        # Screened-Coulomb-like kernel, vectorized over pairs.
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(mask, 1.0 / np.maximum(dist_sq, 1e-300), 0.0)
        weights = inv * charges[None, :] * mask
        state["forces"][mine] += (
            deltas * weights[:, :, None]
        ).sum(axis=1)
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["forces"]


class HotSpot(Workload):
    """Stencil thermal solver on an architectural floor plan.

    Jacobi iterations of the 5-point heat stencil with a power map,
    matching the Rodinia HotSpot structure.
    """

    name = "HotSpot"
    domain = WorkloadDomain.HPC
    rtol = 1e-8

    def __init__(
        self, grid: int = 32, iterations: int = 12, seed: int = 1234
    ):
        if grid < 3:
            raise ValueError(f"grid must be >= 3, got {grid}")
        if iterations <= 0:
            raise ValueError(
                f"iterations must be positive, got {iterations}"
            )
        self.grid = grid
        self.iterations = iterations
        super().__init__(seed)

    def build_input(self, rng: np.random.Generator) -> State:
        return {
            "temperature": np.full((self.grid, self.grid), 45.0)
            + rng.random((self.grid, self.grid)),
            "power": rng.random((self.grid, self.grid)) * 2.0,
        }

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(f"iter-{i}" for i in range(self.iterations))

    def run_stage(self, stage: str, state: State) -> State:
        t = state["temperature"]
        p = state["power"]
        inner = t[1:-1, 1:-1]
        neighbours = (
            t[:-2, 1:-1] + t[2:, 1:-1] + t[1:-1, :-2] + t[1:-1, 2:]
        )
        new = t.copy()
        new[1:-1, 1:-1] = inner + 0.1 * (
            neighbours - 4.0 * inner
        ) + 0.05 * p[1:-1, 1:-1]
        state["temperature"] = new
        return state

    def output_of(self, state: State) -> np.ndarray:
        return state["temperature"]
