"""Workload registry: name -> factory, matching the paper's code list."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.workloads.base import Workload
from repro.workloads.heterogeneous import (
    BreadthFirstSearch,
    CannyEdgeDetection,
    StreamCompaction,
)
from repro.workloads.hpc import HotSpot, LUD, LavaMD, MxM
from repro.workloads.neural import MnistClassifier, YoloDetector

#: Factories keyed by the paper's code names.
WORKLOAD_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "MxM": MxM,
    "LUD": LUD,
    "LavaMD": LavaMD,
    "HotSpot": HotSpot,
    "SC": StreamCompaction,
    "CED": CannyEdgeDetection,
    "BFS": BreadthFirstSearch,
    "YOLO": YoloDetector,
    "MNIST": MnistClassifier,
}

#: All code names, in the paper's presentation order.
ALL_CODES: Tuple[str, ...] = tuple(WORKLOAD_FACTORIES)


def create_workload(name: str, seed: int = 1234, **kwargs) -> Workload:
    """Instantiate a workload by its paper name.

    Args:
        name: one of :data:`ALL_CODES`.
        seed: input-generation seed.
        **kwargs: size parameters forwarded to the workload.

    Raises:
        KeyError: for an unknown code name.
    """
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; valid: {sorted(ALL_CODES)}"
        ) from None
    return factory(seed=seed, **kwargs)
