"""The paper's nine benchmark codes as injectable staged pipelines."""

from repro.workloads.base import (
    State,
    Workload,
    WorkloadDomain,
    bounded_loop,
)
from repro.workloads.hpc import HotSpot, LUD, LavaMD, MxM
from repro.workloads.heterogeneous import (
    BreadthFirstSearch,
    CannyEdgeDetection,
    StreamCompaction,
)
from repro.workloads.neural import MnistClassifier, YoloDetector
from repro.workloads.hardening import DuplicatedWorkload, DwcOutcome
from repro.workloads.heterogeneous_exec import SplitExecution, SplitOutcome
from repro.workloads.metrics import (
    ArrayVulnerability,
    measure_vulnerability,
    most_vulnerable_surface,
    workload_avf,
)
from repro.workloads.registry import (
    ALL_CODES,
    WORKLOAD_FACTORIES,
    create_workload,
)

__all__ = [
    "State",
    "Workload",
    "WorkloadDomain",
    "bounded_loop",
    "HotSpot",
    "LUD",
    "LavaMD",
    "MxM",
    "BreadthFirstSearch",
    "CannyEdgeDetection",
    "StreamCompaction",
    "MnistClassifier",
    "YoloDetector",
    "SplitExecution",
    "SplitOutcome",
    "ArrayVulnerability",
    "measure_vulnerability",
    "most_vulnerable_surface",
    "workload_avf",
    "DuplicatedWorkload",
    "DwcOutcome",
    "ALL_CODES",
    "WORKLOAD_FACTORIES",
    "create_workload",
]
