"""Failure actions a chaos controller can fire at a fault point.

Each action reproduces one way real campaign infrastructure dies:

* ``raise-transient`` — the beam-room power blip: a
  :class:`~repro.runtime.errors.TransientHarnessError` the supervised
  runtime must retry with backoff.
* ``crash`` — a persistent harness bug: a plain exception (outside
  the ``ReproError`` hierarchy on purpose) the runtime must isolate.
* ``kill-process`` / ``kill-worker`` — the host reboot / OOM kill:
  ``SIGKILL`` to the current process, no cleanup, no excuses.
* ``delay`` — a hung device or stalled filesystem: the injected
  clock jumps past the wall-clock budget.
* ``torn-write`` — power loss mid-write: half the checkpoint bytes
  land in the temp file, then a transient fault.
* ``truncate`` / ``corrupt`` — storage rot: the checkpoint file on
  disk is cut in half, or its payload is silently altered while
  remaining valid JSON (the case only a checksum can catch).
* ``duplicate`` — at-least-once delivery: a checkpoint write, a
  checkpoint read, or a sweep-tally delivery happens twice; the
  consumer must be idempotent.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path

from repro.runtime.errors import TransientHarnessError

#: Action name constants (JSON-stable, used in CLI verdict matrices).
RAISE_TRANSIENT = "raise-transient"
CRASH = "crash"
KILL_PROCESS = "kill-process"
KILL_WORKER = "kill-worker"
DELAY = "delay"
TORN_WRITE = "torn-write"
TRUNCATE = "truncate"
CORRUPT = "corrupt"
DUPLICATE = "duplicate"

#: Every action, in documentation order.
ALL_ACTIONS = (
    RAISE_TRANSIENT,
    CRASH,
    KILL_PROCESS,
    KILL_WORKER,
    DELAY,
    TORN_WRITE,
    TRUNCATE,
    CORRUPT,
    DUPLICATE,
)

#: Checkpoint payload fields whose value the ``corrupt`` action bumps
#: (whichever exists first) — each changes resume *semantics*, so a
#: reader without checksum verification resumes silently wrong.
_CORRUPTIBLE_FIELDS = (
    "next_step",
    "next_day",
    "events_used",
    "seq",
    "n_points",
)


class ChaosCrashError(Exception):
    """An injected persistent harness crash.

    Deliberately **not** a ``ReproError``: the supervised runtime
    retries only transient faults, so this must travel the isolation
    path, exactly like an unexpected bug would.
    """


def perform(action: str, context: dict, controller) -> None:
    """Execute ``action`` with the fault point's ``context``.

    Args:
        action: one of :data:`ALL_ACTIONS`.
        context: the keyword arguments of the ``fault_point`` call.
        controller: the firing controller (supplies the injected
            clock and the configured delay for ``delay``).

    Raises:
        TransientHarnessError: for ``raise-transient`` and
            ``torn-write`` (after tearing the temp file).
        ChaosCrashError: for ``crash``.
        ValueError: for an unknown action name.
    """
    if action == RAISE_TRANSIENT:
        raise TransientHarnessError("chaos: injected transient fault")
    if action == CRASH:
        raise ChaosCrashError("chaos: injected harness crash")
    if action in (KILL_PROCESS, KILL_WORKER):
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover — unreachable
    if action == DELAY:
        controller.advance_clock()
        return
    if action == TORN_WRITE:
        _torn_write(context)
        raise TransientHarnessError("chaos: torn checkpoint write")
    if action == TRUNCATE:
        _truncate(Path(context["path"]))
        return
    if action == CORRUPT:
        _corrupt(Path(context["path"]))
        return
    if action == DUPLICATE:
        _duplicate(context)
        return
    raise ValueError(f"unknown chaos action {action!r}")


def _torn_write(context: dict) -> None:
    """Write only the first half of the payload to the temp file.

    With an ``offset`` in the context (the study ledger, which
    appends in place rather than tmp-then-rename), the tear keeps
    every byte before the offset intact and leaves half the new
    record dangling — exactly what power loss mid-append produces.
    """
    tmp = Path(context["tmp"])
    text = str(context["text"])
    half = text[: len(text) // 2]
    if "offset" in context:
        offset = int(context["offset"])
        with open(tmp, "r+b") as handle:
            handle.truncate(offset)
            handle.seek(offset)
            handle.write(half.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        return
    tmp.write_text(half)


def _truncate(path: Path) -> None:
    """Cut the checkpoint file in half (storage-level truncation)."""
    data = path.read_text()
    path.write_text(data[: len(data) // 2])


def _corrupt(path: Path) -> None:
    """Alter the payload while keeping the file parseable.

    The stored checksum is left untouched, so a checksum-verifying
    reader raises ``CheckpointError`` while a naive reader resumes
    from silently wrong state — the invariant the chaos suite exists
    to catch.  A JSON-lines file (the study ledger) gets its first
    record altered in place; a whole-file JSON document (a
    checkpoint) is rewritten as before.
    """
    raw = path.read_text()
    try:
        data = json.loads(raw)
    except json.JSONDecodeError:
        lines = raw.split("\n")
        lines[0] = json.dumps(_bump(json.loads(lines[0])), sort_keys=True)
        path.write_text("\n".join(lines))
        return
    path.write_text(json.dumps(_bump(data), indent=2, sort_keys=True))


def _bump(data: dict) -> dict:
    """Increment the first corruptible field present (in place)."""
    for field in _CORRUPTIBLE_FIELDS:
        if field in data:
            data[field] = int(data[field]) + 1
            break
    return data


def _duplicate(context: dict) -> None:
    """Deliver the site's payload a second time.

    * ``batch.merge`` passes ``store``/``index``/``part``: redeliver
      the same sweep tally into the accumulator.
    * ``checkpoint.write`` passes ``tmp``/``path``/``text``: perform
      one full extra write before the real one.
    * ``checkpoint.load`` passes ``path``: read the file an extra
      time and discard the result.
    """
    if "store" in context:
        context["store"](context["index"], context["part"])
        return
    if "text" in context:
        tmp = Path(context["tmp"])
        tmp.write_text(str(context["text"]))
        os.replace(tmp, Path(context["path"]))
        return
    if "path" in context:
        json.loads(Path(context["path"]).read_text())


__all__ = [
    "ALL_ACTIONS",
    "ChaosCrashError",
    "DELAY",
    "DUPLICATE",
    "KILL_PROCESS",
    "KILL_WORKER",
    "RAISE_TRANSIENT",
    "TORN_WRITE",
    "perform",
]
