"""Trial workloads and subprocess execution for chaos runs.

The invariant checker replays the same small supervised workloads
over and over — clean, faulted, killed, resumed — so their sizing
lives here, shared between the parent process (clean baselines,
in-process trials) and the forked children used for SIGKILL trials
(a kill must hit a *real* separate process; nothing after SIGKILL
runs, so the child proves the fault fired by the controller's marker
file, written immediately before the kill).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.chaos.faultpoints import install
from repro.chaos.schedule import ChaosController, ChaosSpec
from repro.obs import core as obs
from repro.core.fleet import FleetSimulator
from repro.devices import get_device
from repro.environment import NEW_YORK, datacenter_scenario
from repro.runtime.budget import Budget
from repro.runtime.errors import ConfigurationError
from repro.runtime.supervisor import (
    CampaignRunner,
    ExposureStep,
    FleetRunner,
    PLAN_FACTORIES,
    heterogeneous_plan,
)

#: Campaign trial sizing (small simulated exposures; seconds per run).
CAMPAIGN_DURATION_S = 300.0
CAMPAIGN_MAX_EVENTS = 4
CAMPAIGN_SEED = 2020

#: Fleet trial sizing.
FLEET_N_DAYS = 15
FLEET_CHECKPOINT_EVERY_DAYS = 5
FLEET_N_DEVICES = 5
FLEET_SEED = 2020

#: Wall-clock budget used by ``delay`` trials (the injected clock
#: jumps far past it; real runs never get near it).
DELAY_TRIAL_BUDGET_S = 60.0

#: How long a forked chaos child may run before the trial is
#: declared hung (a recovery invariant in itself).
CHILD_TIMEOUT_S = 120.0


def _no_sleep(_delay_s: float) -> None:
    """Backoff sleeper that returns immediately (trials never wait)."""


def build_campaign_plan(plan: str = "heterogeneous") -> List[ExposureStep]:
    """The campaign plan chaos trials run, sized for speed.

    Args:
        plan: a :data:`~repro.runtime.supervisor.PLAN_FACTORIES`
            name; ``heterogeneous`` (the default) is shrunk to
            seconds-scale exposures.

    Raises:
        ConfigurationError: for an unknown plan name.
    """
    if plan == "heterogeneous":
        return heterogeneous_plan(
            duration_s=CAMPAIGN_DURATION_S,
            max_events_per_step=CAMPAIGN_MAX_EVENTS,
        )
    if plan not in PLAN_FACTORIES:
        raise ConfigurationError(
            f"unknown plan {plan!r}; valid: {tuple(PLAN_FACTORIES)}"
        )
    return PLAN_FACTORIES[plan]()


def make_campaign_runner(
    checkpoint_path: Optional[Union[str, Path]] = None,
    plan: str = "heterogeneous",
    clock: Optional[Callable[[], float]] = None,
    wall_clock_budget_s: Optional[float] = None,
) -> CampaignRunner:
    """A trial-sized :class:`CampaignRunner` (no real backoff sleeps)."""
    budget = (
        Budget(wall_clock_s=wall_clock_budget_s)
        if wall_clock_budget_s is not None
        else None
    )
    return CampaignRunner(
        build_campaign_plan(plan),
        seed=CAMPAIGN_SEED,
        budget=budget,
        checkpoint_path=checkpoint_path,
        checkpoint_every=1,
        clock=clock,
        sleep=_no_sleep,
    )


def make_fleet_runner(
    checkpoint_path: Optional[Union[str, Path]] = None,
    clock: Optional[Callable[[], float]] = None,
    wall_clock_budget_s: Optional[float] = None,
) -> FleetRunner:
    """A trial-sized :class:`FleetRunner` over a fresh simulator."""
    simulator = FleetSimulator(
        get_device("K20"),
        datacenter_scenario(NEW_YORK),
        n_devices=FLEET_N_DEVICES,
        seed=FLEET_SEED,
    )
    budget = (
        Budget(wall_clock_s=wall_clock_budget_s)
        if wall_clock_budget_s is not None
        else None
    )
    return FleetRunner(
        simulator,
        checkpoint_path=checkpoint_path,
        checkpoint_every_days=FLEET_CHECKPOINT_EVERY_DAYS,
        budget=budget,
        clock=clock,
        sleep=_no_sleep,
    )


# ----------------------------------------------------------------------
# Forked children for SIGKILL trials
# ----------------------------------------------------------------------


def _campaign_child(
    spec_dict: dict, checkpoint_path: str, plan: str
) -> None:
    """Child entry: run a checkpointed campaign under chaos."""
    install(ChaosController(ChaosSpec.from_dict(spec_dict)))
    make_campaign_runner(checkpoint_path, plan=plan).run()


def _fleet_child(
    spec_dict: dict, checkpoint_path: str, plan: str
) -> None:
    """Child entry: run a checkpointed fleet simulation under chaos."""
    del plan
    install(ChaosController(ChaosSpec.from_dict(spec_dict)))
    make_fleet_runner(checkpoint_path).run(n_days=FLEET_N_DAYS)


#: Subprocess trial targets by workload name.
CHILD_TARGETS: Dict[str, Callable[[dict, str, str], None]] = {
    "campaign": _campaign_child,
    "fleet": _fleet_child,
}


@dataclass(frozen=True)
class SubprocessOutcome:
    """What happened to a forked chaos child.

    Attributes:
        exit_code: the child's exit code (``-9`` = died to SIGKILL;
            ``None`` only if it was still alive and got terminated).
        hung: the child outlived :data:`CHILD_TIMEOUT_S`.
        fired: the controller's marker file exists, proving the
            fault fired before the process died.
    """

    exit_code: Optional[int]
    hung: bool
    fired: bool


def run_kill_trial(
    target: str,
    spec: ChaosSpec,
    checkpoint_path: Union[str, Path],
    plan: str = "heterogeneous",
    timeout_s: float = CHILD_TIMEOUT_S,
) -> SubprocessOutcome:
    """Run one workload in a forked child and let chaos kill it.

    Args:
        target: a :data:`CHILD_TARGETS` name.
        spec: the injection (should carry a ``marker_path``; without
            one a SIGKILL trial cannot prove the fault fired).
        checkpoint_path: where the child checkpoints (inspected by
            the caller afterwards).
        plan: campaign plan name (campaign target only).
        timeout_s: hang cutoff.

    Raises:
        ConfigurationError: for an unknown target name, or when
            ``fork`` is unavailable (SIGKILL trials need inherited
            module state).
    """
    if target not in CHILD_TARGETS:
        raise ConfigurationError(
            f"unknown kill-trial target {target!r};"
            f" valid: {tuple(CHILD_TARGETS)}"
        )
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigurationError(
            "SIGKILL trials require the 'fork' start method"
        )
    with obs.span(
        "chaos.trial",
        target=target,
        site=spec.site,
        action=spec.action,
        fire_at=spec.fire_at,
    ):
        obs.inc("repro_chaos_trials_total")
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=CHILD_TARGETS[target],
            args=(spec.to_dict(), str(checkpoint_path), plan),
        )
        child.start()
        child.join(timeout_s)
        hung = child.is_alive()
        if hung:
            child.kill()
            child.join()
        fired = (
            spec.marker_path is not None
            and Path(spec.marker_path).exists()
        )
        return SubprocessOutcome(
            exit_code=child.exitcode, hung=hung, fired=fired
        )


__all__ = [
    "CHILD_TIMEOUT_S",
    "DELAY_TRIAL_BUDGET_S",
    "FLEET_N_DAYS",
    "build_campaign_plan",
    "make_campaign_runner",
    "make_fleet_runner",
    "run_kill_trial",
]
