"""Trial workloads and subprocess execution for chaos runs.

The invariant checker replays the same small supervised workloads
over and over — clean, faulted, killed, resumed — so their sizing
lives here, shared between the parent process (clean baselines,
in-process trials) and the forked children used for SIGKILL trials
(a kill must hit a *real* separate process; nothing after SIGKILL
runs, so the child proves the fault fired by the controller's marker
file, written immediately before the kill).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.chaos.faultpoints import install
from repro.chaos.schedule import ChaosController, ChaosSpec
from repro.obs import core as obs
from repro.core.fleet import FleetSimulator
from repro.devices import get_device
from repro.environment import NEW_YORK, datacenter_scenario
from repro.runtime.budget import Budget, RetryPolicy
from repro.runtime.errors import ConfigurationError
from repro.runtime.supervisor import (
    CampaignRunner,
    ExposureStep,
    FleetRunner,
    PLAN_FACTORIES,
    heterogeneous_plan,
)
from repro.service.admission import AdmissionController
from repro.service.compute import CircuitBreaker, QueryExecutor
from repro.service.cache import ResultCache
from repro.service.server import FitService
from repro.spectra.beamlines import rotax_spectrum
from repro.studies.evaluate import evaluate_shard
from repro.studies.scheduler import ENGINE_CASCADE, StudyScheduler
from repro.studies.spec import Shard, StudySpec
from repro.transport.api import TransportQuery
from repro.transport.materials import CADMIUM
from repro.transport.surrogate import (
    SurfaceSpec,
    SurrogateStore,
    build_artifact,
)
from repro.transport.surrogate.build import log_grid

#: Campaign trial sizing (small simulated exposures; seconds per run).
CAMPAIGN_DURATION_S = 300.0
CAMPAIGN_MAX_EVENTS = 4
CAMPAIGN_SEED = 2020

#: Fleet trial sizing.
FLEET_N_DAYS = 15
FLEET_CHECKPOINT_EVERY_DAYS = 5
FLEET_N_DEVICES = 5
FLEET_SEED = 2020

#: Wall-clock budget used by ``delay`` trials (the injected clock
#: jumps far past it; real runs never get near it).
DELAY_TRIAL_BUDGET_S = 60.0

#: How long a forked chaos child may run before the trial is
#: declared hung (a recovery invariant in itself).
CHILD_TIMEOUT_S = 120.0


def _no_sleep(_delay_s: float) -> None:
    """Backoff sleeper that returns immediately (trials never wait)."""


def build_campaign_plan(plan: str = "heterogeneous") -> List[ExposureStep]:
    """The campaign plan chaos trials run, sized for speed.

    Args:
        plan: a :data:`~repro.runtime.supervisor.PLAN_FACTORIES`
            name; ``heterogeneous`` (the default) is shrunk to
            seconds-scale exposures.

    Raises:
        ConfigurationError: for an unknown plan name.
    """
    if plan == "heterogeneous":
        return heterogeneous_plan(
            duration_s=CAMPAIGN_DURATION_S,
            max_events_per_step=CAMPAIGN_MAX_EVENTS,
        )
    if plan not in PLAN_FACTORIES:
        raise ConfigurationError(
            f"unknown plan {plan!r}; valid: {tuple(PLAN_FACTORIES)}"
        )
    return PLAN_FACTORIES[plan]()


def make_campaign_runner(
    checkpoint_path: Optional[Union[str, Path]] = None,
    plan: str = "heterogeneous",
    clock: Optional[Callable[[], float]] = None,
    wall_clock_budget_s: Optional[float] = None,
) -> CampaignRunner:
    """A trial-sized :class:`CampaignRunner` (no real backoff sleeps)."""
    budget = (
        Budget(wall_clock_s=wall_clock_budget_s)
        if wall_clock_budget_s is not None
        else None
    )
    return CampaignRunner(
        build_campaign_plan(plan),
        seed=CAMPAIGN_SEED,
        budget=budget,
        checkpoint_path=checkpoint_path,
        checkpoint_every=1,
        clock=clock,
        sleep=_no_sleep,
    )


def make_fleet_runner(
    checkpoint_path: Optional[Union[str, Path]] = None,
    clock: Optional[Callable[[], float]] = None,
    wall_clock_budget_s: Optional[float] = None,
) -> FleetRunner:
    """A trial-sized :class:`FleetRunner` over a fresh simulator."""
    simulator = FleetSimulator(
        get_device("K20"),
        datacenter_scenario(NEW_YORK),
        n_devices=FLEET_N_DEVICES,
        seed=FLEET_SEED,
    )
    budget = (
        Budget(wall_clock_s=wall_clock_budget_s)
        if wall_clock_budget_s is not None
        else None
    )
    return FleetRunner(
        simulator,
        checkpoint_path=checkpoint_path,
        checkpoint_every_days=FLEET_CHECKPOINT_EVERY_DAYS,
        budget=budget,
        clock=clock,
        sleep=_no_sleep,
    )


# ----------------------------------------------------------------------
# FIT-service trial workloads
# ----------------------------------------------------------------------

#: Monte Carlo histories per service trial query (seconds-scale).
SERVICE_N_NEUTRONS = 2048
SERVICE_SEED = 2020
#: Clients in the thundering-herd coalescing trial.
SERVICE_STORM_CLIENTS = 100


def make_service(
    cache_dir: Optional[Union[str, Path]] = None,
    n_workers: int = 1,
) -> FitService:
    """A trial-sized :class:`FitService` (no real backoff sleeps).

    Args:
        cache_dir: enable the durable result cache rooted here.
        n_workers: transmission worker processes (>1 enables the
            fork pool the kill-worker trials target).
    """
    cache = (
        ResultCache(cache_dir, sleep=_no_sleep)
        if cache_dir is not None
        else None
    )
    return FitService(
        executor=QueryExecutor(n_workers=n_workers, sleep=_no_sleep),
        cache=cache,
        admission=AdmissionController(max_inflight=256),
    )


def service_request_line(request_id: str = "t1") -> str:
    """The canonical transmission request line service trials send."""
    return json.dumps(
        {
            "id": request_id,
            "kind": "transmission",
            "params": {
                "shield": "water",
                "n_neutrons": SERVICE_N_NEUTRONS,
                "seed": SERVICE_SEED,
            },
        },
        sort_keys=True,
    )


def run_service_lines(
    service: FitService, lines: List[str]
) -> List[str]:
    """Answer request lines sequentially on a fresh event loop."""

    async def _run() -> List[str]:
        return [await service.handle_line(line) for line in lines]

    return asyncio.run(_run())


def run_service_storm(
    service: FitService, line: str, n_clients: int
) -> List[str]:
    """Answer ``n_clients`` concurrent copies of one request line.

    ``asyncio.gather`` schedules every handler task before any of
    them can complete, so all clients are guaranteed to be in flight
    together — the thundering-herd shape the coalescer must collapse
    to a single computation.
    """

    async def _run() -> List[str]:
        return await asyncio.gather(
            *[service.handle_line(line) for _ in range(n_clients)]
        )

    return asyncio.run(_run())


# ----------------------------------------------------------------------
# Study trial workloads
# ----------------------------------------------------------------------

#: Monte Carlo histories per study trial point (seconds-scale).
STUDY_N_NEUTRONS = 256
STUDY_SEED = 2020
#: The shard the poison trial's evaluator always crashes.
STUDY_POISON_SHARD = 0
#: Deterministic failures before the poison shard quarantines.
STUDY_POISON_FAILURES = 2


def make_study_spec(poison: bool = False) -> StudySpec:
    """The 2x2 study grid chaos trials run (one point per shard)."""
    return StudySpec(
        name="chaos-study",
        axes={
            "site": ("leadville", "nyc"),
            "shield": ("none", "cadmium"),
        },
        seed=STUDY_SEED,
        n_neutrons=STUDY_N_NEUTRONS,
        shard_size=1,
        max_shard_failures=(
            STUDY_POISON_FAILURES if poison else 3
        ),
    )


def poison_evaluate(
    shard: Shard, spec: StudySpec, engine: str
) -> dict:
    """Evaluator that deterministically crashes one shard forever."""
    if shard.index == STUDY_POISON_SHARD:
        raise ValueError("chaos: poison shard")
    return evaluate_shard(shard, spec, engine)


def make_study_scheduler(
    workdir: Union[str, Path], poison: bool = False
) -> StudyScheduler:
    """A trial-sized :class:`StudyScheduler` rooted at ``workdir``.

    Breakers get an unreachable threshold so the engine cascade never
    engages: the trial canon must depend only on durable state, not
    on how many failures this particular process happened to see
    (breaker state is in-memory and resets on resume).  The cascade
    itself is covered by deterministic unit tests.
    """
    workdir = Path(workdir)
    return StudyScheduler(
        make_study_spec(poison=poison),
        ledger_path=workdir / "ledger.jsonl",
        store_root=workdir / "store",
        retry=RetryPolicy(),
        sleep=_no_sleep,
        evaluate=poison_evaluate if poison else None,
        breakers={
            engine: CircuitBreaker(failure_threshold=10**6)
            for engine in ENGINE_CASCADE
        },
    )


# ----------------------------------------------------------------------
# Surrogate trial workloads
# ----------------------------------------------------------------------

#: Held-out MC histories per certification point — enough that the
#: certified bound beats the serving floor, so the clean pass is a
#: surrogate hit (seconds-scale; the artifact is built once).
SURROGATE_CERT_HISTORIES = 4000
#: Grid points of the trial surface (interpolation gap shrinks with
#: grid density; below ~9 the gap alone exceeds the serving floor).
SURROGATE_N_POINTS = 9
SURROGATE_SEED = 2020
#: In-envelope query thickness (mid-grid).
SURROGATE_THICKNESS_CM = 0.1

_surrogate_artifact_cache: List[dict] = []


def surrogate_artifact() -> dict:
    """The tiny cadmium artifact surrogate trials share.

    Memoized per process: the build runs a deterministic grid fill
    plus MC certification, and every (action, trial) cell wants the
    same bytes anyway.
    """
    if not _surrogate_artifact_cache:
        spec = SurfaceSpec(
            mode="transmission",
            material=CADMIUM,
            thickness_cm=log_grid(0.025, 0.4, SURROGATE_N_POINTS),
            source_spectrum=rotax_spectrum(),
        )
        _surrogate_artifact_cache.append(
            build_artifact(
                "chaos-trial",
                # Seed taint cannot see through the list literal; the
                # build seed is the documented constant above.
                [spec],  # repro: noqa REP101
                cert_histories=SURROGATE_CERT_HISTORIES,
                seed=SURROGATE_SEED,
            )
        )
    return _surrogate_artifact_cache[0]


def make_surrogate_root(root: Union[str, Path]) -> str:
    """Write the shared trial artifact under ``root``.

    Returns:
        The artifact's content digest.
    """
    artifact = surrogate_artifact()
    SurrogateStore(root).save(artifact)
    return str(artifact["checksum"])


def surrogate_query() -> TransportQuery:
    """The canonical in-envelope query surrogate trials ask."""
    return TransportQuery(
        mode="transmission",
        material=CADMIUM,
        thickness_cm=SURROGATE_THICKNESS_CM,
        source_spectrum=rotax_spectrum(),
        n_neutrons=SERVICE_N_NEUTRONS,
        seed=SURROGATE_SEED,
        engine="auto",
    )


# ----------------------------------------------------------------------
# Forked children for SIGKILL trials
# ----------------------------------------------------------------------


def _campaign_child(
    spec_dict: dict, checkpoint_path: str, plan: str
) -> None:
    """Child entry: run a checkpointed campaign under chaos."""
    install(ChaosController(ChaosSpec.from_dict(spec_dict)))
    make_campaign_runner(checkpoint_path, plan=plan).run()


def _fleet_child(
    spec_dict: dict, checkpoint_path: str, plan: str
) -> None:
    """Child entry: run a checkpointed fleet simulation under chaos."""
    del plan
    install(ChaosController(ChaosSpec.from_dict(spec_dict)))
    make_fleet_runner(checkpoint_path).run(n_days=FLEET_N_DAYS)


def _study_child(
    spec_dict: dict, workdir: str, plan: str
) -> None:
    """Child entry: run a durable study under chaos."""
    del plan
    install(ChaosController(ChaosSpec.from_dict(spec_dict)))
    make_study_scheduler(workdir).run()


def _study_poison_child(
    spec_dict: dict, workdir: str, plan: str
) -> None:
    """Child entry: run a study with a poison shard under chaos."""
    del plan
    install(ChaosController(ChaosSpec.from_dict(spec_dict)))
    make_study_scheduler(workdir, poison=True).run()


#: Subprocess trial targets by workload name.
CHILD_TARGETS: Dict[str, Callable[[dict, str, str], None]] = {
    "campaign": _campaign_child,
    "fleet": _fleet_child,
    "study": _study_child,
    "study-poison": _study_poison_child,
}


@dataclass(frozen=True)
class SubprocessOutcome:
    """What happened to a forked chaos child.

    Attributes:
        exit_code: the child's exit code (``-9`` = died to SIGKILL;
            ``None`` only if it was still alive and got terminated).
        hung: the child outlived :data:`CHILD_TIMEOUT_S`.
        fired: the controller's marker file exists, proving the
            fault fired before the process died.
    """

    exit_code: Optional[int]
    hung: bool
    fired: bool


def run_kill_trial(
    target: str,
    spec: ChaosSpec,
    checkpoint_path: Union[str, Path],
    plan: str = "heterogeneous",
    timeout_s: float = CHILD_TIMEOUT_S,
) -> SubprocessOutcome:
    """Run one workload in a forked child and let chaos kill it.

    Args:
        target: a :data:`CHILD_TARGETS` name.
        spec: the injection (should carry a ``marker_path``; without
            one a SIGKILL trial cannot prove the fault fired).
        checkpoint_path: where the child checkpoints (inspected by
            the caller afterwards).
        plan: campaign plan name (campaign target only).
        timeout_s: hang cutoff.

    Raises:
        ConfigurationError: for an unknown target name, or when
            ``fork`` is unavailable (SIGKILL trials need inherited
            module state).
    """
    if target not in CHILD_TARGETS:
        raise ConfigurationError(
            f"unknown kill-trial target {target!r};"
            f" valid: {tuple(CHILD_TARGETS)}"
        )
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigurationError(
            "SIGKILL trials require the 'fork' start method"
        )
    with obs.span(
        "chaos.trial",
        target=target,
        site=spec.site,
        action=spec.action,
        fire_at=spec.fire_at,
    ):
        obs.inc("repro_chaos_trials_total")
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=CHILD_TARGETS[target],
            args=(spec.to_dict(), str(checkpoint_path), plan),
        )
        child.start()
        child.join(timeout_s)
        hung = child.is_alive()
        if hung:
            child.kill()
            child.join()
        fired = (
            spec.marker_path is not None
            and Path(spec.marker_path).exists()
        )
        return SubprocessOutcome(
            exit_code=child.exitcode, hung=hung, fired=fired
        )


__all__ = [
    "CHILD_TIMEOUT_S",
    "DELAY_TRIAL_BUDGET_S",
    "FLEET_N_DAYS",
    "SERVICE_STORM_CLIENTS",
    "STUDY_POISON_SHARD",
    "build_campaign_plan",
    "make_campaign_runner",
    "make_fleet_runner",
    "make_service",
    "make_study_scheduler",
    "run_kill_trial",
    "run_service_lines",
    "run_service_storm",
    "service_request_line",
]
