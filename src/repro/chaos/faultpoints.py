"""Named fault-injection sites threaded through the harness.

`repro.faults` models faults in the *device under test*; this module
instruments the *test harness itself*.  A :func:`fault_point` call
marks a place where real campaigns die — a checkpoint write, a plan
step about to execute, a pool worker starting a sweep — and a chaos
controller (see :mod:`repro.chaos.schedule`) can deterministically
fire a failure action there: raise a transient fault, SIGKILL the
process, tear a write in half, advance the clock past a deadline.

Design rules:

* **Zero overhead when disabled.**  ``fault_point`` is one module
  global read and a ``None`` check; sites sit at step / checkpoint /
  sweep / read-pass granularity, never inside per-neutron or
  per-strike inner loops.
* **No dependency cycles.**  This module imports nothing from the
  instrumented packages, so ``runtime``, ``beam``, ``transport`` and
  ``memory`` can all import it freely.
* **Every site is declared.**  :data:`FAULT_POINTS` is the registry
  the CLI sweeps; an undeclared site name raises at controller
  construction, not silently never-fires.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

#: The active controller (``None`` = chaos disabled, the default).
_active: Optional["SupportsReach"] = None


class SupportsReach:
    """Protocol-ish base: anything with ``reach(site, context)``."""

    def reach(self, site: str, context: dict) -> None:
        """Handle one crossing of ``site``."""
        raise NotImplementedError


@dataclass(frozen=True)
class FaultPoint:
    """One declared injection site.

    Attributes:
        name: dotted site name (``subsystem.place``).
        module: the module that hosts the ``fault_point`` call.
        description: what a failure here corresponds to in a real
            beam campaign.
        actions: chaos action names meaningful at this site (see
            :mod:`repro.chaos.actions`).
        kill_safe: True when a SIGKILL at this site must be fully
            recoverable via checkpoint/resume (the invariant checker
            enforces byte-identical recovery at kill-safe sites).
    """

    name: str
    module: str
    description: str
    actions: Tuple[str, ...]
    kill_safe: bool = False


#: Registry of every instrumented site, keyed by name.
FAULT_POINTS: Dict[str, FaultPoint] = {}


def _declare(
    name: str,
    module: str,
    description: str,
    actions: Tuple[str, ...],
    kill_safe: bool = False,
) -> None:
    FAULT_POINTS[name] = FaultPoint(
        name=name,
        module=module,
        description=description,
        actions=actions,
        kill_safe=kill_safe,
    )


# Action name literals are repeated here (rather than imported from
# repro.chaos.actions) to keep this module import-free; the test
# suite asserts the two vocabularies stay consistent.
_declare(
    "supervisor.step",
    "repro.runtime.supervisor",
    "a campaign plan step about to execute (before any RNG spawn)",
    actions=("raise-transient", "crash", "kill-process", "delay"),
    kill_safe=True,
)
_declare(
    "fleet.day",
    "repro.runtime.supervisor",
    "a fleet-simulation day about to execute",
    actions=("raise-transient", "kill-process", "delay"),
    kill_safe=True,
)
_declare(
    "checkpoint.write",
    "repro.runtime.checkpoint",
    "a checkpoint snapshot about to be written (tmp-then-rename)",
    actions=("raise-transient", "torn-write", "kill-process", "duplicate"),
    kill_safe=True,
)
_declare(
    "checkpoint.load",
    "repro.runtime.checkpoint",
    "a checkpoint file about to be read for resume",
    actions=("truncate", "corrupt", "duplicate"),
)
_declare(
    "campaign.exposure",
    "repro.beam.campaign",
    "an exposure about to run (before its RNG stream is spawned)",
    actions=("raise-transient", "crash"),
)
_declare(
    "batch.worker",
    "repro.transport.batch",
    "a transport sweep starting (in-process or in a pool worker)",
    actions=("raise-transient", "crash", "kill-worker"),
)
_declare(
    "batch.merge",
    "repro.transport.batch",
    "a sweep tally being delivered to the merge accumulator",
    actions=("raise-transient", "duplicate"),
)
_declare(
    "memory.pass",
    "repro.memory.tester",
    "a DDR correct-loop read pass about to start",
    actions=("raise-transient", "crash"),
)
_declare(
    "service.cache_write",
    "repro.service.cache",
    "a service result-cache entry about to be renamed into place"
    " (tmp written and fsynced)",
    actions=("raise-transient", "torn-write", "crash"),
)
_declare(
    "service.dispatch",
    "repro.service.compute",
    "a FIT query about to execute (in-process or in a pool worker)",
    actions=("raise-transient", "crash", "kill-worker"),
)
_declare(
    "service.handoff",
    "repro.service.coalesce",
    "a coalesced result about to be handed to its waiting clients",
    actions=("raise-transient", "crash"),
)
_declare(
    "service.respond",
    "repro.service.server",
    "a service response about to be serialized onto the wire",
    actions=("raise-transient", "crash"),
)
_declare(
    "studies.ledger_append",
    "repro.studies.ledger",
    "a study ledger record just made durable (written and fsynced)",
    actions=(
        "raise-transient",
        "torn-write",
        "kill-process",
        "duplicate",
        "truncate",
        "corrupt",
    ),
    kill_safe=True,
)
_declare(
    "studies.shard_dispatch",
    "repro.studies.scheduler",
    "a study shard about to evaluate (before any RNG work)",
    actions=("raise-transient", "crash", "kill-process"),
    kill_safe=True,
)
_declare(
    "studies.shard_commit",
    "repro.studies.store",
    "a shard result about to be renamed into the content-addressed"
    " store (tmp written and fsynced)",
    actions=("raise-transient", "kill-process", "duplicate"),
    kill_safe=True,
)
_declare(
    "studies.quarantine",
    "repro.studies.scheduler",
    "a poison shard about to be quarantined in the ledger",
    actions=("raise-transient", "kill-process"),
    kill_safe=True,
)
_declare(
    "surrogate.artifact_load",
    "repro.transport.surrogate.store",
    "a surrogate artifact about to be read and checksum-validated",
    actions=("raise-transient", "truncate", "corrupt"),
)


def fault_point(site: str, **context) -> None:
    """Mark a crossing of ``site``; a no-op unless chaos is active.

    Args:
        site: a name registered in :data:`FAULT_POINTS`.
        **context: site-specific hooks the firing action may use
            (paths, payload text, delivery callables).
    """
    controller = _active
    if controller is not None:
        controller.reach(site, context)


def enabled() -> bool:
    """True while a chaos controller is installed."""
    return _active is not None


def install(controller: SupportsReach) -> None:
    """Install ``controller`` as the process-wide chaos handler.

    Raises:
        RuntimeError: if a controller is already installed (chaos
            runs must not nest — uninstall the old one first).
    """
    global _active
    if _active is not None:
        raise RuntimeError(
            "a chaos controller is already installed;"
            " uninstall it before installing another"
        )
    _active = controller


def uninstall() -> None:
    """Remove the installed controller (idempotent)."""
    global _active
    _active = None


@contextmanager
def activated(controller: SupportsReach) -> Iterator[SupportsReach]:
    """Context manager: install ``controller``, always uninstall."""
    install(controller)
    try:
        yield controller
    finally:
        uninstall()


def site_names() -> Tuple[str, ...]:
    """All declared site names, sorted (stable CLI/matrix order)."""
    return tuple(sorted(FAULT_POINTS))


def actions_for(site: str) -> Tuple[str, ...]:
    """Applicable action names for one declared site.

    Raises:
        KeyError: for an undeclared site name.
    """
    return FAULT_POINTS[site].actions


__all__ = [
    "FAULT_POINTS",
    "FaultPoint",
    "SupportsReach",
    "actions_for",
    "activated",
    "enabled",
    "fault_point",
    "install",
    "site_names",
    "uninstall",
]
