"""Replay chaos runs against clean runs and check recovery invariants.

Every (site, action) cell of the chaos matrix runs the same small
workload twice: once clean (cached per subsystem) and once — or N
times — with the fault injected.  The :class:`InvariantChecker` then
asserts the runtime's recovery *contract*, not merely survival:

* **Byte-identical recovery.**  A retried, resumed, or
  shard-recomputed run produces exactly the clean run's data (the
  ``SeedSequence`` discipline makes this checkable as string
  equality on canonical JSON).
* **No observable invalid checkpoint.**  After a SIGKILL at any
  instrumented instant, the checkpoint file is either absent or
  loads cleanly; a stale ``*.tmp`` is swept on runner startup; a
  checkpoint corrupted at rest raises ``CheckpointError`` rather
  than resuming silently.
* **Budgets hold under delay.**  After an injected clock jump, no
  further step runs, a DEADLINE event is recorded, and the
  checkpointed remainder resumes byte-identically.
* **Worker death degrades, flagged.**  A killed pool worker's shards
  are recomputed in-process with ``degraded_shards`` set and tallies
  unchanged.
* **The FIT service stays correct under failure.**  A corrupt or
  torn cache entry is quarantined and recomputed, never served; a
  thundering herd of identical queries costs one computation and
  every waiter gets byte-identical bytes — or one clean shared
  error; a SIGKILL'd service worker yields a degraded-flagged
  response rather than a hang or an unhandled exception.
* **The study ledger never lies.**  After a SIGKILL, a torn append,
  or a duplicate delivery at any study fault point, replaying the
  write-ahead ledger and resuming yields the clean run's report
  byte-for-byte with every shard committed exactly once; a ledger
  corrupted or truncated at rest is detected (``LedgerError``) or
  recovered identically — never resumed silently wrong.
"""

from __future__ import annotations

import json
import signal
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import serde
from repro.chaos import actions as chaos_actions
from repro.chaos import trials
from repro.chaos.faultpoints import FAULT_POINTS, activated, site_names
from repro.chaos.schedule import (
    ChaosClock,
    ChaosController,
    ChaosSchedule,
    ChaosSpec,
)
from repro.memory.errors import DDR_SENSITIVITIES
from repro.memory.tester import CorrectLoopTester, DdrTestResult
from repro.runtime.checkpoint import CampaignCheckpoint, FleetCheckpoint
from repro.runtime.errors import CheckpointError, ConfigurationError
from repro.runtime.events import EventKind, EventLog
from repro.runtime.supervisor import (
    Supervisor,
    SupervisedCampaignResult,
    SupervisedFleetResult,
)
from repro.spectra import ROTAX_THERMAL_FLUX
from repro.studies.ledger import LedgerError
from repro.studies.report import StudyReport
from repro.transport import api as transport_api
from repro.transport.batch import BatchTransportEngine
from repro.transport.materials import WATER
from repro.transport.montecarlo import Layer, SlabGeometry
from repro.transport.surrogate.store import (
    QUARANTINE_SUFFIX,
    SurrogateStore,
)
from repro.transport.tallies import TransportResult

#: Transport trial sizing: 2 seed streams, 2 single-stream shards.
TRANSPORT_N_NEUTRONS = 8192
TRANSPORT_BATCH_SIZE = 4096
TRANSPORT_SOURCE_EV = 1.0e6
TRANSPORT_SEED = 7

#: DDR correct-loop trial sizing.
DDR_GENERATION = 4
DDR_CAPACITY_GBIT = 16.0
DDR_DURATION_S = 600.0
DDR_N_PASSES = 8
DDR_SEED = 2020

#: Max |fallback - surrogate| on the trial query's headline value.
#: Both sides sit near zero for the cadmium trial slab; the slack
#: absorbs the live engine's MC noise at trial history counts.
SURROGATE_TRIAL_TOL = 0.05


# ----------------------------------------------------------------------
# Canonical forms (string equality == byte-identical data)
# ----------------------------------------------------------------------


def canon_exposures(outcome: SupervisedCampaignResult) -> str:
    """Canonical JSON of a campaign run's exposure data."""
    return json.dumps(
        [e.to_dict() for e in outcome.result.exposures],
        sort_keys=True,
    )


def canon_days(outcome: SupervisedFleetResult) -> str:
    """Canonical JSON of a fleet run's per-day data."""
    return json.dumps(
        [d.to_dict() for d in outcome.result.days], sort_keys=True
    )


def canon_transport(result: TransportResult) -> str:
    """Canonical JSON of transport tallies (degradation excluded —
    a degraded run must still produce identical physics)."""
    return json.dumps(
        {
            "source": result.source,
            "transmitted": [
                result.transmitted_thermal,
                result.transmitted_epithermal,
                result.transmitted_fast,
            ],
            "reflected": [
                result.reflected_thermal,
                result.reflected_epithermal,
                result.reflected_fast,
            ],
            "absorbed": result.absorbed,
            "collisions": result.collisions,
            "by_material": dict(
                sorted(result.absorbed_by_material.items())
            ),
        },
        sort_keys=True,
    )


def canon_service(line: str) -> str:
    """Canonical JSON of a service response's data-bearing fields.

    ``cached`` is deliberately excluded: a hit and a miss must carry
    identical *data*, which is exactly what this canon compares.
    """
    data = json.loads(line)
    return json.dumps(
        {
            "ok": data.get("ok"),
            "result": data.get("result"),
            "degraded": data.get("degraded"),
        },
        sort_keys=True,
    )


def canon_study(report: StudyReport) -> str:
    """Canonical JSON of a study's merged report.

    Built purely from durable state, so a kill-and-resume run must
    reproduce it byte-for-byte.
    """
    return json.dumps(report.to_dict(), sort_keys=True)


def canon_ddr(result: DdrTestResult) -> str:
    """Canonical JSON of a DDR correct-loop run's classified errors."""
    rows = sorted(
        (
            e.address,
            e.category.value,
            e.direction.value,
            e.corrupted_bits,
            e.first_pass,
        )
        for e in result.errors
    )
    return json.dumps(
        {"fluence": result.fluence_per_cm2, "errors": rows},
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrialOutcome:
    """One chaos trial's result.

    Attributes:
        fire_at: the site-crossing index the schedule targeted.
        fired: the fault verifiably fired.
        violations: invariant violations observed (empty = pass).
    """

    fire_at: int
    fired: bool
    violations: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Plain-dict form (JSON verdict matrix)."""
        return {
            "fire_at": self.fire_at,
            "fired": self.fired,
            "violations": list(self.violations),
        }


@dataclass
class CellVerdict:
    """All trials of one (site, action) matrix cell."""

    site: str
    action: str
    outcomes: List[TrialOutcome] = field(default_factory=list)

    def violations(self) -> List[str]:
        """Every violation across the cell's trials."""
        out: List[str] = []
        for outcome in self.outcomes:
            out.extend(outcome.violations)
        return out

    def ok(self) -> bool:
        """True when every trial upheld every invariant."""
        return not self.violations()

    def to_dict(self) -> dict:
        """Plain-dict form (JSON verdict matrix)."""
        return {
            "site": self.site,
            "action": self.action,
            "ok": self.ok(),
            "trials": [o.to_dict() for o in self.outcomes],
        }


@dataclass
class ChaosReport:
    """The full verdict matrix of one chaos sweep."""

    seed: int
    n_trials: int
    cells: List[CellVerdict] = field(default_factory=list)

    def ok(self) -> bool:
        """True when no cell violated any invariant."""
        return all(cell.ok() for cell in self.cells)

    def n_violations(self) -> int:
        """Total violations across the matrix."""
        return sum(len(cell.violations()) for cell in self.cells)

    def to_dict(self) -> dict:
        """Plain-dict form (the CLI's JSON output).

        Tagged with the ``chaos-report`` schema via
        :func:`repro.serde.tag`.
        """
        return serde.tag(
            "chaos-report",
            {
                "seed": self.seed,
                "n_trials": self.n_trials,
                "ok": self.ok(),
                "n_violations": self.n_violations(),
                "cells": [cell.to_dict() for cell in self.cells],
            },
        )

    def to_text(self) -> str:
        """Human-readable verdict matrix."""
        lines = [
            f"chaos sweep: seed {self.seed},"
            f" {self.n_trials} trial(s)/cell,"
            f" {len(self.cells)} cell(s)"
        ]
        for cell in self.cells:
            mark = "PASS" if cell.ok() else "FAIL"
            fired = sum(1 for o in cell.outcomes if o.fired)
            lines.append(
                f"  [{mark}] {cell.site:18s} x {cell.action:15s}"
                f" fired {fired}/{len(cell.outcomes)}"
            )
            for violation in cell.violations():
                lines.append(f"         !! {violation}")
        verdict = (
            "all invariants held"
            if self.ok()
            else f"{self.n_violations()} invariant violation(s)"
        )
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------


class InvariantChecker:
    """Runs the chaos matrix and verifies recovery invariants.

    Args:
        seed: chaos seed (drives fire positions; independent of all
            workload seeds).
        n_trials: trials per matrix cell.
        plan: campaign plan name trials execute.
        workdir: scratch directory for checkpoints/markers (a fresh
            temporary directory by default).
    """

    def __init__(
        self,
        seed: int = 2020,
        n_trials: int = 2,
        plan: str = "heterogeneous",
        workdir: Optional[Union[str, Path]] = None,
    ) -> None:
        if n_trials < 1:
            raise ConfigurationError(
                f"n_trials must be >= 1, got {n_trials}"
            )
        self.schedule = ChaosSchedule(seed)
        self.seed = int(seed)
        self.n_trials = int(n_trials)
        self.plan = plan
        self.plan_len = len(trials.build_campaign_plan(plan))
        self.workdir = Path(
            workdir
            if workdir is not None
            else tempfile.mkdtemp(prefix="repro-chaos-")
        )
        self._clean: Dict[str, str] = {}
        self._engine: Optional[BatchTransportEngine] = None

    # -- clean baselines (one per subsystem, cached) -------------------

    def clean_campaign(self) -> str:
        """Canonical exposures of the clean campaign run."""
        if "campaign" not in self._clean:
            outcome = trials.make_campaign_runner(plan=self.plan).run()
            self._clean["campaign"] = canon_exposures(outcome)
        return self._clean["campaign"]

    def clean_fleet(self) -> str:
        """Canonical days of the clean fleet run."""
        if "fleet" not in self._clean:
            outcome = trials.make_fleet_runner().run(
                n_days=trials.FLEET_N_DAYS
            )
            self._clean["fleet"] = canon_days(outcome)
        return self._clean["fleet"]

    def clean_transport(self) -> str:
        """Canonical tallies of the clean serial transport run."""
        if "transport" not in self._clean:
            self._clean["transport"] = canon_transport(
                self._run_transport(n_workers=1)
            )
        return self._clean["transport"]

    def clean_ddr(self) -> str:
        """Canonical errors of the clean DDR correct-loop run."""
        if "ddr" not in self._clean:
            self._clean["ddr"] = canon_ddr(self._run_ddr())
        return self._clean["ddr"]

    def clean_study(self) -> str:
        """Canonical report of the clean study trial run."""
        if "study" not in self._clean:
            workdir = self.workdir / "clean-study"
            outcome = trials.make_study_scheduler(workdir).run()
            self._clean["study"] = canon_study(outcome.report)
        return self._clean["study"]

    def clean_study_poison(self) -> str:
        """Canonical report of the clean poison-shard study run."""
        if "study-poison" not in self._clean:
            workdir = self.workdir / "clean-study-poison"
            outcome = trials.make_study_scheduler(
                workdir, poison=True
            ).run()
            self._clean["study-poison"] = canon_study(outcome.report)
        return self._clean["study-poison"]

    def clean_service(self) -> str:
        """Canonical response of the clean service trial query."""
        if "service" not in self._clean:
            service = trials.make_service()
            try:
                line = trials.run_service_lines(
                    service, [trials.service_request_line()]
                )[0]
            finally:
                service.close()
            self._clean["service"] = canon_service(line)
        return self._clean["service"]

    def _run_transport(self, n_workers: int) -> TransportResult:
        if self._engine is None:
            self._engine = BatchTransportEngine(
                SlabGeometry([Layer(WATER, 4.0)])
            )
        return self._engine.run(
            TRANSPORT_N_NEUTRONS,
            source_energy_ev=TRANSPORT_SOURCE_EV,
            seed=TRANSPORT_SEED,
            batch_size=TRANSPORT_BATCH_SIZE,
            n_workers=n_workers,
        )

    @staticmethod
    def _run_ddr() -> DdrTestResult:
        tester = CorrectLoopTester(
            DDR_SENSITIVITIES[DDR_GENERATION],
            DDR_CAPACITY_GBIT,
            seed=DDR_SEED,
        )
        return tester.run(
            ROTAX_THERMAL_FLUX,
            duration_s=DDR_DURATION_S,
            n_passes=DDR_N_PASSES,
        )

    # -- matrix --------------------------------------------------------

    def horizon(self, site: str, action: str) -> int:
        """Fire-position range for one cell (rough crossings/run)."""
        if action == chaos_actions.KILL_WORKER:
            # Each pool worker sees only its own crossings; firing at
            # the first guarantees the kill lands in every worker.
            return 1
        per_site = {
            "supervisor.step": self.plan_len,
            "campaign.exposure": self.plan_len,
            "checkpoint.write": self.plan_len,
            "checkpoint.load": 1,
            "fleet.day": trials.FLEET_N_DAYS,
            "batch.worker": 2,
            "batch.merge": 2,
            "memory.pass": DDR_N_PASSES,
            # One crossing per trial request for every service site.
            "service.cache_write": 1,
            "service.dispatch": 1,
            "service.handoff": 1,
            "service.respond": 1,
            # Study: started + 4 shard commits + finished = 6
            # appends; 4 dispatches; 4 store publishes; 1 quarantine
            # (the poison trial's single poison shard).
            "studies.ledger_append": 6,
            "studies.shard_dispatch": 4,
            "studies.shard_commit": 4,
            "studies.quarantine": 1,
            # One artifact load per fresh store.
            "surrogate.artifact_load": 1,
        }
        return per_site[site]

    def run_matrix(
        self,
        sites: Optional[Sequence[str]] = None,
        actions: Optional[Sequence[str]] = None,
    ) -> ChaosReport:
        """Sweep the (site, action) matrix and collect verdicts.

        Args:
            sites: restrict to these sites (default: all declared).
            actions: restrict to these actions (default: each site's
                full declared set).
        """
        report = ChaosReport(seed=self.seed, n_trials=self.n_trials)
        for site in site_names():
            if sites and site not in sites:
                continue
            for action in FAULT_POINTS[site].actions:
                if actions and action not in actions:
                    continue
                report.cells.append(self.check_cell(site, action))
        return report

    def check_cell(self, site: str, action: str) -> CellVerdict:
        """Run every trial of one (site, action) cell."""
        specs = self.schedule.trials(
            site,
            action,
            self.n_trials,
            self.horizon(site, action),
            worker_only=(action == chaos_actions.KILL_WORKER),
        )
        verdict = CellVerdict(site=site, action=action)
        for index, spec in enumerate(specs):
            slug = f"{site.replace('.', '_')}-{action}-{index}"
            tmpdir = self.workdir / slug
            tmpdir.mkdir(parents=True, exist_ok=True)
            violations, fired = self._run_trial(spec, tmpdir)
            verdict.outcomes.append(
                TrialOutcome(
                    fire_at=spec.fire_at,
                    fired=fired,
                    violations=tuple(violations),
                )
            )
        return verdict

    def _run_trial(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        site = spec.site
        if site in ("supervisor.step", "campaign.exposure"):
            return self._trial_campaign_step(spec, tmpdir)
        if site == "fleet.day":
            return self._trial_fleet_day(spec, tmpdir)
        if site == "checkpoint.write":
            return self._trial_checkpoint_write(spec, tmpdir)
        if site == "checkpoint.load":
            return self._trial_checkpoint_load(spec, tmpdir)
        if site == "batch.worker":
            return self._trial_batch_worker(spec, tmpdir)
        if site == "batch.merge":
            return self._trial_batch_merge(spec, tmpdir)
        if site == "memory.pass":
            return self._trial_memory_pass(spec, tmpdir)
        if site == "service.cache_write":
            return self._trial_service_cache(spec, tmpdir)
        if site == "service.handoff":
            return self._trial_service_handoff(spec, tmpdir)
        if site == "service.dispatch":
            return self._trial_service_dispatch(spec, tmpdir)
        if site == "service.respond":
            return self._trial_service_respond(spec, tmpdir)
        if site == "studies.ledger_append":
            return self._trial_studies_ledger(spec, tmpdir)
        if site == "studies.shard_dispatch":
            return self._trial_studies_dispatch(spec, tmpdir)
        if site == "studies.shard_commit":
            return self._trial_studies_commit(spec, tmpdir)
        if site == "studies.quarantine":
            return self._trial_studies_quarantine(spec, tmpdir)
        if site == "surrogate.artifact_load":
            return self._trial_surrogate_load(spec, tmpdir)
        raise ConfigurationError(f"no trial harness for {site!r}")

    # -- campaign-backed cells -----------------------------------------

    def _trial_campaign_step(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        if spec.action == chaos_actions.KILL_PROCESS:
            return self._kill_trial(spec, tmpdir, target="campaign")
        if spec.action == chaos_actions.DELAY:
            return self._delay_campaign_trial(spec, tmpdir)
        checkpoint = tmpdir / "ck.json"
        controller = ChaosController(spec)
        with activated(controller):
            outcome = trials.make_campaign_runner(
                checkpoint, plan=self.plan
            ).run()
        violations: List[str] = []
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        clean = self.clean_campaign()
        got = canon_exposures(outcome)
        self._require_valid_checkpoint(
            checkpoint, CampaignCheckpoint, violations
        )
        if spec.action == chaos_actions.RAISE_TRANSIENT:
            if not outcome.completed:
                violations.append(
                    "transient fault was not ridden out (incomplete)"
                )
            if got != clean:
                violations.append(
                    "retried run diverged from clean run"
                )
            if not self._has_event(outcome.events, EventKind.RETRY):
                violations.append("no RETRY event recorded")
        else:  # crash
            violations.extend(
                self._check_isolated_crash(outcome, got, clean, spec)
            )
        return violations, fired

    def _check_isolated_crash(
        self,
        outcome: SupervisedCampaignResult,
        got: str,
        clean: str,
        spec: ChaosSpec,
    ) -> List[str]:
        """Crash isolation: skip exactly one step, keep the prefix,
        and be reproducible under replay."""
        violations: List[str] = []
        if not outcome.completed:
            violations.append(
                "crash was not isolated (run incomplete)"
            )
        isolations = sum(
            1
            for e in outcome.events
            if e.kind == EventKind.ISOLATION
        )
        if isolations != 1:
            violations.append(
                f"expected exactly 1 isolation, saw {isolations}"
            )
        clean_rows = json.loads(clean)
        got_rows = json.loads(got)
        k = spec.fire_at
        if got_rows[:k] != clean_rows[:k]:
            violations.append(
                "pre-fault prefix diverged from clean run"
            )
        if len(got_rows) != len(clean_rows) - 1:
            violations.append(
                "isolated step was not exactly skipped"
                f" ({len(got_rows)} vs {len(clean_rows)} exposures)"
            )
        # Replay determinism: the same chaos seed must reproduce the
        # same degraded-but-valid result, or no violation report is
        # ever debuggable.
        with activated(ChaosController(spec)):
            replay = trials.make_campaign_runner(plan=self.plan).run()
        if canon_exposures(replay) != got:
            violations.append(
                "chaos run is not reproducible under replay"
            )
        return violations

    def _delay_campaign_trial(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        checkpoint = tmpdir / "ck.json"
        clock = ChaosClock()
        controller = ChaosController(spec, clock=clock)
        with activated(controller):
            outcome = trials.make_campaign_runner(
                checkpoint,
                plan=self.plan,
                clock=clock.monotonic,
                wall_clock_budget_s=trials.DELAY_TRIAL_BUDGET_S,
            ).run()
        violations: List[str] = []
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        clean = self.clean_campaign()
        last_step = self.plan_len - 1
        if outcome.completed:
            if spec.fire_at < last_step:
                violations.append(
                    "deadline not enforced after injected delay"
                )
            if canon_exposures(outcome) != clean:
                violations.append("delayed run diverged from clean")
            return violations, fired
        if not self._has_event(outcome.events, EventKind.DEADLINE):
            violations.append("no DEADLINE event after delay")
        if outcome.steps_completed != spec.fire_at + 1:
            violations.append(
                "budget not respected: "
                f"{outcome.steps_completed} steps ran, expected"
                f" {spec.fire_at + 1}"
            )
        self._require_valid_checkpoint(
            checkpoint,
            CampaignCheckpoint,
            violations,
            expect_exists=True,
        )
        resumed = trials.make_campaign_runner(
            checkpoint, plan=self.plan
        ).run(resume=True)
        if canon_exposures(resumed) != clean:
            violations.append(
                "resume after deadline diverged from clean run"
            )
        if not self._has_event(resumed.events, EventKind.RESUME):
            violations.append("no RESUME event on resume")
        return violations, fired

    # -- fleet cells ---------------------------------------------------

    def _trial_fleet_day(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        if spec.action == chaos_actions.KILL_PROCESS:
            return self._kill_trial(spec, tmpdir, target="fleet")
        checkpoint = tmpdir / "ck.json"
        clean = self.clean_fleet()
        violations: List[str] = []
        if spec.action == chaos_actions.DELAY:
            clock = ChaosClock()
            controller = ChaosController(spec, clock=clock)
            with activated(controller):
                outcome = trials.make_fleet_runner(
                    checkpoint,
                    clock=clock.monotonic,
                    wall_clock_budget_s=trials.DELAY_TRIAL_BUDGET_S,
                ).run(n_days=trials.FLEET_N_DAYS)
            fired = controller.fired()
            if not fired:
                violations.append("fault never fired")
            if outcome.completed:
                if spec.fire_at < trials.FLEET_N_DAYS - 1:
                    violations.append(
                        "deadline not enforced after injected delay"
                    )
                if canon_days(outcome) != clean:
                    violations.append(
                        "delayed run diverged from clean"
                    )
                return violations, fired
            if not self._has_event(
                outcome.events, EventKind.DEADLINE
            ):
                violations.append("no DEADLINE event after delay")
            if outcome.days_completed != spec.fire_at + 1:
                violations.append(
                    "budget not respected:"
                    f" {outcome.days_completed} days ran, expected"
                    f" {spec.fire_at + 1}"
                )
            self._require_valid_checkpoint(
                checkpoint,
                FleetCheckpoint,
                violations,
                expect_exists=True,
            )
            resumed = trials.make_fleet_runner(checkpoint).run(
                n_days=trials.FLEET_N_DAYS, resume=True
            )
            if canon_days(resumed) != clean:
                violations.append(
                    "resume after deadline diverged from clean run"
                )
            return violations, fired
        # raise-transient
        controller = ChaosController(spec)
        with activated(controller):
            outcome = trials.make_fleet_runner(checkpoint).run(
                n_days=trials.FLEET_N_DAYS
            )
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if not outcome.completed:
            violations.append(
                "transient fault was not ridden out (incomplete)"
            )
        if canon_days(outcome) != clean:
            violations.append("retried run diverged from clean run")
        if not self._has_event(outcome.events, EventKind.RETRY):
            violations.append("no RETRY event recorded")
        return violations, fired

    # -- checkpoint cells ----------------------------------------------

    def _trial_checkpoint_write(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        if spec.action == chaos_actions.KILL_PROCESS:
            return self._kill_trial(spec, tmpdir, target="campaign")
        checkpoint = tmpdir / "ck.json"
        controller = ChaosController(spec)
        with activated(controller):
            outcome = trials.make_campaign_runner(
                checkpoint, plan=self.plan
            ).run()
        violations: List[str] = []
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if not outcome.completed:
            violations.append(
                "checkpoint-write fault was not ridden out"
            )
        if canon_exposures(outcome) != self.clean_campaign():
            violations.append("faulted run diverged from clean run")
        self._require_valid_checkpoint(
            checkpoint,
            CampaignCheckpoint,
            violations,
            expect_exists=True,
        )
        tmp = checkpoint.with_suffix(checkpoint.suffix + ".tmp")
        if tmp.exists():
            violations.append(
                "tmp file left behind after recovered write"
            )
        if spec.action in (
            chaos_actions.RAISE_TRANSIENT,
            chaos_actions.TORN_WRITE,
        ) and not self._has_event(outcome.events, EventKind.RETRY):
            violations.append("no RETRY event for failed write")
        return violations, fired

    def _trial_checkpoint_load(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        checkpoint = tmpdir / "ck.json"
        # Produce a genuine mid-run checkpoint to attack.
        trials.make_campaign_runner(checkpoint, plan=self.plan).run(
            max_steps=2
        )
        violations: List[str] = []
        controller = ChaosController(spec)
        if spec.action == chaos_actions.DUPLICATE:
            with activated(controller):
                outcome = trials.make_campaign_runner(
                    checkpoint, plan=self.plan
                ).run(resume=True)
            fired = controller.fired()
            if not fired:
                violations.append("fault never fired")
            if canon_exposures(outcome) != self.clean_campaign():
                violations.append(
                    "double-read resume diverged from clean run"
                )
            return violations, fired
        # truncate / corrupt: the resume MUST refuse.
        with activated(controller):
            try:
                trials.make_campaign_runner(
                    checkpoint, plan=self.plan
                ).run(resume=True)
            except CheckpointError:
                pass
            else:
                violations.append(
                    f"{spec.action} checkpoint resumed silently"
                    " (expected CheckpointError)"
                )
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        return violations, fired

    # -- transport cells -----------------------------------------------

    def _trial_batch_worker(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        del tmpdir
        clean = self.clean_transport()
        violations: List[str] = []
        controller = ChaosController(spec)
        if spec.action == chaos_actions.KILL_WORKER:
            with activated(controller):
                result = self._run_transport(n_workers=2)
            # The kill fires in forked workers; the parent-side proof
            # is the degradation flag plus unchanged tallies.
            fired = result.degraded_shards > 0
            if not fired:
                violations.append(
                    "worker kill produced no degraded shard"
                )
            if canon_transport(result) != clean:
                violations.append(
                    "post-worker-death tallies diverged from clean"
                )
            return violations, fired
        with activated(controller):
            result = self._run_transport(n_workers=1)
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if result.degraded_shards != 1:
            violations.append(
                "shard failure not flagged"
                f" (degraded_shards={result.degraded_shards})"
            )
        if canon_transport(result) != clean:
            violations.append(
                "retried-shard tallies diverged from clean"
            )
        return violations, fired

    def _trial_batch_merge(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        del tmpdir
        clean = self.clean_transport()
        violations: List[str] = []
        controller = ChaosController(spec)
        with activated(controller):
            result = self._run_transport(n_workers=1)
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if canon_transport(result) != clean:
            violations.append(
                "merge-faulted tallies diverged from clean"
            )
        expected_degraded = (
            1 if spec.action == chaos_actions.RAISE_TRANSIENT else 0
        )
        if result.degraded_shards != expected_degraded:
            violations.append(
                f"expected degraded_shards={expected_degraded},"
                f" got {result.degraded_shards}"
            )
        return violations, fired

    # -- memory cells --------------------------------------------------

    def _trial_memory_pass(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        del tmpdir
        clean = self.clean_ddr()
        violations: List[str] = []
        events = EventLog()
        supervisor = Supervisor(events=events, sleep=trials._no_sleep)
        controller = ChaosController(spec)
        with activated(controller):
            if spec.action == chaos_actions.RAISE_TRANSIENT:
                result = supervisor.call("ddr", self._run_ddr)
                fired = controller.fired()
                if not fired:
                    violations.append("fault never fired")
                if canon_ddr(result) != clean:
                    violations.append(
                        "fresh-tester retry diverged from clean run"
                    )
                if events.count(EventKind.RETRY) < 1:
                    violations.append("no RETRY event recorded")
                return violations, fired
            # crash: isolate, then a clean attempt must still match.
            result = supervisor.isolate("ddr", self._run_ddr)
            fired = controller.fired()
            if not fired:
                violations.append("fault never fired")
            if result is not None:
                violations.append("crash was not isolated")
            if events.count(EventKind.ISOLATION) != 1:
                violations.append("no ISOLATION event recorded")
            retried = self._run_ddr()
        if canon_ddr(retried) != clean:
            violations.append(
                "post-isolation clean run diverged from clean run"
            )
        return violations, fired

    # -- FIT-service cells ---------------------------------------------

    def _trial_service_cache(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Cache-write faults: responses unharmed, no torn entry."""
        cache_dir = tmpdir / "cache"
        clean = self.clean_service()
        violations: List[str] = []
        line = trials.service_request_line()
        controller = ChaosController(spec)
        service = trials.make_service(cache_dir=cache_dir)
        try:
            with activated(controller):
                out = trials.run_service_lines(service, [line])[0]
        finally:
            service.close()
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if canon_service(out) != clean:
            violations.append(
                "cache-write fault leaked into the response"
            )
        # A fresh service over the same directory: its init sweeps
        # stale tmp files, and its first answer proves the cache
        # either holds a complete entry or none at all.
        service2 = trials.make_service(cache_dir=cache_dir)
        try:
            stale = list(cache_dir.rglob("*.tmp"))
            if stale:
                violations.append(
                    "stale cache tmp not swept on startup:"
                    f" {[p.name for p in stale]}"
                )
            out2 = trials.run_service_lines(service2, [line])[0]
        finally:
            service2.close()
        if canon_service(out2) != clean:
            violations.append(
                "post-fault cache state corrupted the next response"
            )
        cached = json.loads(out2).get("cached")
        if spec.action == chaos_actions.CRASH:
            # The one write attempt crashed; no entry may exist.
            if cached:
                violations.append(
                    "crashed cache write left a served entry"
                )
        elif not cached:
            # Transient/torn faults are retried to success.
            violations.append(
                "retried cache write did not produce a hit"
            )
        return violations, fired

    def _trial_service_handoff(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Coalescer handoff faults: one shared clean error, then a
        full thundering herd resolved by one computation."""
        del tmpdir
        clean = self.clean_service()
        violations: List[str] = []
        line = trials.service_request_line()
        controller = ChaosController(spec)
        service = trials.make_service()
        try:
            with activated(controller):
                faulted = trials.run_service_storm(service, line, 8)
            fired = controller.fired()
            if not fired:
                violations.append("fault never fired")
            if len(set(faulted)) != 1:
                violations.append(
                    "coalesced waiters saw different handoff"
                    " failures"
                )
            for response in set(faulted):
                data = json.loads(response)
                if data.get("ok") is not False:
                    violations.append(
                        "handoff fault did not surface as an error"
                    )
                elif data["error"]["code"] != "internal":
                    violations.append(
                        "handoff fault surfaced with code"
                        f" {data['error']['code']!r}"
                    )
            if service.executor.compute_count != 1:
                violations.append(
                    "faulted storm was not coalesced"
                    f" ({service.executor.compute_count}"
                    " computations)"
                )
            # Fires exhausted: the full storm must now succeed with
            # byte-identical payloads from a single computation.
            before = service.executor.compute_count
            with activated(controller):
                storm = trials.run_service_storm(
                    service, line, trials.SERVICE_STORM_CLIENTS
                )
        finally:
            service.close()
        if len(set(storm)) != 1:
            violations.append(
                "storm responses were not byte-identical"
                f" ({len(set(storm))} distinct)"
            )
        if canon_service(storm[0]) != clean:
            violations.append(
                "storm response diverged from clean run"
            )
        computed = service.executor.compute_count - before
        if computed != 1:
            violations.append(
                f"storm of {trials.SERVICE_STORM_CLIENTS} cost"
                f" {computed} computations, expected 1"
            )
        return violations, fired

    def _trial_service_dispatch(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Dispatch faults: retry, isolate, or degrade — never wedge."""
        del tmpdir
        clean = self.clean_service()
        violations: List[str] = []
        line = trials.service_request_line()
        if spec.action == chaos_actions.KILL_WORKER:
            controller = ChaosController(spec)
            service = trials.make_service(n_workers=2)
            try:
                with activated(controller):
                    # Fork the pool inside activation so workers
                    # inherit the armed controller.
                    service.executor.warm()
                    out = trials.run_service_lines(
                        service, [line]
                    )[0]
                data = json.loads(out)
                # The kill fires inside a forked worker; the
                # parent-side proof is the degradation flag.
                fired = bool(data.get("degraded"))
                if not fired:
                    violations.append(
                        "worker kill produced no degraded response"
                    )
                if data.get("ok") is not True:
                    violations.append(
                        "worker kill surfaced as an error response"
                    )
                if data.get("degraded_reason") != "worker-retry":
                    violations.append(
                        "degraded_reason is"
                        f" {data.get('degraded_reason')!r},"
                        " expected 'worker-retry'"
                    )
                if canon_service(out) != clean.replace(
                    '"degraded": false', '"degraded": true'
                ):
                    violations.append(
                        "post-worker-death result diverged from"
                        " clean"
                    )
                # Outside activation a rebuilt pool must serve a
                # clean, undegraded answer — killed, not wedged.
                out2 = trials.run_service_lines(service, [line])[0]
                if canon_service(out2) != clean:
                    violations.append(
                        "service did not recover after worker kill"
                    )
            finally:
                service.close()
            return violations, fired
        controller = ChaosController(spec)
        service = trials.make_service()
        try:
            with activated(controller):
                out = trials.run_service_lines(service, [line])[0]
            fired = controller.fired()
            if not fired:
                violations.append("fault never fired")
            data = json.loads(out)
            if spec.action == chaos_actions.RAISE_TRANSIENT:
                if canon_service(out) != clean:
                    violations.append(
                        "retried dispatch diverged from clean run"
                    )
                if service.executor.events.count(EventKind.RETRY) < 1:
                    violations.append("no RETRY event recorded")
            else:  # crash
                if data.get("ok") is not False:
                    violations.append(
                        "dispatch crash did not surface as an error"
                    )
                elif data["error"]["code"] != "internal":
                    violations.append(
                        "dispatch crash surfaced with code"
                        f" {data['error']['code']!r}"
                    )
            # The next query must come back clean either way.
            out2 = trials.run_service_lines(service, [line])[0]
        finally:
            service.close()
        if canon_service(out2) != clean:
            violations.append(
                "service did not recover after dispatch fault"
            )
        return violations, fired

    def _trial_service_respond(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Serialization faults: a structured error line, then clean."""
        del tmpdir
        clean = self.clean_service()
        violations: List[str] = []
        line = trials.service_request_line()
        controller = ChaosController(spec)
        service = trials.make_service()
        try:
            with activated(controller):
                out = trials.run_service_lines(service, [line])[0]
            fired = controller.fired()
            if not fired:
                violations.append("fault never fired")
            try:
                data = json.loads(out)
            except ValueError:
                violations.append(
                    "respond fault produced an unparsable line"
                )
            else:
                if data.get("ok") is not False:
                    violations.append(
                        "respond fault did not surface as an error"
                    )
                elif data["error"]["code"] != "internal":
                    violations.append(
                        "respond fault surfaced with code"
                        f" {data['error']['code']!r}"
                    )
            out2 = trials.run_service_lines(service, [line])[0]
        finally:
            service.close()
        if canon_service(out2) != clean:
            violations.append(
                "service did not recover after respond fault"
            )
        return violations, fired

    # -- study cells ---------------------------------------------------

    def _trial_studies_ledger(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Ledger-append faults: healed, skipped, or refused — the
        replayed state is never silently wrong."""
        if spec.action == chaos_actions.KILL_PROCESS:
            return self._studies_kill_trial(spec, tmpdir, "study")
        clean = self.clean_study()
        violations: List[str] = []
        workdir = tmpdir / "study"
        controller = ChaosController(spec)
        scheduler = trials.make_study_scheduler(workdir)
        outcome = None
        with activated(controller):
            try:
                outcome = scheduler.run()
            except LedgerError:
                pass
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        recoverable = spec.action in (
            chaos_actions.RAISE_TRANSIENT,
            chaos_actions.TORN_WRITE,
            chaos_actions.DUPLICATE,
        )
        if recoverable:
            if outcome is None:
                violations.append(
                    f"{spec.action} ledger append was not ridden out"
                )
            elif outcome.status != "complete":
                violations.append(
                    f"run ended {outcome.status!r}, expected complete"
                )
            elif canon_study(outcome.report) != clean:
                violations.append(
                    "faulted run diverged from clean run"
                )
            else:
                try:
                    resumed = trials.make_study_scheduler(
                        workdir
                    ).run()
                except LedgerError as exc:
                    violations.append(
                        f"recovered ledger refused replay: {exc}"
                    )
                else:
                    if canon_study(resumed.report) != clean:
                        violations.append(
                            "resume diverged from clean run"
                        )
            return violations, fired
        # truncate / corrupt (storage rot): either every subsequent
        # replay refuses with LedgerError, or — for a truncation that
        # merely looks like a torn tail — resume recovers the clean
        # report exactly.  Silent divergence is the only violation.
        detected = outcome is None
        if not detected:
            try:
                resumed = trials.make_study_scheduler(workdir).run()
            except LedgerError:
                detected = True
            else:
                if spec.action == chaos_actions.CORRUPT:
                    violations.append(
                        "corrupt ledger record resumed silently"
                    )
                elif canon_study(resumed.report) != clean:
                    violations.append(
                        "truncated ledger resumed to a wrong report"
                    )
                return violations, fired
        # The refusal must be durable: a later resume attempt must
        # keep raising rather than append onto a corrupt ledger.
        try:
            trials.make_study_scheduler(workdir).run()
        except LedgerError:
            pass
        else:
            violations.append(
                f"{spec.action} ledger refusal was not durable"
            )
        return violations, fired

    def _trial_studies_dispatch(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Dispatch faults: retried or failure-counted, never wedged,
        tallies unchanged."""
        if spec.action == chaos_actions.KILL_PROCESS:
            return self._studies_kill_trial(spec, tmpdir, "study")
        clean = self.clean_study()
        violations: List[str] = []
        workdir = tmpdir / "study"
        controller = ChaosController(spec)
        scheduler = trials.make_study_scheduler(workdir)
        with activated(controller):
            outcome = scheduler.run()
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if outcome.status != "complete":
            violations.append(
                f"dispatch fault was not ridden out"
                f" ({outcome.status})"
            )
        if canon_study(outcome.report) != clean:
            violations.append(
                "dispatch-faulted run diverged from clean run"
            )
        state = scheduler.ledger.replay()
        if spec.action == chaos_actions.RAISE_TRANSIENT:
            if scheduler.events.count(EventKind.RETRY) < 1:
                violations.append("no RETRY event recorded")
            if state.failures:
                violations.append(
                    "transient dispatch fault recorded a"
                    f" deterministic failure: {dict(state.failures)}"
                )
        else:  # crash
            if sum(state.failures.values()) != 1:
                violations.append(
                    "expected exactly 1 ledgered failure, saw"
                    f" {dict(state.failures)}"
                )
        return violations, fired

    def _trial_studies_commit(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Result-publish faults: retried idempotently, no torn tmp."""
        if spec.action == chaos_actions.KILL_PROCESS:
            return self._studies_kill_trial(spec, tmpdir, "study")
        clean = self.clean_study()
        violations: List[str] = []
        workdir = tmpdir / "study"
        controller = ChaosController(spec)
        scheduler = trials.make_study_scheduler(workdir)
        with activated(controller):
            outcome = scheduler.run()
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if outcome.status != "complete":
            violations.append(
                f"commit fault was not ridden out ({outcome.status})"
            )
        if canon_study(outcome.report) != clean:
            violations.append(
                "commit-faulted run diverged from clean run"
            )
        stale = list((workdir / "store").rglob("*.tmp"))
        if stale:
            violations.append(
                "torn shard tmp left behind:"
                f" {[p.name for p in stale]}"
            )
        return violations, fired

    def _trial_studies_quarantine(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Quarantine faults: the poison shard lands in quarantine
        exactly once and the study degrades instead of wedging."""
        if spec.action == chaos_actions.KILL_PROCESS:
            return self._studies_kill_trial(
                spec, tmpdir, "study-poison"
            )
        clean = self.clean_study_poison()
        violations: List[str] = []
        workdir = tmpdir / "study"
        controller = ChaosController(spec)
        scheduler = trials.make_study_scheduler(workdir, poison=True)
        with activated(controller):
            outcome = scheduler.run()
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if outcome.status != "degraded":
            violations.append(
                f"poison study ended {outcome.status!r},"
                " expected degraded"
            )
        if canon_study(outcome.report) != clean:
            violations.append(
                "quarantine-faulted run diverged from clean"
                " poison run"
            )
        state = scheduler.ledger.replay()
        expected = (trials.STUDY_POISON_SHARD,)
        if tuple(sorted(state.quarantined)) != expected:
            violations.append(
                f"quarantined {sorted(state.quarantined)},"
                f" expected {list(expected)}"
            )
        return violations, fired

    def _studies_kill_trial(
        self, spec: ChaosSpec, tmpdir: Path, target: str
    ) -> Tuple[List[str], bool]:
        """SIGKILL a study child mid-run; resume must be byte-exact."""
        workdir = tmpdir / "study"
        workdir.mkdir(parents=True, exist_ok=True)
        marker = tmpdir / "marker"
        armed = ChaosSpec(
            site=spec.site,
            action=spec.action,
            fire_at=spec.fire_at,
            max_fires=spec.max_fires,
            worker_only=spec.worker_only,
            marker_path=str(marker),
        )
        outcome = trials.run_kill_trial(target, armed, workdir)
        violations: List[str] = []
        fired = outcome.fired
        if outcome.hung:
            violations.append("chaos child hung past timeout")
        if not fired:
            violations.append("fault never fired (no marker)")
        elif outcome.exit_code != -signal.SIGKILL:
            violations.append(
                f"child exited {outcome.exit_code},"
                f" expected -{int(signal.SIGKILL)}"
            )
        poison = target == "study-poison"
        clean = (
            self.clean_study_poison()
            if poison
            else self.clean_study()
        )
        scheduler = trials.make_study_scheduler(
            workdir, poison=poison
        )
        try:
            resumed = scheduler.run()
        except LedgerError as exc:
            violations.append(
                f"ledger observable invalid after kill: {exc}"
            )
            return violations, fired
        expected = "degraded" if poison else "complete"
        if resumed.status != expected:
            violations.append(
                f"resume ended {resumed.status!r},"
                f" expected {expected}"
            )
        if canon_study(resumed.report) != clean:
            violations.append(
                "resumed result diverged from clean run"
            )
        stale = list((workdir / "store").rglob("*.tmp"))
        if stale:
            violations.append(
                "stale shard tmp survived resume:"
                f" {[p.name for p in stale]}"
            )
        # replay() raises on any double-committed shard, so a clean
        # replay plus the exact committed count proves each shard was
        # counted exactly once.
        state = scheduler.ledger.replay()
        n_expected = scheduler.spec.n_shards - (1 if poison else 0)
        if len(state.committed) != n_expected:
            violations.append(
                f"{len(state.committed)} shards committed,"
                f" expected {n_expected}"
            )
        return violations, fired

    # -- surrogate cells -----------------------------------------------

    def _trial_surrogate_load(
        self, spec: ChaosSpec, tmpdir: Path
    ) -> Tuple[List[str], bool]:
        """Artifact-load faults: the facade always answers.

        A truncated or corrupted artifact is quarantined on first
        read and the query falls back to a live engine with honest
        provenance (no surrogate digest); a transient read error is
        a miss, not a quarantine — the artifact survives and a fresh
        store serves it again.
        """
        root = tmpdir / "surrogate"
        digest = trials.make_surrogate_root(root)
        # The helper's query carries the trial workload's documented
        # constant seed; taint cannot see through its return value.
        query = trials.surrogate_query()
        clean = transport_api.answer(
            query, store=SurrogateStore(root)  # repro: noqa REP101
        )
        violations: List[str] = []
        if clean.provenance.engine != "surrogate":
            violations.append(
                "clean pass did not serve from the surrogate"
                f" ({clean.provenance.engine!r})"
            )
        controller = ChaosController(spec)
        with activated(controller):
            chaos = transport_api.answer(
                query, store=SurrogateStore(root)  # repro: noqa REP101
            )
        fired = controller.fired()
        if not fired:
            violations.append("fault never fired")
        if not 0.0 <= chaos.value <= 1.0:
            violations.append(
                f"chaos answer is not a fraction: {chaos.value}"
            )
        if abs(chaos.value - clean.value) > SURROGATE_TRIAL_TOL:
            violations.append(
                "fallback answer diverged from the certified one:"
                f" {chaos.value} vs {clean.value}"
            )
        quarantined = list(root.glob("*" + QUARANTINE_SUFFIX))
        if spec.action == chaos_actions.RAISE_TRANSIENT:
            if chaos.provenance.engine == "surrogate":
                violations.append(
                    "transient load fault did not miss the surrogate"
                )
            if quarantined:
                violations.append(
                    "transient fault quarantined a healthy artifact"
                )
            retry = transport_api.answer(
                query, store=SurrogateStore(root)  # repro: noqa REP101
            )
            if retry.provenance.engine != "surrogate":
                violations.append(
                    "artifact not served again after transient fault"
                )
            elif retry.provenance.artifact_digest != digest:
                violations.append(
                    "retry served a different artifact"
                )
        else:  # truncate / corrupt
            if chaos.provenance.engine == "surrogate":
                violations.append(
                    f"{spec.action}d artifact still served the query"
                )
            if chaos.provenance.artifact_digest:
                violations.append(
                    "fallback answer claims an artifact digest"
                )
            if not quarantined:
                violations.append(
                    f"{spec.action}d artifact was not quarantined"
                )
        return violations, fired

    # -- kill (subprocess) trials --------------------------------------

    def _kill_trial(
        self, spec: ChaosSpec, tmpdir: Path, target: str
    ) -> Tuple[List[str], bool]:
        checkpoint = tmpdir / "ck.json"
        marker = tmpdir / "marker"
        armed = ChaosSpec(
            site=spec.site,
            action=spec.action,
            fire_at=spec.fire_at,
            max_fires=spec.max_fires,
            worker_only=spec.worker_only,
            marker_path=str(marker),
        )
        outcome = trials.run_kill_trial(
            target, armed, checkpoint, plan=self.plan
        )
        violations: List[str] = []
        fired = outcome.fired
        if outcome.hung:
            violations.append("chaos child hung past timeout")
        if not fired:
            violations.append("fault never fired (no marker)")
        elif outcome.exit_code != -signal.SIGKILL:
            violations.append(
                f"child exited {outcome.exit_code},"
                f" expected -{int(signal.SIGKILL)}"
            )
        snapshot_cls = (
            CampaignCheckpoint
            if target == "campaign"
            else FleetCheckpoint
        )
        resumable = checkpoint.exists()
        if resumable:
            try:
                snapshot_cls.load(checkpoint)
            except CheckpointError as exc:
                resumable = False
                violations.append(
                    f"checkpoint observable invalid after kill: {exc}"
                )
        # Constructing the recovery runner sweeps stale tmp files.
        if target == "campaign":
            runner = trials.make_campaign_runner(
                checkpoint, plan=self.plan
            )
        else:
            runner = trials.make_fleet_runner(checkpoint)
        tmp = checkpoint.with_suffix(checkpoint.suffix + ".tmp")
        if tmp.exists():
            violations.append("stale tmp not cleaned on startup")
        if target == "campaign":
            recovered = runner.run(resume=resumable)
            got = canon_exposures(recovered)
            clean = self.clean_campaign()
        else:
            recovered = runner.run(
                n_days=trials.FLEET_N_DAYS, resume=resumable
            )
            got = canon_days(recovered)
            clean = self.clean_fleet()
        if got != clean:
            violations.append(
                "recovered result diverged from clean run"
            )
        if resumable and not self._has_event(
            recovered.events, EventKind.RESUME
        ):
            violations.append("no RESUME event after resume")
        return violations, fired

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _has_event(events, kind: str) -> bool:
        return any(e.kind == kind for e in events)

    @staticmethod
    def _require_valid_checkpoint(
        path: Path,
        snapshot_cls,
        violations: List[str],
        expect_exists: bool = False,
    ) -> None:
        """A checkpoint file, if observable, must always load."""
        if not path.exists():
            if expect_exists:
                violations.append(
                    f"expected checkpoint at {path.name}, found none"
                )
            return
        try:
            snapshot_cls.load(path)
        except CheckpointError as exc:
            violations.append(
                f"checkpoint observable invalid: {exc}"
            )


__all__ = [
    "ChaosReport",
    "InvariantChecker",
]
