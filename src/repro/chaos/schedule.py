"""Seeded chaos schedules and the firing controller.

Determinism contract: chaos randomness lives in its **own stream**,
derived from the chaos seed and the (site, action) cell — never from
the workload's ``SeedSequence`` tree.  Installing a controller
therefore cannot perturb a single workload draw, and the same chaos
seed always fires the same action at the same site crossing, so every
trial (and every violation it exposes) replays exactly.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.chaos import actions as chaos_actions
from repro.chaos.faultpoints import FAULT_POINTS, SupportsReach
from repro.obs import core as obs
from repro.runtime.errors import ConfigurationError

#: How far the ``delay`` action jumps the injected clock, seconds.
#: Far past any trial budget, so a delay always trips the deadline.
DEFAULT_DELAY_JUMP_S = 1.0e6


@dataclass(frozen=True)
class ChaosSpec:
    """One fully-determined injection: what fires, where, and when.

    Attributes:
        site: a declared fault-point name.
        action: a chaos action applicable at that site.
        fire_at: 0-based site-crossing index that triggers the
            action (counted per process).
        max_fires: how many times the action may fire (per process).
        worker_only: fire only in processes other than the one the
            controller was created in (pool-worker targeting; the
            parent's crossings are counted but never fired on).
        marker_path: when set, a file created the instant the action
            fires — the only way a SIGKILL trial can prove the fault
            actually triggered.
    """

    site: str
    action: str
    fire_at: int = 0
    max_fires: int = 1
    worker_only: bool = False
    marker_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_POINTS:
            raise ConfigurationError(
                f"unknown fault-point site {self.site!r};"
                f" declared: {tuple(sorted(FAULT_POINTS))}"
            )
        if self.action not in chaos_actions.ALL_ACTIONS:
            raise ConfigurationError(
                f"unknown chaos action {self.action!r};"
                f" valid: {chaos_actions.ALL_ACTIONS}"
            )
        if self.action not in FAULT_POINTS[self.site].actions:
            raise ConfigurationError(
                f"action {self.action!r} is not applicable at"
                f" {self.site!r} (applicable:"
                f" {FAULT_POINTS[self.site].actions})"
            )
        if self.fire_at < 0:
            raise ConfigurationError(
                f"fire_at must be >= 0, got {self.fire_at}"
            )
        if self.max_fires < 1:
            raise ConfigurationError(
                f"max_fires must be >= 1, got {self.max_fires}"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (picklable across process boundaries)."""
        return {
            "site": self.site,
            "action": self.action,
            "fire_at": self.fire_at,
            "max_fires": self.max_fires,
            "worker_only": self.worker_only,
            "marker_path": self.marker_path,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            site=str(data["site"]),
            action=str(data["action"]),
            fire_at=int(data["fire_at"]),
            max_fires=int(data["max_fires"]),
            worker_only=bool(data["worker_only"]),
            marker_path=(
                None
                if data.get("marker_path") is None
                else str(data["marker_path"])
            ),
        )


class ChaosClock:
    """Deterministic monotonic clock the ``delay`` action can jump.

    Args:
        tick_s: seconds added per read (0 = frozen between jumps).
    """

    def __init__(self, tick_s: float = 0.0) -> None:
        if tick_s < 0.0:
            raise ConfigurationError(
                f"tick_s must be >= 0, got {tick_s}"
            )
        self._now_s = 0.0
        self._tick_s = tick_s

    def monotonic(self) -> float:
        """Read the clock (advances by the configured tick)."""
        self._now_s += self._tick_s
        return self._now_s

    def advance(self, seconds: float) -> None:
        """Jump the clock forward (the ``delay`` action's hook)."""
        self._now_s += seconds


@dataclass
class ChaosController(SupportsReach):
    """Counts site crossings and fires the spec's action on cue.

    Install with :func:`repro.chaos.faultpoints.activated`.  The
    controller records every crossing (``trace``) so invariant
    checkers can assert a fault actually fired — and, for SIGKILL
    actions, writes the spec's marker file first, since nothing after
    the kill ever runs.

    Attributes:
        spec: the injection to perform.
        clock: the injected clock the ``delay`` action jumps.
        delay_jump_s: how far ``delay`` jumps it.
    """

    spec: ChaosSpec
    clock: Optional[ChaosClock] = None
    delay_jump_s: float = DEFAULT_DELAY_JUMP_S
    fires: int = 0
    trace: List[str] = field(default_factory=list)
    _counts: dict = field(default_factory=dict)
    _origin_pid: int = field(default_factory=os.getpid)

    def reach(self, site: str, context: dict) -> None:
        """Handle one crossing of ``site`` (see ``fault_point``)."""
        self.trace.append(site)
        if site != self.spec.site:
            return
        crossing = self._counts.get(site, 0)
        self._counts[site] = crossing + 1
        if self.fires >= self.spec.max_fires:
            return
        if crossing != self.spec.fire_at:
            return
        if self.spec.worker_only and os.getpid() == self._origin_pid:
            return
        self.fires += 1
        self._mark()
        obs.inc(
            "repro_chaos_fires_total",
            site=self.spec.site,
            action=self.spec.action,
        )
        obs.event(
            "chaos.fire", site=self.spec.site, action=self.spec.action
        )
        chaos_actions.perform(self.spec.action, context, self)

    def advance_clock(self) -> None:
        """Jump the injected clock (called by the ``delay`` action).

        Raises:
            ConfigurationError: when the trial wired no clock in.
        """
        if self.clock is None:
            raise ConfigurationError(
                "delay action fired but the controller has no"
                " injected clock; pass clock=ChaosClock(...)"
            )
        self.clock.advance(self.delay_jump_s)

    def fired(self) -> bool:
        """True once the action has fired in *this* process."""
        return self.fires > 0

    def _mark(self) -> None:
        if self.spec.marker_path is not None:
            Path(self.spec.marker_path).write_text(
                f"{self.spec.site}:{self.spec.action}"
                f"@{self.spec.fire_at}\n"
            )


class ChaosSchedule:
    """Derives deterministic trial specs for every matrix cell.

    Each (site, action) cell gets its **own** generator, keyed on the
    chaos seed and a hash of the cell name — so filtering the matrix
    with ``--site``/``--action`` never changes the draws of the cells
    that do run.

    Args:
        seed: chaos seed (independent of every workload seed).
    """

    def __init__(self, seed: int = 2020) -> None:
        self.seed = int(seed)

    def cell_rng(self, site: str, action: str) -> np.random.Generator:
        """The cell's private generator (stable under filtering)."""
        digest = hashlib.sha256(
            f"{site}:{action}".encode("utf-8")
        ).digest()
        key = int.from_bytes(digest[:8], "big")
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, key])
        )

    def trials(
        self,
        site: str,
        action: str,
        n_trials: int,
        horizon: int,
        worker_only: bool = False,
    ) -> List[ChaosSpec]:
        """Draw ``n_trials`` fire positions in ``[0, horizon)``.

        Args:
            site: declared fault-point name.
            action: applicable chaos action.
            n_trials: specs to produce.
            horizon: rough number of site crossings one trial run
                performs (fire positions are drawn below it).
            worker_only: restrict firing to non-origin processes.
        """
        if n_trials < 1:
            raise ConfigurationError(
                f"n_trials must be >= 1, got {n_trials}"
            )
        if horizon < 1:
            raise ConfigurationError(
                f"horizon must be >= 1, got {horizon}"
            )
        rng = self.cell_rng(site, action)
        return [
            ChaosSpec(
                site=site,
                action=action,
                fire_at=int(rng.integers(0, horizon)),
                worker_only=worker_only,
            )
            for _ in range(n_trials)
        ]


__all__ = [
    "ChaosClock",
    "ChaosController",
    "ChaosSchedule",
    "ChaosSpec",
    "DEFAULT_DELAY_JUMP_S",
]
