"""The ``python -m repro chaos`` subcommand.

Sweeps the (site, action) fault matrix with
:class:`~repro.chaos.invariants.InvariantChecker` and prints a
verdict per cell; ``--json`` additionally writes the machine-readable
matrix.  Exit codes follow :class:`repro.exitcodes.ExitCode`: ``OK``
(0) means every recovery invariant held in every trial, ``FAILURE``
(1) means at least one violation (the printed matrix says which),
``USAGE`` (2) means an unknown ``--site``/``--action``.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import List, Sequence

from repro.chaos.faultpoints import FAULT_POINTS, site_names
from repro.exitcodes import ExitCode
from repro.runtime.errors import ConfigurationError

#: Trials per matrix cell (fewer under ``REPRO_SMOKE=1`` CI runs).
DEFAULT_TRIALS = 2
SMOKE_TRIALS = 1


def parse_sites(raw: Sequence[str]) -> List[str]:
    """Validate ``--site`` values against the declared fault points.

    Mirrors :meth:`repro.transport.montecarlo.Engine.coerce`: bare
    strings stay the user interface, but unknown values fail fast
    with the allowed set spelled out.

    Raises:
        ConfigurationError: on a site no fault point declares.
    """
    for site in raw:
        if site not in FAULT_POINTS:
            raise ConfigurationError(
                f"unknown site {site!r}; allowed: {site_names()}"
            )
    return list(raw)


def parse_actions(raw: Sequence[str]) -> List[str]:
    """Validate ``--action`` values against the declared actions.

    Raises:
        ConfigurationError: on an action no fault point supports.
    """
    known = sorted(
        {
            action
            for point in FAULT_POINTS.values()
            for action in point.actions
        }
    )
    for action in raw:
        if action not in known:
            raise ConfigurationError(
                f"unknown action {action!r}; allowed: {tuple(known)}"
            )
    return list(raw)


def default_trials() -> int:
    """Default trials/cell, honouring the ``REPRO_SMOKE`` switch."""
    if os.environ.get("REPRO_SMOKE"):
        return SMOKE_TRIALS
    return DEFAULT_TRIALS


def add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the chaos options to a subparser."""
    parser.add_argument(
        "--plan",
        choices=("heterogeneous", "figure4"),
        default="heterogeneous",
        help="campaign plan the trials execute",
    )
    parser.add_argument(
        "--seed", type=int, default=2020,
        help="chaos seed (fire positions; independent of workloads)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help=(
            "trials per (site, action) cell (default:"
            f" {DEFAULT_TRIALS}, or {SMOKE_TRIALS} under"
            " REPRO_SMOKE=1)"
        ),
    )
    parser.add_argument(
        "--site", action="append", default=[],
        help="restrict to this fault site (repeatable; default: all)",
    )
    parser.add_argument(
        "--action", action="append", default=[],
        help="restrict to this action (repeatable; default: all)",
    )
    parser.add_argument(
        "--workdir", default="",
        help=(
            "scratch directory for trial checkpoints (default: a"
            " fresh temporary directory)"
        ),
    )
    parser.add_argument(
        "--json", dest="json_path", default="",
        help="also write the JSON verdict matrix to this path",
    )
    parser.add_argument(
        "--list-sites", action="store_true",
        help="print the declared fault sites and actions, then exit",
    )


def run_chaos(args: argparse.Namespace) -> int:
    """Execute the chaos sweep described by parsed arguments."""
    if args.list_sites:
        for site in site_names():
            point = FAULT_POINTS[site]
            print(f"{site}: {', '.join(point.actions)}")
        return ExitCode.OK
    try:
        sites = parse_sites(args.site)
        actions = parse_actions(args.action)
    except ConfigurationError as exc:
        print(f"repro chaos: {exc}")
        return ExitCode.USAGE

    from repro.chaos.invariants import InvariantChecker

    n_trials = (
        args.trials if args.trials is not None else default_trials()
    )
    checker = InvariantChecker(
        seed=args.seed,
        n_trials=n_trials,
        plan=args.plan,
        workdir=args.workdir or None,
    )
    report = checker.run_matrix(
        sites=sites or None, actions=actions or None
    )
    print(report.to_text())
    if args.json_path:
        Path(args.json_path).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
        print(f"verdict matrix written to {args.json_path}")
    return ExitCode.OK if report.ok() else ExitCode.FAILURE


__all__ = [
    "DEFAULT_TRIALS",
    "SMOKE_TRIALS",
    "add_chaos_arguments",
    "default_trials",
    "parse_actions",
    "parse_sites",
    "run_chaos",
]
