"""The ``python -m repro chaos`` subcommand.

Sweeps the (site, action) fault matrix with
:class:`~repro.chaos.invariants.InvariantChecker` and prints a
verdict per cell; ``--json`` additionally writes the machine-readable
matrix.  Exit code 0 means every recovery invariant held in every
trial; 1 means at least one violation (the printed matrix says
which).
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.chaos.faultpoints import FAULT_POINTS, site_names

#: Trials per matrix cell (fewer under ``REPRO_SMOKE=1`` CI runs).
DEFAULT_TRIALS = 2
SMOKE_TRIALS = 1


def default_trials() -> int:
    """Default trials/cell, honouring the ``REPRO_SMOKE`` switch."""
    if os.environ.get("REPRO_SMOKE"):
        return SMOKE_TRIALS
    return DEFAULT_TRIALS


def add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the chaos options to a subparser."""
    parser.add_argument(
        "--plan",
        choices=("heterogeneous", "figure4"),
        default="heterogeneous",
        help="campaign plan the trials execute",
    )
    parser.add_argument(
        "--seed", type=int, default=2020,
        help="chaos seed (fire positions; independent of workloads)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help=(
            "trials per (site, action) cell (default:"
            f" {DEFAULT_TRIALS}, or {SMOKE_TRIALS} under"
            " REPRO_SMOKE=1)"
        ),
    )
    parser.add_argument(
        "--site", action="append", default=[],
        help="restrict to this fault site (repeatable; default: all)",
    )
    parser.add_argument(
        "--action", action="append", default=[],
        help="restrict to this action (repeatable; default: all)",
    )
    parser.add_argument(
        "--workdir", default="",
        help=(
            "scratch directory for trial checkpoints (default: a"
            " fresh temporary directory)"
        ),
    )
    parser.add_argument(
        "--json", dest="json_path", default="",
        help="also write the JSON verdict matrix to this path",
    )
    parser.add_argument(
        "--list-sites", action="store_true",
        help="print the declared fault sites and actions, then exit",
    )


def run_chaos(args: argparse.Namespace) -> int:
    """Execute the chaos sweep described by parsed arguments."""
    if args.list_sites:
        for site in site_names():
            point = FAULT_POINTS[site]
            print(f"{site}: {', '.join(point.actions)}")
        return 0
    for site in args.site:
        if site not in FAULT_POINTS:
            print(
                f"unknown site {site!r}; valid: {site_names()}"
            )
            return 2
    known_actions = {
        action
        for point in FAULT_POINTS.values()
        for action in point.actions
    }
    for action in args.action:
        if action not in known_actions:
            print(
                f"unknown action {action!r};"
                f" valid: {sorted(known_actions)}"
            )
            return 2

    from repro.chaos.invariants import InvariantChecker

    n_trials = (
        args.trials if args.trials is not None else default_trials()
    )
    checker = InvariantChecker(
        seed=args.seed,
        n_trials=n_trials,
        plan=args.plan,
        workdir=args.workdir or None,
    )
    report = checker.run_matrix(
        sites=args.site or None, actions=args.action or None
    )
    print(report.to_text())
    if args.json_path:
        Path(args.json_path).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
        print(f"verdict matrix written to {args.json_path}")
    return 0 if report.ok() else 1


__all__ = [
    "DEFAULT_TRIALS",
    "SMOKE_TRIALS",
    "add_chaos_arguments",
    "default_trials",
    "run_chaos",
]
