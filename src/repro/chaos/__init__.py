"""Deterministic fault injection for the harness itself.

``repro.faults`` models radiation upsets in the *device under test*;
this package injects failures into the *runtime that runs the
experiments* — crashed steps, killed processes, torn checkpoint
writes, dead pool workers, stalled clocks — and proves the recovery
machinery honours its contract (see :mod:`repro.chaos.invariants`).

Only the leaf layers are re-exported here: production modules import
:func:`fault_point` from this package, so pulling in the trial
harness (which imports the supervised runtime) would be circular.
Reach :mod:`repro.chaos.invariants` and :mod:`repro.chaos.trials`
directly, or through ``python -m repro chaos``.
"""

from repro.chaos.actions import (
    ALL_ACTIONS,
    ChaosCrashError,
    perform,
)
from repro.chaos.faultpoints import (
    FAULT_POINTS,
    FaultPoint,
    activated,
    actions_for,
    enabled,
    fault_point,
    install,
    site_names,
    uninstall,
)
from repro.chaos.schedule import (
    ChaosClock,
    ChaosController,
    ChaosSchedule,
    ChaosSpec,
)

__all__ = [
    "ALL_ACTIONS",
    "ChaosClock",
    "ChaosController",
    "ChaosCrashError",
    "ChaosSchedule",
    "ChaosSpec",
    "FAULT_POINTS",
    "FaultPoint",
    "activated",
    "actions_for",
    "enabled",
    "fault_point",
    "install",
    "perform",
    "site_names",
    "uninstall",
]
