"""The paper's device catalog, calibrated to its published numbers.

High-energy/thermal cross-section **ratios** are the paper's Figure 4
values (Section V):

==============  ==========  ==========
device          SDC ratio   DUE ratio
==============  ==========  ==========
Xeon Phi        10.14       6.37
K20             ~2x         ~3x
TitanX          ~3x         ~7x
TitanV          ~2x (MxM)   ~5x
APU (CPU)       ~2.5x       ~1.5x
APU (GPU)       ~2.8x       ~1.3x
APU (CPU+GPU)   ~2.6x       1.18x
FPGA            2.33        (DUEs never observed)
==============  ==========  ==========

Absolute magnitudes are synthetic (the paper normalizes them away to
protect business-sensitive data); they are chosen at realistic
1e-9..1e-7 cm^2 scales so FIT numbers come out in the usual range.
The K20's SDC ratio is set to 1.85 — the value that reproduces the
paper's "29 % of K20 SDC FIT is thermal at Leadville".
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.devices.model import (
    Device,
    TransistorProcess,
    profile_from_ratios,
)

#: Codes grouped the way Section III-B assigns them to devices.
HPC_CODES: Tuple[str, ...] = ("MxM", "LUD", "LavaMD", "HotSpot")
HETEROGENEOUS_CODES: Tuple[str, ...] = ("SC", "CED", "BFS")
NEURAL_CODES: Tuple[str, ...] = ("YOLO", "MNIST")


def _make_catalog() -> Dict[str, Device]:
    devices = [
        Device(
            name="XeonPhi",
            vendor="Intel",
            architecture="Knights Corner",
            technology_nm=22,
            process=TransistorProcess.TRIGATE,
            foundry="Intel",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=2.2e-8,
                sigma_he_due_cm2=3.6e-8,
                sdc_ratio=10.14,
                due_ratio=6.37,
            ),
            code_factors={
                "MxM": 1.3, "LUD": 1.1, "LavaMD": 0.8, "HotSpot": 0.8,
            },
            control_fraction=0.35,
            supported_codes=HPC_CODES,
        ),
        Device(
            name="K20",
            vendor="NVIDIA",
            architecture="Kepler",
            technology_nm=28,
            process=TransistorProcess.PLANAR_CMOS,
            foundry="TSMC",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=4.5e-8,
                sigma_he_due_cm2=2.8e-8,
                sdc_ratio=1.85,
                due_ratio=3.0,
            ),
            code_factors={
                # HotSpot has the largest cross section on K20 for
                # both beams (companion study).
                "MxM": 0.9, "LUD": 0.8, "LavaMD": 0.9, "HotSpot": 1.6,
                "YOLO": 0.8,
            },
            control_fraction=0.25,
            supported_codes=HPC_CODES + ("YOLO",),
        ),
        Device(
            name="TitanX",
            vendor="NVIDIA",
            architecture="Pascal",
            technology_nm=16,
            process=TransistorProcess.FINFET,
            foundry="TSMC",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=2.4e-8,
                sigma_he_due_cm2=1.9e-8,
                sdc_ratio=3.0,
                due_ratio=7.0,
            ),
            code_factors={
                "MxM": 1.1, "LUD": 1.0, "LavaMD": 0.9, "HotSpot": 1.2,
                "YOLO": 0.8,
            },
            control_fraction=0.25,
            supported_codes=HPC_CODES + ("YOLO",),
        ),
        Device(
            name="TitanV",
            vendor="NVIDIA",
            architecture="Volta",
            technology_nm=12,
            process=TransistorProcess.FINFET,
            foundry="TSMC",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=1.8e-8,
                sigma_he_due_cm2=1.5e-8,
                # Only MxM was tested; its thermal SDC cross section
                # nearly doubled vs TitanX, hence the lower ratio.
                sdc_ratio=2.0,
                due_ratio=5.0,
            ),
            code_factors={"MxM": 1.0},
            control_fraction=0.25,
            supported_codes=("MxM",),
        ),
        Device(
            name="APU-CPU",
            vendor="AMD",
            architecture="Kaveri (Steamroller CPU)",
            technology_nm=28,
            process=TransistorProcess.PLANAR_CMOS,
            foundry="GlobalFoundries",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=6.0e-9,
                sigma_he_due_cm2=3.0e-9,
                sdc_ratio=2.5,
                due_ratio=1.5,
            ),
            code_factors={"SC": 1.4, "CED": 1.0, "BFS": 0.7},
            control_fraction=0.3,
            supported_codes=HETEROGENEOUS_CODES,
        ),
        Device(
            name="APU-GPU",
            vendor="AMD",
            architecture="Kaveri (GCN GPU)",
            technology_nm=28,
            process=TransistorProcess.PLANAR_CMOS,
            foundry="GlobalFoundries",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=4.0e-9,
                sigma_he_due_cm2=3.5e-9,
                sdc_ratio=2.8,
                due_ratio=1.3,
            ),
            code_factors={"SC": 1.2, "CED": 1.1, "BFS": 0.8},
            control_fraction=0.4,
            supported_codes=HETEROGENEOUS_CODES,
        ),
        Device(
            name="APU-CPU+GPU",
            vendor="AMD",
            architecture="Kaveri (CPU+GPU, 50/50 split)",
            technology_nm=28,
            process=TransistorProcess.PLANAR_CMOS,
            foundry="GlobalFoundries",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=8.0e-9,
                sigma_he_due_cm2=6.0e-9,
                sdc_ratio=2.6,
                # The CPU-GPU synchronization fabric is the paper's
                # headline thermal-DUE result: ratio almost 1.
                due_ratio=1.18,
            ),
            code_factors={"SC": 1.2, "CED": 1.0, "BFS": 0.9},
            control_fraction=0.5,
            supported_codes=HETEROGENEOUS_CODES,
        ),
        Device(
            name="FPGA",
            vendor="Xilinx",
            architecture="Zynq-7000",
            technology_nm=28,
            process=TransistorProcess.PLANAR_CMOS,
            foundry="TSMC",
            profile=profile_from_ratios(
                sigma_he_sdc_cm2=3.0e-9,
                # DUEs were never observed on the FPGA: the bare
                # fabric has no OS/runtime to crash.  Keep a tiny
                # non-zero value so ratios stay defined.
                sigma_he_due_cm2=1.0e-11,
                sdc_ratio=2.33,
                due_ratio=2.0,
            ),
            code_factors={"MNIST": 1.0, "YOLO": 1.8},
            control_fraction=0.02,
            supported_codes=("MNIST", "YOLO"),
        ),
    ]
    return {d.name: d for d in devices}


#: All devices-under-test, keyed by name.
DEVICES: Dict[str, Device] = _make_catalog()

#: The APU's three execution configurations.
APU_CONFIGS: Tuple[str, ...] = ("APU-CPU", "APU-GPU", "APU-CPU+GPU")


def get_device(name: str) -> Device:
    """Look up a device by name.

    Raises:
        KeyError: with the list of valid names.
    """
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; valid: {sorted(DEVICES)}"
        ) from None


def devices_for_code(code: str) -> Tuple[Device, ...]:
    """All devices that were tested with ``code``."""
    return tuple(
        d for d in DEVICES.values() if code in d.supported_codes
    )
