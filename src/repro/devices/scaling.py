"""Technology-scaling model for thermal-neutron sensitivity.

The paper's Section II observation: *"10B presence does not depend on
the technology node but on the quality of the manufacturing process
(smaller transistors will have less Boron, but also less Silicon; the
Boron/Silicon percentage is not necessarily reduced)"* — and its
Section V hint that FinFETs look less thermal-soft than planar CMOS.

This model makes those statements quantitative.  Per capture, the
alpha/7Li pair deposits a fixed charge budget; whether a bit flips
depends on the node's critical charge and its charge-collection
efficiency.  Scaling shrinks Qcrit (bad) but shrinks the collection
volume faster on FinFET (good — the fin decouples the channel from the
substrate track), which is exactly the K20-vs-TitanX pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.boron import sigma_from_b10_areal_density
from repro.devices.model import TransistorProcess
from repro.physics.charge import (
    CriticalCharge,
    collected_charge_fc,
    upset_probability,
)
from repro.physics.reactions import B10_N_ALPHA

#: Reference node for the normalization, nm.
REFERENCE_NODE_NM: float = 28.0

#: Qcrit at the reference node, fC (planar 28 nm SRAM ballpark).
REFERENCE_QCRIT_FC: float = 3.0

#: Collection efficiency at the reference node (planar bulk).
REFERENCE_COLLECTION: float = 0.03

#: Qcrit threshold smearing as a fraction of Qcrit.
QCRIT_SPREAD_FRACTION: float = 0.35

#: How much a FinFET's collection efficiency is suppressed relative to
#: planar bulk at the same node (fin isolation from substrate tracks).
FINFET_COLLECTION_SUPPRESSION: float = 0.35


@dataclass(frozen=True)
class TechnologyNode:
    """One (node, transistor family) point of the scaling model.

    Attributes:
        feature_nm: feature size.
        process: transistor family.
    """

    feature_nm: float
    process: TransistorProcess

    def __post_init__(self) -> None:
        if self.feature_nm <= 0.0:
            raise ValueError(
                f"feature size must be positive, got {self.feature_nm}"
            )

    def qcrit_fc(self) -> float:
        """Critical charge: scales roughly linearly with feature size."""
        return REFERENCE_QCRIT_FC * (
            self.feature_nm / REFERENCE_NODE_NM
        )

    def collection_efficiency(self) -> float:
        """Charge-collection efficiency of the struck node.

        Shrinks with the *junction area* under the track —
        quadratically in the feature size — while Qcrit shrinks only
        linearly, so the per-capture upset probability falls at
        smaller nodes.  (Per-device sensitivity falls more slowly:
        the transistor count per mm^2 rises — which is why the paper
        stresses that the boron/silicon *ratio*, not the node, sets
        the exposure.)  FinFETs collect a further-suppressed
        fraction: the fin decouples the channel from substrate
        tracks.
        """
        base = REFERENCE_COLLECTION * (
            self.feature_nm / REFERENCE_NODE_NM
        ) ** 2
        if self.process is TransistorProcess.FINFET:
            base *= FINFET_COLLECTION_SUPPRESSION
        return min(base, 1.0)

    def upset_per_capture(self) -> float:
        """P(bit flip | 10B capture nearby) at this node.

        Branch-weighted over the B10(n,alpha)7Li exit channels with
        the node's collection efficiency and smeared Qcrit.
        """
        crit = CriticalCharge(
            qcrit_fc=self.qcrit_fc(),
            sigma_fc=self.qcrit_fc() * QCRIT_SPREAD_FRACTION,
        )
        prob = 0.0
        for branch in B10_N_ALPHA.branches:
            for _, energy_mev in branch.charged_products:
                collected = collected_charge_fc(
                    energy_mev, self.collection_efficiency()
                )
                # Either product can flip the node; weight each track
                # by half the branch probability (they fly back to
                # back — one of them heads toward the node).
                prob += (
                    0.5
                    * branch.probability
                    * upset_probability(collected, crit)
                )
        return min(prob, 1.0)

    def thermal_sigma_cm2(
        self, b10_areal_density_per_cm2: float
    ) -> float:
        """Device thermal cross section at this node, cm^2.

        Same boron contamination, different node: the cross section
        moves only through P(upset | capture).
        """
        return sigma_from_b10_areal_density(
            b10_areal_density_per_cm2,
            upset_per_capture=self.upset_per_capture(),
        )


def finfet_advantage(feature_nm: float) -> float:
    """Planar/FinFET thermal-sigma ratio at the same node and boron.

    > 1 means FinFET is less thermal-soft — the paper's K20 (planar,
    28 nm, ratio ~2) vs TitanX (FinFET, 16 nm, ratio ~3) pattern.
    """
    planar = TechnologyNode(
        feature_nm, TransistorProcess.PLANAR_CMOS
    ).upset_per_capture()
    finfet = TechnologyNode(
        feature_nm, TransistorProcess.FINFET
    ).upset_per_capture()
    if finfet == 0.0:
        raise ValueError(
            "FinFET upset probability is zero at this node;"
            " ratio undefined"
        )
    return planar / finfet
