"""Inferring 10B content from a thermal cross section (and back).

The paper's argument: the only way to learn how much 10B a COTS part
contains is to expose it to thermal neutrons.  This module implements
the arithmetic that links the two:

    sigma_thermal_device =
        N_B10 (areal, atoms/cm^2) x sigma_capture(Maxwell-averaged)
        x P(upset | capture)

With the Westcott factor for a 1/v absorber in a Maxwellian flux,
``sigma_avg = sigma_0 * sqrt(pi)/2`` at the reference temperature.
``P(upset | capture)`` folds the geometry: only captures whose alpha or
7Li track crosses a sensitive node upset a bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.models import BeamKind, Outcome
from repro.devices.model import Device
from repro.physics.constants import (
    BOLTZMANN_EV_PER_K,
    ROOM_TEMPERATURE_K,
)
from repro.physics.isotopes import isotope
from repro.physics.units import BARN_CM2, THERMAL_ENERGY_EV

#: Default geometric upset-per-capture probability.  Roughly the
#: solid-angle-and-range fraction of B10 captures in the BEOL/doping
#: whose products reach a sensitive volume with charge above Qcrit.
DEFAULT_UPSET_PER_CAPTURE: float = 0.05


def maxwellian_averaged_sigma_b(
    sigma_thermal_b: float,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Maxwellian-flux-averaged cross section of a 1/v absorber, barns.

    ``<sigma> = sigma(E0) * (sqrt(pi)/2) * sqrt(E0 / kT)``; at the
    reference temperature (kT = E0) the factor is sqrt(pi)/2 ~ 0.886.
    """
    if sigma_thermal_b < 0.0:
        raise ValueError(
            f"cross section must be >= 0, got {sigma_thermal_b}"
        )
    if temperature_k <= 0.0:
        raise ValueError(
            f"temperature must be positive, got {temperature_k}"
        )
    kt = BOLTZMANN_EV_PER_K * temperature_k
    return (
        sigma_thermal_b
        * (math.sqrt(math.pi) / 2.0)
        * math.sqrt(THERMAL_ENERGY_EV / kt)
    )


@dataclass(frozen=True)
class BoronEstimate:
    """Result of inverting a thermal cross section to 10B content.

    Attributes:
        areal_density_per_cm2: inferred 10B atoms per cm^2 of die.
        upset_per_capture: the geometry factor assumed.
        device_name: which device this is for.
    """

    areal_density_per_cm2: float
    upset_per_capture: float
    device_name: str


def b10_areal_density_from_sigma(
    sigma_thermal_cm2: float,
    upset_per_capture: float = DEFAULT_UPSET_PER_CAPTURE,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Invert a device thermal cross section to a 10B areal density.

    Args:
        sigma_thermal_cm2: measured thermal cross section, cm^2/device
            (upsets per unit thermal fluence).
        upset_per_capture: P(upset | capture).
        temperature_k: spectrum temperature.

    Returns:
        10B atoms per cm^2.

    Raises:
        ValueError: on non-positive geometry factor or negative sigma.
    """
    if sigma_thermal_cm2 < 0.0:
        raise ValueError(
            f"cross section must be >= 0, got {sigma_thermal_cm2}"
        )
    if upset_per_capture <= 0.0:
        raise ValueError(
            f"upset_per_capture must be > 0, got {upset_per_capture}"
        )
    sigma_capture_cm2 = (
        maxwellian_averaged_sigma_b(
            isotope("B10").sigma_capture_thermal_b, temperature_k
        )
        * BARN_CM2
    )
    return sigma_thermal_cm2 / (sigma_capture_cm2 * upset_per_capture)


def sigma_from_b10_areal_density(
    areal_density_per_cm2: float,
    upset_per_capture: float = DEFAULT_UPSET_PER_CAPTURE,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Forward model: 10B areal density -> thermal cross section, cm^2."""
    if areal_density_per_cm2 < 0.0:
        raise ValueError(
            f"areal density must be >= 0, got {areal_density_per_cm2}"
        )
    if upset_per_capture <= 0.0:
        raise ValueError(
            f"upset_per_capture must be > 0, got {upset_per_capture}"
        )
    sigma_capture_cm2 = (
        maxwellian_averaged_sigma_b(
            isotope("B10").sigma_capture_thermal_b, temperature_k
        )
        * BARN_CM2
    )
    return areal_density_per_cm2 * sigma_capture_cm2 * upset_per_capture


def estimate_boron_content(
    device: Device,
    upset_per_capture: float = DEFAULT_UPSET_PER_CAPTURE,
) -> BoronEstimate:
    """Estimate a device's 10B content from its thermal SDC sigma.

    A low number (like the Xeon Phi's) is the paper's signature of
    depleted or reduced boron; a high one (K20) flags natural boron in
    the process.
    """
    sigma = device.sigma(BeamKind.THERMAL, Outcome.SDC)
    return BoronEstimate(
        areal_density_per_cm2=b10_areal_density_from_sigma(
            sigma, upset_per_capture
        ),
        upset_per_capture=upset_per_capture,
        device_name=device.name,
    )
