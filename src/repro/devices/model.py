"""Parametric device model.

A :class:`Device` carries everything the campaign and FIT layers need:

* identity (vendor, architecture, technology node, transistor type);
* a :class:`SensitivityProfile` — per-beam, per-outcome cross
  sections (cm^2/device).  The paper publishes *normalized* values and
  ratios to protect business-sensitive data; our absolute magnitudes
  are therefore synthetic-but-plausible (1e-9..1e-7 cm^2), while the
  high-energy/thermal **ratios** are the paper's published numbers;
* per-code sensitivity factors (codes stress resources differently);
* an event-level split between *data* and *control* strikes used when
  a campaign simulates workload execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.faults.models import BeamKind, Outcome


class TransistorProcess(enum.Enum):
    """Transistor family — the paper contrasts planar CMOS vs FinFET."""

    PLANAR_CMOS = "planar CMOS"
    FINFET = "FinFET"
    TRIGATE = "3-D Tri-Gate"


@dataclass(frozen=True)
class SensitivityProfile:
    """Per-beam, per-outcome cross sections of one device config.

    Attributes:
        sigma_cm2: mapping ``(beam, outcome) -> cross section`` in cm^2
            per device.  Only SDC and DUE have entries; MASKED is not a
            measurable cross section.
    """

    sigma_cm2: Mapping[Tuple[BeamKind, Outcome], float]

    def __post_init__(self) -> None:
        for key, value in self.sigma_cm2.items():
            if value < 0.0:
                raise ValueError(
                    f"cross section for {key} must be >= 0, got {value}"
                )
            if key[1] is Outcome.MASKED:
                raise ValueError("MASKED has no cross section")

    def sigma(self, beam: BeamKind, outcome: Outcome) -> float:
        """Cross section for one beam/outcome, cm^2 (0 if absent)."""
        return float(self.sigma_cm2.get((beam, outcome), 0.0))

    def ratio(self, outcome: Outcome) -> float:
        """High-energy / thermal cross-section ratio for an outcome.

        This is the paper's Figure 4 quantity: 10.14 means a
        high-energy neutron is 10.14x more likely than a thermal one
        to cause that outcome.

        Raises:
            ZeroDivisionError: if the thermal cross section is zero.
        """
        thermal = self.sigma(BeamKind.THERMAL, outcome)
        high = self.sigma(BeamKind.HIGH_ENERGY, outcome)
        if thermal == 0.0:
            raise ZeroDivisionError(
                f"thermal cross section for {outcome} is zero"
            )
        return high / thermal


def profile_from_ratios(
    sigma_he_sdc_cm2: float,
    sigma_he_due_cm2: float,
    sdc_ratio: float,
    due_ratio: float,
) -> SensitivityProfile:
    """Build a profile from HE magnitudes and published HE/thermal ratios.

    Args:
        sigma_he_sdc_cm2: high-energy SDC cross section, cm^2.
        sigma_he_due_cm2: high-energy DUE cross section, cm^2.
        sdc_ratio: published HE/thermal SDC ratio (>0).
        due_ratio: published HE/thermal DUE ratio (>0).
    """
    if sdc_ratio <= 0.0 or due_ratio <= 0.0:
        raise ValueError("ratios must be positive")
    return SensitivityProfile(
        sigma_cm2={
            (BeamKind.HIGH_ENERGY, Outcome.SDC): sigma_he_sdc_cm2,
            (BeamKind.HIGH_ENERGY, Outcome.DUE): sigma_he_due_cm2,
            (BeamKind.THERMAL, Outcome.SDC): sigma_he_sdc_cm2 / sdc_ratio,
            (BeamKind.THERMAL, Outcome.DUE): sigma_he_due_cm2 / due_ratio,
        }
    )


@dataclass(frozen=True)
class Device:
    """One device-under-test.

    Attributes:
        name: short label used everywhere (e.g. ``"K20"``).
        vendor: manufacturer.
        architecture: microarchitecture name.
        technology_nm: feature size.
        process: transistor family.
        foundry: fab (the paper stresses foundry matters for 10B).
        profile: device-average sensitivity.
        code_factors: per-code multiplier applied to both SDC and DUE
            cross sections (1.0 = device average).  Captures the >2x
            spread across codes the companion paper reports.
        control_fraction: fraction of raw upsets landing in control
            logic (drives DUEs in the event-level simulation).  The
            APU's CPU+GPU synchronization sensitivity lives here.
        supported_codes: codes the paper actually ran on this device.
    """

    name: str
    vendor: str
    architecture: str
    technology_nm: int
    process: TransistorProcess
    foundry: str
    profile: SensitivityProfile
    code_factors: Mapping[str, float] = field(default_factory=dict)
    control_fraction: float = 0.2
    supported_codes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.technology_nm <= 0:
            raise ValueError(
                f"technology must be positive, got {self.technology_nm}"
            )
        if not 0.0 <= self.control_fraction <= 1.0:
            raise ValueError(
                f"control fraction must be in [0, 1],"
                f" got {self.control_fraction}"
            )
        for code, factor in self.code_factors.items():
            if factor <= 0.0:
                raise ValueError(
                    f"code factor for {code} must be > 0, got {factor}"
                )

    # ------------------------------------------------------------------

    def sigma(
        self,
        beam: BeamKind,
        outcome: Outcome,
        code: Optional[str] = None,
    ) -> float:
        """Cross section, cm^2, optionally for a specific code."""
        base = self.profile.sigma(beam, outcome)
        if code is None:
            return base
        if self.supported_codes and code not in self.supported_codes:
            raise ValueError(
                f"{self.name} was not tested with code {code!r}"
            )
        return base * float(self.code_factors.get(code, 1.0))

    def sdc_ratio(self) -> float:
        """Published HE/thermal SDC ratio."""
        return self.profile.ratio(Outcome.SDC)

    def due_ratio(self) -> float:
        """Published HE/thermal DUE ratio."""
        return self.profile.ratio(Outcome.DUE)

    def raw_upset_sigma(self, beam: BeamKind) -> float:
        """Total raw upset cross section for event-level simulation.

        The observable SDC/DUE cross sections are the visible tip of a
        larger raw-upset rate (most flips are masked).  We reconstruct
        the raw rate assuming the workload-average masking the
        event-level simulator itself produces (~50 % of data strikes
        visible), so that simulated campaigns land near the published
        cross sections.
        """
        sdc = self.profile.sigma(beam, Outcome.SDC)
        due = self.profile.sigma(beam, Outcome.DUE)
        data_visible = 0.5
        return sdc / data_visible + due

    def control_sigma(self, beam: BeamKind) -> float:
        """Cross section of control-logic strikes (direct DUEs)."""
        return self.profile.sigma(beam, Outcome.DUE)

    def data_sigma(self, beam: BeamKind) -> float:
        """Cross section of data-state strikes (pre-masking)."""
        return self.raw_upset_sigma(beam) - self.control_sigma(beam)

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.vendor} {self.architecture},"
            f" {self.technology_nm} nm {self.process.value})"
        )
