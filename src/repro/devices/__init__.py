"""Device-under-test models and the paper's device catalog."""

from repro.devices.model import (
    Device,
    SensitivityProfile,
    TransistorProcess,
    profile_from_ratios,
)
from repro.devices.catalog import (
    APU_CONFIGS,
    DEVICES,
    HETEROGENEOUS_CODES,
    HPC_CODES,
    NEURAL_CODES,
    devices_for_code,
    get_device,
)
from repro.devices.scaling import (
    TechnologyNode,
    finfet_advantage,
)
from repro.devices.boron import (
    BoronEstimate,
    DEFAULT_UPSET_PER_CAPTURE,
    b10_areal_density_from_sigma,
    estimate_boron_content,
    maxwellian_averaged_sigma_b,
    sigma_from_b10_areal_density,
)

__all__ = [
    "Device",
    "SensitivityProfile",
    "TransistorProcess",
    "profile_from_ratios",
    "APU_CONFIGS",
    "DEVICES",
    "HETEROGENEOUS_CODES",
    "HPC_CODES",
    "NEURAL_CODES",
    "devices_for_code",
    "get_device",
    "TechnologyNode",
    "finfet_advantage",
    "BoronEstimate",
    "DEFAULT_UPSET_PER_CAPTURE",
    "b10_areal_density_from_sigma",
    "estimate_boron_content",
    "maxwellian_averaged_sigma_b",
    "sigma_from_b10_areal_density",
]
