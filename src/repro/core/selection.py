"""Device selection under a reliability budget.

Figure 1's market argument: one COTS architecture gets reused from
consumer boxes to HPC and vehicles, and that only works "if the COTS
device reliability is carefully evaluated and found to be sufficient
for the project requirements".  This module is that evaluation: rank
the catalog against a FIT budget in the *deployment* environment —
thermal component included — and report which devices a fast-only
analysis would have wrongly accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.fit import FitCalculator
from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.faults.models import Outcome


@dataclass(frozen=True)
class SelectionRequirement:
    """What the project needs.

    Attributes:
        max_sdc_fit: SDC FIT budget (None = unconstrained).
        max_due_fit: DUE FIT budget (None = unconstrained).
        code: optional workload the device must support.
    """

    max_sdc_fit: Optional[float] = None
    max_due_fit: Optional[float] = None
    code: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_sdc_fit is not None and self.max_sdc_fit <= 0.0:
            raise ValueError("SDC budget must be positive")
        if self.max_due_fit is not None and self.max_due_fit <= 0.0:
            raise ValueError("DUE budget must be positive")


@dataclass(frozen=True)
class SelectionVerdict:
    """One device's evaluation against a requirement.

    Attributes:
        device_name: candidate.
        sdc_fit / due_fit: totals in the deployment scenario.
        accepted: meets every stated budget.
        accepted_fast_only: would have been accepted if thermal FIT
            were (wrongly) ignored — the paper's underestimation trap.
    """

    device_name: str
    sdc_fit: float
    due_fit: float
    accepted: bool
    accepted_fast_only: bool

    @property
    def wrongly_accepted_without_thermals(self) -> bool:
        """True if a fast-only analysis passes a failing device."""
        return self.accepted_fast_only and not self.accepted


class DeviceSelector:
    """Ranks devices against a requirement in a scenario."""

    def __init__(
        self, calculator: Optional[FitCalculator] = None
    ) -> None:
        self.calculator = calculator or FitCalculator()

    def evaluate(
        self,
        device: Device,
        scenario: FluxScenario,
        requirement: SelectionRequirement,
    ) -> SelectionVerdict:
        """Evaluate one candidate."""
        code = requirement.code
        if (
            code is not None
            and device.supported_codes
            and code not in device.supported_codes
        ):
            # Not tested with this code: cannot qualify.
            return SelectionVerdict(
                device_name=device.name,
                sdc_fit=float("nan"),
                due_fit=float("nan"),
                accepted=False,
                accepted_fast_only=False,
            )
        sdc = self.calculator.decompose(
            device, scenario, Outcome.SDC, code
        )
        due = self.calculator.decompose(
            device, scenario, Outcome.DUE, code
        )

        def _meets(sdc_fit: float, due_fit: float) -> bool:
            ok = True
            if requirement.max_sdc_fit is not None:
                ok &= sdc_fit <= requirement.max_sdc_fit
            if requirement.max_due_fit is not None:
                ok &= due_fit <= requirement.max_due_fit
            return ok

        return SelectionVerdict(
            device_name=device.name,
            sdc_fit=sdc.total,
            due_fit=due.total,
            accepted=_meets(sdc.total, due.total),
            accepted_fast_only=_meets(
                sdc.fit_high_energy, due.fit_high_energy
            ),
        )

    def select(
        self,
        devices: Sequence[Device],
        scenario: FluxScenario,
        requirement: SelectionRequirement,
    ) -> List[SelectionVerdict]:
        """Evaluate candidates, accepted first, lowest total FIT first.

        Raises:
            ValueError: on an empty candidate list.
        """
        if not devices:
            raise ValueError("no candidate devices")
        verdicts = [
            self.evaluate(d, scenario, requirement) for d in devices
        ]
        return sorted(
            verdicts,
            key=lambda v: (
                not v.accepted,
                v.sdc_fit + v.due_fit
                if v.sdc_fit == v.sdc_fit  # NaN-safe
                else float("inf"),
            ),
        )

    def underestimation_traps(
        self,
        devices: Sequence[Device],
        scenario: FluxScenario,
        requirement: SelectionRequirement,
    ) -> List[str]:
        """Devices a fast-only qualification wrongly accepts."""
        return [
            v.device_name
            for v in self.select(devices, scenario, requirement)
            if v.wrongly_accepted_without_thermals
        ]


__all__ = [
    "DeviceSelector",
    "SelectionRequirement",
    "SelectionVerdict",
]
