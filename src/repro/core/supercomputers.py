"""Top-10 supercomputer DDR thermal-FIT projection (experiment E7).

For each machine of the paper-era Top-10 list: take its site's thermal
flux (with the machine-room concrete — and water if liquid-cooled),
the per-GBit DDR thermal cross section for its memory generation, and
its memory inventory, and project the fleet-level thermal FIT — with
and without SECDED (which removes everything but SEFIs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.tables import format_table
from repro.core.fit import fit_rate
from repro.environment.scenario import datacenter_scenario
from repro.environment.sites import (
    Supercomputer,
    TOP10_SUPERCOMPUTERS,
)
from repro.memory.errors import DDR_SENSITIVITIES

#: GBit per TiB of memory.
GBIT_PER_TIB = 8.0 * 1024.0


@dataclass(frozen=True)
class MachineFitProjection:
    """Projected DDR thermal FIT for one machine.

    Attributes:
        machine: the supercomputer.
        thermal_flux_per_cm2_h: machine-room thermal flux.
        fit_no_ecc: fleet thermal FIT with ECC disabled (cell upsets
            plus SEFIs).
        fit_with_ecc: fleet thermal FIT with SECDED (SEFIs only).
    """

    machine: Supercomputer
    thermal_flux_per_cm2_h: float
    fit_no_ecc: float
    fit_with_ecc: float

    @property
    def errors_per_day_no_ecc(self) -> float:
        """Fleet-level expected memory errors per day, no ECC."""
        return self.fit_no_ecc / 1e9 * 24.0

    @property
    def ecc_reduction(self) -> float:
        """Fractional FIT reduction SECDED buys this machine."""
        if self.fit_no_ecc == 0.0:
            raise ValueError("zero unprotected FIT")
        return 1.0 - self.fit_with_ecc / self.fit_no_ecc


def project_machine(machine: Supercomputer) -> MachineFitProjection:
    """Project one machine's DDR thermal FIT."""
    scenario = datacenter_scenario(
        machine.site, liquid_cooled=machine.liquid_cooled
    )
    flux = scenario.thermal_flux_per_h()
    sens = DDR_SENSITIVITIES[machine.ddr_generation]
    capacity_gbit = machine.memory_tib * GBIT_PER_TIB
    # Cell upsets scale with capacity; SEFIs scale with module count
    # (one module ~ 64 GBit of DDR4 / 32 GBit of DDR3).
    module_gbit = 64.0 if machine.ddr_generation == 4 else 32.0
    n_modules = capacity_gbit / module_gbit
    fit_cells = fit_rate(
        sens.sigma_cell_per_gbit_cm2 * capacity_gbit, flux
    )
    fit_sefi = fit_rate(sens.sigma_sefi_cm2 * n_modules, flux)
    return MachineFitProjection(
        machine=machine,
        thermal_flux_per_cm2_h=flux,
        fit_no_ecc=fit_cells + fit_sefi,
        fit_with_ecc=fit_sefi,
    )


def project_top10(
    machines: Sequence[Supercomputer] = TOP10_SUPERCOMPUTERS,
) -> List[MachineFitProjection]:
    """Project the whole list, preserving Top500 order."""
    if not machines:
        raise ValueError("no machines given")
    return [project_machine(m) for m in machines]


def top10_table(
    projections: Sequence[MachineFitProjection],
) -> str:
    """Render projections as the HPC_FIT comparison table."""
    rows = []
    for p in projections:
        rows.append(
            [
                p.machine.name,
                f"DDR{p.machine.ddr_generation}",
                f"{p.machine.memory_tib:.0f}",
                "yes" if p.machine.liquid_cooled else "no",
                f"{p.thermal_flux_per_cm2_h:.1f}",
                f"{p.fit_no_ecc:.3g}",
                f"{p.fit_with_ecc:.3g}",
                f"{p.errors_per_day_no_ecc:.2f}",
            ]
        )
    return format_table(
        [
            "machine", "DDR", "mem TiB", "liquid",
            "th.flux /cm2/h", "FIT (no ECC)", "FIT (SECDED)",
            "errors/day",
        ],
        rows,
        title="Top-10 supercomputers: projected DDR thermal FIT",
    )
