"""The end-to-end risk-assessment pipeline — the library's front door.

``RiskAssessment`` answers the paper's practical question for a
deployment: *given this COTS device, this code, and this environment,
what is the error rate, and how much of it comes from thermal neutrons
that a conventional analysis would miss?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_percent, format_table
from repro.core.fit import DeviceFitReport, FitCalculator
from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.faults.models import Outcome
from repro.runtime.errors import require_non_empty

#: Thermal share above which the assessment flags the device.
THERMAL_SHARE_WARNING: float = 0.25


@dataclass(frozen=True)
class RiskFinding:
    """One flagged risk in an assessment.

    Attributes:
        severity: "info" | "warning" | "critical".
        message: human-readable explanation.
    """

    severity: str
    message: str


@dataclass
class AssessmentReport:
    """Aggregated output of a :class:`RiskAssessment` run.

    Attributes:
        reports: per-(device, scenario) FIT reports.
        findings: flagged risks.
    """

    reports: List[DeviceFitReport] = field(default_factory=list)
    findings: List[RiskFinding] = field(default_factory=list)

    def worst_thermal_share(self) -> Tuple[str, float]:
        """(device, share): the most thermally-exposed entry."""
        if not self.reports:
            raise ValueError("empty assessment")
        worst = max(
            self.reports,
            key=lambda r: max(
                r.sdc.thermal_share, r.due.thermal_share
            ),
        )
        share = max(
            worst.sdc.thermal_share, worst.due.thermal_share
        )
        return worst.device_name, share

    def to_table(self) -> str:
        """Render the assessment as an aligned text table."""
        rows = []
        for r in self.reports:
            rows.append(
                [
                    r.device_name,
                    r.code or "(avg)",
                    r.scenario_label,
                    f"{r.sdc.total:.2f}",
                    format_percent(r.sdc.thermal_share),
                    f"{r.due.total:.2f}",
                    format_percent(r.due.thermal_share),
                ]
            )
        return format_table(
            [
                "device", "code", "scenario",
                "SDC FIT", "SDC thermal", "DUE FIT", "DUE thermal",
            ],
            rows,
            title="Thermal-neutron risk assessment",
        )


class RiskAssessment:
    """Assess devices across deployment scenarios.

    Args:
        calculator: FIT engine (injectable for testing).
    """

    def __init__(
        self, calculator: Optional[FitCalculator] = None
    ) -> None:
        self.calculator = calculator or FitCalculator()

    def assess(
        self,
        devices: Sequence[Device],
        scenarios: Sequence[FluxScenario],
        code: Optional[str] = None,
    ) -> AssessmentReport:
        """Produce FIT reports and findings for a deployment matrix.

        Args:
            devices: candidate devices.
            scenarios: environments to evaluate.
            code: optional specific workload.

        Raises:
            ConfigurationError: on an empty device or scenario list.
        """
        require_non_empty("devices", list(devices))
        require_non_empty("scenarios", list(scenarios))
        report = AssessmentReport()
        for device in devices:
            for scenario in scenarios:
                fit = self.calculator.report(device, scenario, code)
                report.reports.append(fit)
                self._flag(report, device, fit)
        return report

    # ------------------------------------------------------------------

    def _flag(
        self,
        report: AssessmentReport,
        device: Device,
        fit: DeviceFitReport,
    ) -> None:
        for decomposition, label in (
            (fit.sdc, "SDC"),
            (fit.due, "DUE"),
        ):
            share = decomposition.thermal_share
            if share >= THERMAL_SHARE_WARNING:
                report.findings.append(
                    RiskFinding(
                        severity="warning",
                        message=(
                            f"{device.name} in {fit.scenario_label}:"
                            f" {format_percent(share)} of the {label}"
                            " FIT rate is thermal-neutron induced —"
                            " a high-energy-only qualification"
                            " underestimates the error rate by"
                            f" {format_percent(share)}"
                        ),
                    )
                )
        if fit.due.thermal_share > 0.45:
            report.findings.append(
                RiskFinding(
                    severity="critical",
                    message=(
                        f"{device.name}: thermal neutrons cause"
                        " about as many DUEs as high-energy ones"
                        " (the paper's APU CPU+GPU case) — check"
                        " for 10B in the process before deploying"
                        " in a safety-critical role"
                    ),
                )
            )

    def compare_scenarios(
        self,
        device: Device,
        baseline: FluxScenario,
        alternative: FluxScenario,
        outcome: Outcome = Outcome.SDC,
        code: Optional[str] = None,
    ) -> float:
        """Total-FIT ratio alternative/baseline for one device.

        Quantifies questions like "how much worse is a rainy day" or
        "what does liquid cooling cost in FIT".
        """
        base = self.calculator.decompose(
            device, baseline, outcome, code
        ).total
        alt = self.calculator.decompose(
            device, alternative, outcome, code
        ).total
        if base == 0.0:
            raise ValueError("baseline FIT is zero")
        return alt / base
