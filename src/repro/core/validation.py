"""Self-validation: recompute every paper anchor and compare.

``validate_reproduction()`` reruns the fast end of each experiment and
checks the result against the registry in :mod:`repro.paper` — the
one-command answer to "does this install still reproduce the paper?".
Exposed on the CLI as ``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import format_table
from repro.core.fit import FitCalculator
from repro.detector.experiment import water_step_experiment
from repro.devices.catalog import get_device
from repro.environment.scenario import datacenter_scenario
from repro.environment.sites import LEADVILLE, NEW_YORK
from repro.faults.models import Outcome
from repro.memory.errors import DDR3_SENSITIVITY, DDR4_SENSITIVITY
from repro.memory.tester import CorrectLoopTester
from repro.paper import paper_value
from repro.spectra.beamlines import chipir_spectrum, rotax_spectrum


@dataclass(frozen=True)
class CheckResult:
    """One anchor check.

    Attributes:
        name: what was checked.
        measured: the recomputed value.
        expected: the published value.
        tolerance: relative tolerance applied.
        passed: verdict.
    """

    name: str
    measured: float
    expected: float
    tolerance: float
    passed: bool


def _check(
    name: str, measured: float, expected: float, rel_tol: float
) -> CheckResult:
    ok = abs(measured - expected) <= rel_tol * abs(expected)
    return CheckResult(
        name=name,
        measured=measured,
        expected=expected,
        tolerance=rel_tol,
        passed=ok,
    )


def validate_reproduction(seed: int = 2020) -> List[CheckResult]:
    """Recompute the anchors; returns one result per check.

    Args:
        seed: seed for the stochastic checks (detector, DDR).
    """
    checks: List[CheckResult] = []

    # --- beamline fluxes (deterministic) ---
    chip = chipir_spectrum()
    rot = rotax_spectrum()
    checks.append(
        _check(
            "ChipIR flux > 10 MeV",
            chip.fast_flux(),
            paper_value("chipir_flux_above_10mev"),
            0.01,
        )
    )
    checks.append(
        _check(
            "ChipIR thermal component",
            chip.thermal_flux(),
            paper_value("chipir_thermal_flux"),
            0.05,
        )
    )
    checks.append(
        _check(
            "ROTAX thermal flux",
            rot.total_flux(),
            paper_value("rotax_thermal_flux"),
            0.01,
        )
    )

    # --- FIT shares (deterministic identities) ---
    calc = FitCalculator()
    share_cases = [
        ("Xeon Phi SDC share @ NYC", "XeonPhi", Outcome.SDC,
         NEW_YORK, "xeonphi_nyc_sdc_share"),
        ("Xeon Phi DUE share @ Leadville", "XeonPhi", Outcome.DUE,
         LEADVILLE, "xeonphi_leadville_due_share"),
        ("K20 SDC share @ Leadville", "K20", Outcome.SDC,
         LEADVILLE, "k20_leadville_sdc_share"),
        ("APU CPU+GPU DUE share @ Leadville", "APU-CPU+GPU",
         Outcome.DUE, LEADVILLE, "apu_leadville_due_share"),
    ]
    for name, device, outcome, site, slug in share_cases:
        measured = calc.thermal_share(
            get_device(device), datacenter_scenario(site), outcome
        )
        checks.append(
            _check(name, measured, paper_value(slug), 0.06)
        )

    # --- detector water step (stochastic) ---
    water = water_step_experiment(
        background_hours=96.0, water_hours=48.0,
        interval_h=2.0, seed=seed,
    )
    checks.append(
        _check(
            "Tin-II water enhancement",
            water.measured_enhancement,
            paper_value("water_thermal_enhancement"),
            0.25,
        )
    )

    # --- DDR generation gap (stochastic) ---
    ddr3 = CorrectLoopTester(
        DDR3_SENSITIVITY, 32.0, seed=seed
    ).run(paper_value("rotax_thermal_flux"), 2.0 * 3600.0)
    ddr4 = CorrectLoopTester(
        DDR4_SENSITIVITY, 64.0, seed=seed
    ).run(paper_value("rotax_thermal_flux"), 2.0 * 3600.0)
    gap = (
        ddr3.total_cell_cross_section_per_gbit()
        / ddr4.total_cell_cross_section_per_gbit()
    )
    checks.append(
        _check("DDR3/DDR4 cross-section gap (~10x)", gap, 10.0, 0.5)
    )
    checks.append(
        _check(
            "DDR3 dominant-direction fraction",
            ddr3.dominant_direction_fraction(),
            paper_value("ddr_direction_dominance"),
            0.05,
        )
    )
    return checks


def validation_table(checks: List[CheckResult]) -> str:
    """Render checks as an aligned table."""
    rows = [
        [
            c.name,
            f"{c.measured:.4g}",
            f"{c.expected:.4g}",
            f"{c.tolerance:.0%}",
            "PASS" if c.passed else "FAIL",
        ]
        for c in checks
    ]
    return format_table(
        ["check", "measured", "paper", "tol", "verdict"],
        rows,
        title="Reproduction self-validation",
    )


def all_passed(checks: List[CheckResult]) -> bool:
    """True when every anchor check passed."""
    if not checks:
        raise ValueError("no checks run")
    return all(c.passed for c in checks)


__all__ = [
    "CheckResult",
    "all_passed",
    "validate_reproduction",
    "validation_table",
]
