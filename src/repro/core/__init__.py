"""The paper's analytical core: FIT decomposition and risk assessment.

Public entry points:

* :class:`~repro.core.fit.FitCalculator` — cross section x flux ->
  FIT, decomposed into high-energy and thermal components;
* :class:`~repro.core.assessment.RiskAssessment` — the end-to-end
  pipeline over devices x scenarios, with risk findings;
* :class:`~repro.core.shielding.ShieldingEvaluator` — the Cd /
  borated-poly trade-off of Section VI;
* :func:`~repro.core.supercomputers.project_top10` — the Top-10 DDR
  thermal-FIT projection.
"""

from repro.core.fit import (
    DeviceFitReport,
    FitCalculator,
    FitDecomposition,
    fit_rate,
)
from repro.core.assessment import (
    AssessmentReport,
    RiskAssessment,
    RiskFinding,
    THERMAL_SHARE_WARNING,
)
from repro.core.shielding import (
    BORATED_POLY_SLAB,
    CADMIUM_SHEET,
    ShieldEvaluation,
    ShieldOption,
    ShieldingEvaluator,
)
from repro.core.checkpoint import (
    CheckpointPlan,
    CheckpointPlanner,
    plan_efficiency,
    young_daly_interval,
)
from repro.core.crossover import (
    crossover_altitude_m,
    thermal_share_at_altitude,
)
from repro.core.fleet import FleetDay, FleetSimulator, FleetYearResult
from repro.core.report import ReportOptions, generate_report
from repro.core.validation import (
    CheckResult,
    all_passed,
    validate_reproduction,
    validation_table,
)
from repro.core.selection import (
    DeviceSelector,
    SelectionRequirement,
    SelectionVerdict,
)
from repro.core.supercomputers import (
    GBIT_PER_TIB,
    MachineFitProjection,
    project_machine,
    project_top10,
    top10_table,
)

__all__ = [
    "DeviceFitReport",
    "FitCalculator",
    "FitDecomposition",
    "fit_rate",
    "AssessmentReport",
    "RiskAssessment",
    "RiskFinding",
    "THERMAL_SHARE_WARNING",
    "BORATED_POLY_SLAB",
    "CADMIUM_SHEET",
    "ShieldEvaluation",
    "ShieldOption",
    "ShieldingEvaluator",
    "CheckpointPlan",
    "CheckpointPlanner",
    "plan_efficiency",
    "young_daly_interval",
    "crossover_altitude_m",
    "thermal_share_at_altitude",
    "FleetDay",
    "FleetSimulator",
    "FleetYearResult",
    "CheckResult",
    "all_passed",
    "validate_reproduction",
    "validation_table",
    "ReportOptions",
    "generate_report",
    "DeviceSelector",
    "SelectionRequirement",
    "SelectionVerdict",
    "GBIT_PER_TIB",
    "MachineFitProjection",
    "project_machine",
    "project_top10",
    "top10_table",
]
