"""FIT-rate arithmetic: cross sections x fluxes -> error rates.

This is the paper's Section VI: the cross section is the device
property, the flux is the environment property, and

    FIT = sigma (cm^2) x flux (n/cm^2/h) x 1e9

for each (beam band, outcome) pair.  The **thermal share** of the
total FIT is the paper's headline decomposition (up to ~40 % for the
soft devices, and the amount by which a high-energy-only analysis
underestimates the error rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.faults.models import BeamKind, Outcome
from repro.physics.units import HOURS_PER_BILLION


def fit_rate(sigma_cm2: float, flux_per_cm2_h: float) -> float:
    """FIT from a cross section and a flux.

    Raises:
        ValueError: on negative inputs.
    """
    if sigma_cm2 < 0.0:
        raise ValueError(f"sigma must be >= 0, got {sigma_cm2}")
    if flux_per_cm2_h < 0.0:
        raise ValueError(
            f"flux must be >= 0, got {flux_per_cm2_h}"
        )
    return sigma_cm2 * flux_per_cm2_h * HOURS_PER_BILLION


@dataclass(frozen=True)
class FitDecomposition:
    """FIT of one outcome split by beam band.

    Attributes:
        outcome: SDC or DUE.
        fit_high_energy: FIT from the fast (>10 MeV) flux.
        fit_thermal: FIT from the thermal (<0.5 eV) flux.
    """

    outcome: Outcome
    fit_high_energy: float
    fit_thermal: float

    @property
    def total(self) -> float:
        """Combined FIT."""
        return self.fit_high_energy + self.fit_thermal

    @property
    def thermal_share(self) -> float:
        """Fraction of the total FIT due to thermal neutrons."""
        if self.total == 0.0:
            raise ValueError("zero total FIT; share undefined")
        return self.fit_thermal / self.total

    @property
    def underestimate_if_thermals_ignored(self) -> float:
        """How much a fast-only analysis underestimates the rate.

        E.g. 0.66 means the true FIT is 1/0.66 = 1.5x the fast-only
        estimate.
        """
        if self.total == 0.0:
            raise ValueError("zero total FIT")
        return self.fit_high_energy / self.total


@dataclass(frozen=True)
class DeviceFitReport:
    """Full FIT report for one device in one scenario.

    Attributes:
        device_name: the DUT.
        scenario_label: environment description.
        sdc: SDC decomposition.
        due: DUE decomposition.
        code: optional specific code (None = device average).
    """

    device_name: str
    scenario_label: str
    sdc: FitDecomposition
    due: FitDecomposition
    code: Optional[str] = None

    @property
    def total_fit(self) -> float:
        """SDC + DUE FIT."""
        return self.sdc.total + self.due.total

    def mtbf_hours(self) -> float:
        """Mean time between (any) errors for one device, hours."""
        if self.total_fit == 0.0:
            raise ValueError("zero FIT; MTBF infinite")
        return HOURS_PER_BILLION / self.total_fit

    def fleet_error_rate_per_day(self, n_devices: int) -> float:
        """Expected errors/day across a fleet of identical devices."""
        if n_devices < 0:
            raise ValueError(
                f"fleet size must be >= 0, got {n_devices}"
            )
        return (
            self.total_fit / HOURS_PER_BILLION * 24.0 * n_devices
        )


class FitCalculator:
    """Computes FIT reports for devices in flux scenarios."""

    def decompose(
        self,
        device: Device,
        scenario: FluxScenario,
        outcome: Outcome,
        code: Optional[str] = None,
    ) -> FitDecomposition:
        """FIT decomposition of one outcome."""
        sigma_he = device.sigma(BeamKind.HIGH_ENERGY, outcome, code)
        sigma_th = device.sigma(BeamKind.THERMAL, outcome, code)
        return FitDecomposition(
            outcome=outcome,
            fit_high_energy=fit_rate(
                sigma_he, scenario.fast_flux_per_h()
            ),
            fit_thermal=fit_rate(
                sigma_th, scenario.thermal_flux_per_h()
            ),
        )

    def report(
        self,
        device: Device,
        scenario: FluxScenario,
        code: Optional[str] = None,
    ) -> DeviceFitReport:
        """Full SDC+DUE report for a device in a scenario."""
        return DeviceFitReport(
            device_name=device.name,
            scenario_label=scenario.label,
            sdc=self.decompose(device, scenario, Outcome.SDC, code),
            due=self.decompose(device, scenario, Outcome.DUE, code),
            code=code,
        )

    def thermal_share(
        self,
        device: Device,
        scenario: FluxScenario,
        outcome: Outcome,
        code: Optional[str] = None,
    ) -> float:
        """Shortcut: thermal share of one outcome's FIT.

        Analytically this is ``r / (r + R)`` where ``r`` is the
        scenario's thermal/fast flux ratio and ``R`` the device's
        HE/thermal sigma ratio — the identity the paper's FIT
        percentages are built on.
        """
        return self.decompose(
            device, scenario, outcome, code
        ).thermal_share
