"""Shielding trade-off analysis (paper Section VI, last paragraph).

Thermal neutrons — unlike fast ones — *can* be shielded: a millimetre
of cadmium or a few cm of borated polyethylene removes the band.  The
paper's point is that neither is practical next to an HPC device:
cadmium is toxic and must not be heated, borated poly thermally
insulates the part it protects.  The evaluator quantifies the FIT
reduction each shield buys and carries those practicality flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.fit import FitCalculator
from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.faults.models import Outcome
from repro.spectra.beamlines import rotax_spectrum
from repro.transport.api import AccuracyTarget, TransportQuery, answer
from repro.transport.materials import (
    BORATED_POLYETHYLENE,
    CADMIUM,
    Material,
)


@dataclass(frozen=True)
class ShieldOption:
    """One candidate shield.

    Attributes:
        material: shield material.
        thickness_cm: layer thickness.
        toxic: unsafe near heat (cadmium).
        thermally_insulating: blocks device cooling (borated poly).
    """

    material: Material
    thickness_cm: float
    toxic: bool = False
    thermally_insulating: bool = False

    def __post_init__(self) -> None:
        if self.thickness_cm <= 0.0:
            raise ValueError(
                f"thickness must be positive, got {self.thickness_cm}"
            )

    @property
    def practical_near_hpc(self) -> bool:
        """Usable next to a hot device / cooling loop?"""
        return not (self.toxic or self.thermally_insulating)


#: The paper's two named options.
CADMIUM_SHEET = ShieldOption(
    CADMIUM, thickness_cm=0.1, toxic=True
)
BORATED_POLY_SLAB = ShieldOption(
    BORATED_POLYETHYLENE, thickness_cm=5.0,
    thermally_insulating=True,
)


@dataclass(frozen=True)
class ShieldEvaluation:
    """Outcome of evaluating one shield for one device/scenario.

    Attributes:
        option: the shield evaluated.
        thermal_transmission: fraction of thermal flux passing.
        fit_unshielded / fit_shielded: total (SDC+DUE) FIT before and
            after.
        practical: the practicality verdict.
    """

    option: ShieldOption
    thermal_transmission: float
    fit_unshielded: float
    fit_shielded: float
    practical: bool

    @property
    def fit_reduction(self) -> float:
        """Fractional FIT reduction the shield buys."""
        if self.fit_unshielded == 0.0:
            raise ValueError("zero unshielded FIT")
        return 1.0 - self.fit_shielded / self.fit_unshielded


class ShieldingEvaluator:
    """Monte-Carlo-backed shield evaluation.

    Args:
        n_neutrons: MC histories per transmission estimate.
        seed: MC seed.
        calculator: FIT engine.
        engine: transport engine policy — ``"batch"`` (default),
            ``"scalar"``, ``"deterministic"`` (noise-free multigroup
            solve; ``n_neutrons``/``seed`` are then inert), or
            ``"auto"``/``"surrogate"`` to let the facade serve from
            a certified response surface when one covers the query.
        accuracy: accuracy target handed to the transport facade.
    """

    def __init__(
        self,
        n_neutrons: int = 5000,
        seed: int = 2020,
        calculator: Optional[FitCalculator] = None,
        engine: str = "batch",
        accuracy: Optional[AccuracyTarget] = None,
    ) -> None:
        if n_neutrons <= 0:
            raise ValueError(
                f"n_neutrons must be positive, got {n_neutrons}"
            )
        self.n_neutrons = n_neutrons
        self.seed = seed
        self.calculator = calculator or FitCalculator()
        self.engine = engine
        self.accuracy = accuracy or AccuracyTarget()

    def thermal_transmission(self, option: ShieldOption) -> float:
        """Thermal-band transmission of a shield (via the transport
        facade; the engine policy decides who answers)."""
        result = answer(
            TransportQuery(
                mode="transmission",
                material=option.material,
                thickness_cm=option.thickness_cm,
                source_spectrum=rotax_spectrum(),
                n_neutrons=self.n_neutrons,
                seed=self.seed,
                engine=self.engine,
                accuracy=self.accuracy,
            )
        )
        return result.result.thermal_transmission_fraction()

    def evaluate(
        self,
        option: ShieldOption,
        device: Device,
        scenario: FluxScenario,
    ) -> ShieldEvaluation:
        """FIT impact of one shield for one deployment."""
        transmission = self.thermal_transmission(option)
        before = self._total_fit(device, scenario, thermal_scale=1.0)
        after = self._total_fit(
            device, scenario, thermal_scale=transmission
        )
        return ShieldEvaluation(
            option=option,
            thermal_transmission=transmission,
            fit_unshielded=before,
            fit_shielded=after,
            practical=option.practical_near_hpc,
        )

    def rank(
        self,
        options: List[ShieldOption],
        device: Device,
        scenario: FluxScenario,
        require_practical: bool = False,
    ) -> List[ShieldEvaluation]:
        """Evaluate several shields, best FIT reduction first."""
        evaluations = [
            self.evaluate(o, device, scenario) for o in options
        ]
        if require_practical:
            evaluations = [e for e in evaluations if e.practical]
        return sorted(
            evaluations, key=lambda e: e.fit_shielded
        )

    # ------------------------------------------------------------------

    def _total_fit(
        self,
        device: Device,
        scenario: FluxScenario,
        thermal_scale: float,
    ) -> float:
        total = 0.0
        for outcome in (Outcome.SDC, Outcome.DUE):
            d = self.calculator.decompose(device, scenario, outcome)
            total += d.fit_high_energy + d.fit_thermal * thermal_scale
        return total
