"""Checkpoint-interval planning from FIT rates.

The paper's Section VI remark: *"when supercomputer time is allocated,
the checkpoint frequency may need to consider weather conditions"* —
because the DUE rate, and with it the optimal checkpoint interval,
moves with the thermal flux.  This module turns a FIT decomposition
into a checkpoint plan using the Young/Daly first-order optimum

    tau* = sqrt(2 * delta * MTBF)

with ``delta`` the checkpoint write cost, and quantifies the efficiency
lost when the interval was planned for the wrong weather.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.fit import FitCalculator
from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.faults.models import Outcome
from repro.physics.units import HOURS_PER_BILLION


@dataclass(frozen=True)
class CheckpointPlan:
    """A checkpoint schedule for one job/fleet.

    Attributes:
        interval_hours: optimal time between checkpoints.
        mtbf_hours: the failure MTBF the plan is built on.
        checkpoint_cost_hours: time to write one checkpoint.
        expected_efficiency: fraction of wall-clock doing useful work
            under this plan (first-order Young/Daly estimate).
    """

    interval_hours: float
    mtbf_hours: float
    checkpoint_cost_hours: float
    expected_efficiency: float


def young_daly_interval(
    mtbf_hours: float, checkpoint_cost_hours: float
) -> float:
    """First-order optimal checkpoint interval, hours.

    Raises:
        ValueError: on non-positive inputs.
    """
    if mtbf_hours <= 0.0:
        raise ValueError(f"MTBF must be positive, got {mtbf_hours}")
    if checkpoint_cost_hours <= 0.0:
        raise ValueError(
            "checkpoint cost must be positive,"
            f" got {checkpoint_cost_hours}"
        )
    return math.sqrt(2.0 * checkpoint_cost_hours * mtbf_hours)


def plan_efficiency(
    interval_hours: float,
    mtbf_hours: float,
    checkpoint_cost_hours: float,
) -> float:
    """Useful-work fraction for a given interval (first order).

    Overhead = checkpoint writes (``delta / tau``) plus expected
    rework after failures (``tau / (2 * MTBF)``).
    """
    if interval_hours <= 0.0:
        raise ValueError(
            f"interval must be positive, got {interval_hours}"
        )
    if mtbf_hours <= 0.0 or checkpoint_cost_hours < 0.0:
        raise ValueError("MTBF/cost out of range")
    overhead = (
        checkpoint_cost_hours / interval_hours
        + interval_hours / (2.0 * mtbf_hours)
    )
    return max(0.0, 1.0 - overhead)


class CheckpointPlanner:
    """Plans checkpoints for a device fleet in a flux scenario.

    Only DUEs force a restart (SDCs are silent), so plans are built
    from the DUE FIT.

    Args:
        calculator: FIT engine.
    """

    def __init__(
        self, calculator: Optional[FitCalculator] = None
    ) -> None:
        self.calculator = calculator or FitCalculator()

    def fleet_mtbf_hours(
        self,
        device: Device,
        scenario: FluxScenario,
        n_devices: int,
        code: Optional[str] = None,
    ) -> float:
        """DUE MTBF of a fleet of identical devices, hours."""
        if n_devices <= 0:
            raise ValueError(
                f"fleet size must be positive, got {n_devices}"
            )
        due_fit = self.calculator.decompose(
            device, scenario, Outcome.DUE, code
        ).total
        if due_fit == 0.0:
            raise ValueError("zero DUE FIT; MTBF infinite")
        return HOURS_PER_BILLION / (due_fit * n_devices)

    def plan(
        self,
        device: Device,
        scenario: FluxScenario,
        n_devices: int,
        checkpoint_cost_hours: float,
        code: Optional[str] = None,
    ) -> CheckpointPlan:
        """Build the optimal plan for a fleet in a scenario."""
        mtbf = self.fleet_mtbf_hours(
            device, scenario, n_devices, code
        )
        interval = young_daly_interval(mtbf, checkpoint_cost_hours)
        return CheckpointPlan(
            interval_hours=interval,
            mtbf_hours=mtbf,
            checkpoint_cost_hours=checkpoint_cost_hours,
            expected_efficiency=plan_efficiency(
                interval, mtbf, checkpoint_cost_hours
            ),
        )

    def weather_penalty(
        self,
        device: Device,
        baseline: FluxScenario,
        actual: FluxScenario,
        n_devices: int,
        checkpoint_cost_hours: float,
        code: Optional[str] = None,
    ) -> float:
        """Efficiency lost by planning for the wrong weather.

        The plan is optimized for ``baseline`` but the machine runs
        under ``actual`` (e.g. a thunderstorm).  Returns the
        efficiency difference between the re-optimized plan and the
        stale plan under the actual conditions — the paper's
        checkpoint-vs-forecast argument quantified.
        """
        stale = self.plan(
            device, baseline, n_devices, checkpoint_cost_hours, code
        )
        actual_mtbf = self.fleet_mtbf_hours(
            device, actual, n_devices, code
        )
        stale_eff = plan_efficiency(
            stale.interval_hours, actual_mtbf, checkpoint_cost_hours
        )
        fresh = self.plan(
            device, actual, n_devices, checkpoint_cost_hours, code
        )
        return fresh.expected_efficiency - stale_eff
