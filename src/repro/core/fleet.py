"""Year-long fleet simulation: weather, solar cycle, error counts.

The paper's operational punchline — error rates move with the weather
and the surroundings — becomes concrete when you run a machine for a
year: this simulator draws daily weather from a two-state Markov
chain, modulates the fast flux with the solar cycle, converts the
day's fluxes to expected error counts through the device cross
sections, and draws Poisson counts.  The output answers questions the
FIT tables cannot: how bursty are the bad days, and how much of the
annual error budget arrives during storms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.fit import FitCalculator
from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.environment.modifiers import WeatherCondition
from repro.environment.solar import solar_modulation_factor
from repro.faults.models import Outcome
from repro.obs import core as obs
from repro.physics.units import HOURS_PER_BILLION
from repro.runtime.errors import (
    ConfigurationError,
    require_positive_int,
    require_probability,
)


@dataclass(frozen=True)
class FleetDay:
    """One simulated day.

    Attributes:
        day: index from simulation start.
        weather: that day's condition.
        sdc_count / due_count: fleet-wide observed errors.
        expected_sdc / expected_due: Poisson means used.
    """

    day: int
    weather: WeatherCondition
    sdc_count: int
    due_count: int
    expected_sdc: float
    expected_due: float

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready; fleet checkpoints)."""
        return {
            "day": self.day,
            "weather": self.weather.value,
            "sdc_count": self.sdc_count,
            "due_count": self.due_count,
            "expected_sdc": self.expected_sdc,
            "expected_due": self.expected_due,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetDay":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            day=int(data["day"]),
            weather=WeatherCondition(data["weather"]),
            sdc_count=int(data["sdc_count"]),
            due_count=int(data["due_count"]),
            expected_sdc=float(data["expected_sdc"]),
            expected_due=float(data["expected_due"]),
        )


@dataclass
class FleetYearResult:
    """A year of fleet operation."""

    days: List[FleetDay] = field(default_factory=list)

    def total(self, outcome: Outcome) -> int:
        """Total observed errors of one kind."""
        if outcome is Outcome.SDC:
            return sum(d.sdc_count for d in self.days)
        if outcome is Outcome.DUE:
            return sum(d.due_count for d in self.days)
        raise ValueError(f"no counts for outcome {outcome}")

    def rainy_day_share(self, outcome: Outcome) -> float:
        """Fraction of the year's errors that fell on rainy days."""
        total = self.total(outcome)
        if total == 0:
            raise ValueError("no errors observed; share undefined")
        rainy = sum(
            (
                d.sdc_count
                if outcome is Outcome.SDC
                else d.due_count
            )
            for d in self.days
            if d.weather is WeatherCondition.RAIN
        )
        return rainy / total

    def rainy_day_fraction(self) -> float:
        """Fraction of days that were rainy."""
        if not self.days:
            raise ValueError("empty simulation")
        rainy = sum(
            1
            for d in self.days
            if d.weather is WeatherCondition.RAIN
        )
        return rainy / len(self.days)


class FleetSimulator:
    """Simulates a device fleet through a year of weather.

    Args:
        device: the deployed part.
        scenario: the machine-room scenario on a *sunny* day; weather
            is varied by the simulator.
        n_devices: fleet size.
        rain_probability: stationary probability of a rainy day.
        rain_persistence: probability a rainy day is followed by
            another rainy day (weather is autocorrelated).
        seed: RNG seed.
    """

    def __init__(
        self,
        device: Device,
        scenario: FluxScenario,
        n_devices: int,
        rain_probability: float = 0.15,
        rain_persistence: float = 0.5,
        seed: int = 2020,
    ) -> None:
        require_positive_int("fleet size (n_devices)", n_devices)
        require_probability("rain_probability", rain_probability)
        require_probability("rain_persistence", rain_persistence)
        self.device = device
        self.scenario = scenario.with_weather(
            WeatherCondition.SUNNY
        )
        self.n_devices = n_devices
        self.rain_probability = rain_probability
        self.rain_persistence = rain_persistence
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.calculator = FitCalculator()
        self._raining: Optional[bool] = None

    # ------------------------------------------------------------------

    def _transition(self, raining: bool) -> bool:
        if raining:
            return self.rng.random() < self.rain_persistence
        # Stationarity: p(dry->rain) chosen so the long-run rain
        # fraction equals rain_probability.
        p_stay_dry_needed = (
            self.rain_probability
            * (1.0 - self.rain_persistence)
            / max(1.0 - self.rain_probability, 1e-12)
        )
        return self.rng.random() < p_stay_dry_needed

    def _expected_daily(
        self, weather: WeatherCondition, solar_factor: float
    ) -> tuple:
        scenario = self.scenario.with_weather(weather)
        out = []
        for outcome in (Outcome.SDC, Outcome.DUE):
            d = self.calculator.decompose(
                self.device, scenario, outcome
            )
            fit = (
                d.fit_high_energy * solar_factor
                + d.fit_thermal * solar_factor
            )
            out.append(
                fit / HOURS_PER_BILLION * 24.0 * self.n_devices
            )
        return tuple(out)

    # ------------------------------------------------------------------
    # Resumable stepping (the supervised runtime checkpoints between
    # days; see repro.runtime.supervisor.FleetRunner)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Draw the initial weather state; call before stepping."""
        self._raining = bool(
            self.rng.random() < self.rain_probability
        )

    def step_day(
        self, day: int, years_since_solar_minimum: float = 0.0
    ) -> FleetDay:
        """Simulate one day and advance the weather chain.

        Args:
            day: day index from simulation start (non-negative).
            years_since_solar_minimum: solar-cycle phase at day 0.

        Raises:
            ConfigurationError: if called before :meth:`start` or
                with a negative day index.
        """
        if self._raining is None:
            raise ConfigurationError(
                "step_day() called before start(): the weather chain"
                " has no initial state"
            )
        if day < 0:
            raise ConfigurationError(
                f"day index must be >= 0, got {day}"
            )
        weather = (
            WeatherCondition.RAIN
            if self._raining
            else WeatherCondition.SUNNY
        )
        solar = solar_modulation_factor(
            years_since_solar_minimum + day / 365.0
        )
        expected_sdc, expected_due = self._expected_daily(
            weather, solar
        )
        record = FleetDay(
            day=day,
            weather=weather,
            sdc_count=int(self.rng.poisson(expected_sdc)),
            due_count=int(self.rng.poisson(expected_due)),
            expected_sdc=expected_sdc,
            expected_due=expected_due,
        )
        self._raining = self._transition(self._raining)
        return record

    def state_dict(self) -> dict:
        """Checkpointable simulator state (RNG + weather chain).

        Raises:
            ConfigurationError: before :meth:`start` has been called.
        """
        if self._raining is None:
            raise ConfigurationError(
                "no state to checkpoint: call start() first"
            )
        return {
            "rng_state": self.rng.bit_generator.state,
            "raining": self._raining,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (byte-exact resume)."""
        self.rng.bit_generator.state = state["rng_state"]
        self._raining = bool(state["raining"])

    def run_year(
        self, years_since_solar_minimum: float = 0.0
    ) -> FleetYearResult:
        """Simulate 365 days.

        Args:
            years_since_solar_minimum: solar-cycle phase at start.
        """
        with obs.span("fleet.year", n_days=365):
            result = FleetYearResult()
            self.start()
            for day in range(365):
                result.days.append(
                    self.step_day(day, years_since_solar_minimum)
                )
            return result


__all__ = ["FleetDay", "FleetSimulator", "FleetYearResult"]
