"""Crossover analysis: where does the thermal component take over?

The FIT share grows with altitude (the thermal/fast flux ratio rises)
and with the surroundings.  For planning it is useful to invert that:
*at what altitude does device X's thermal share cross Y %?* — e.g. the
altitude above which a thermal-blind qualification underestimates the
error rate by more than a quarter.
"""

from __future__ import annotations

from typing import Optional

from repro.core.fit import FitCalculator
from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.environment.sites import Site
from repro.faults.models import Outcome

#: Search ceiling: the flux model is calibrated for ground sites.
MAX_SEARCH_ALTITUDE_M: float = 5000.0


def thermal_share_at_altitude(
    device: Device,
    altitude_m: float,
    outcome: Outcome,
    scenario_template: Optional[FluxScenario] = None,
) -> float:
    """Thermal FIT share for a device at an arbitrary altitude.

    Args:
        device: the DUT.
        altitude_m: site altitude.
        outcome: SDC or DUE.
        scenario_template: optional scenario whose materials/weather
            are reused (the site is replaced); default open field.
    """
    site = Site("probe", altitude_m, 45.0)
    if scenario_template is None:
        scenario = FluxScenario(site=site)
    else:
        scenario = FluxScenario(
            site=site,
            materials=scenario_template.materials,
            weather=scenario_template.weather,
        )
    return FitCalculator().thermal_share(device, scenario, outcome)


def crossover_altitude_m(
    device: Device,
    outcome: Outcome,
    target_share: float,
    scenario_template: Optional[FluxScenario] = None,
    tolerance_m: float = 1.0,
) -> Optional[float]:
    """Lowest altitude where the thermal share reaches the target.

    Bisection over [0, MAX_SEARCH_ALTITUDE_M]; the share is monotone
    in altitude (the thermal ratio grows linearly).

    Args:
        device: the DUT.
        outcome: SDC or DUE.
        target_share: share threshold in (0, 1).
        scenario_template: materials/weather context.
        tolerance_m: bisection resolution.

    Returns:
        The crossover altitude in metres, or ``None`` if the share
        never reaches the target below the search ceiling (or
        already exceeds it at sea level, in which case 0.0 is
        returned instead of None).

    Raises:
        ValueError: on a target outside (0, 1).
    """
    if not 0.0 < target_share < 1.0:
        raise ValueError(
            f"target share must be in (0, 1), got {target_share}"
        )
    if tolerance_m <= 0.0:
        raise ValueError(
            f"tolerance must be positive, got {tolerance_m}"
        )

    def share(altitude: float) -> float:
        return thermal_share_at_altitude(
            device, altitude, outcome, scenario_template
        )

    lo, hi = 0.0, MAX_SEARCH_ALTITUDE_M
    if share(lo) >= target_share:
        return 0.0
    if share(hi) < target_share:
        return None
    while hi - lo > tolerance_m:
        mid = 0.5 * (lo + hi)
        if share(mid) < target_share:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


__all__ = [
    "MAX_SEARCH_ALTITUDE_M",
    "crossover_altitude_m",
    "thermal_share_at_altitude",
]
