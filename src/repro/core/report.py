"""One-shot Markdown reliability report.

Bundles the library's analyses for a deployment into a single
document — the artifact a reliability engineer would attach to a
design review: FIT decomposition, findings, shielding options,
checkpoint plan, and (for machine rooms) the DDR scrubbing story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.sensitivity import thermal_share_with_uncertainty
from repro.core.assessment import RiskAssessment
from repro.core.checkpoint import CheckpointPlanner
from repro.core.fit import FitCalculator
from repro.core.shielding import (
    BORATED_POLY_SLAB,
    CADMIUM_SHEET,
    ShieldingEvaluator,
)
from repro.devices.model import Device
from repro.environment.scenario import FluxScenario
from repro.faults.models import Outcome


@dataclass(frozen=True)
class ReportOptions:
    """Knobs for the generated document.

    Attributes:
        fleet_size: devices deployed (checkpoint section).
        checkpoint_cost_hours: checkpoint write time.
        include_shielding: evaluate Cd / borated poly.
        mc_histories: MC budget for the shielding section.
    """

    fleet_size: int = 1000
    checkpoint_cost_hours: float = 0.2
    include_shielding: bool = True
    mc_histories: int = 1500

    def __post_init__(self) -> None:
        if self.fleet_size <= 0:
            raise ValueError(
                f"fleet size must be positive, got {self.fleet_size}"
            )
        if self.checkpoint_cost_hours <= 0.0:
            raise ValueError(
                "checkpoint cost must be positive,"
                f" got {self.checkpoint_cost_hours}"
            )


def generate_report(
    devices: Sequence[Device],
    scenario: FluxScenario,
    options: Optional[ReportOptions] = None,
) -> str:
    """Produce the Markdown reliability report.

    Args:
        devices: candidate/deployed devices.
        scenario: the deployment environment.
        options: report knobs.

    Raises:
        ValueError: on an empty device list.
    """
    if not devices:
        raise ValueError("no devices to report on")
    opts = options or ReportOptions()
    calc = FitCalculator()
    lines: List[str] = []
    add = lines.append

    add(f"# Thermal-neutron reliability report — {scenario.label}")
    add("")
    add(
        f"Fast flux {scenario.fast_flux_per_h():.2f} n/cm^2/h,"
        f" thermal flux {scenario.thermal_flux_per_h():.2f} n/cm^2/h"
        f" (thermal/fast ratio"
        f" {scenario.thermal_to_fast_ratio():.3f})."
    )
    add("")

    # ---- FIT table ----
    add("## FIT decomposition")
    add("")
    add(
        "| device | SDC FIT | SDC thermal share (90% band) |"
        " DUE FIT | DUE thermal share |"
    )
    add("|---|---|---|---|---|")
    for device in devices:
        sdc = calc.decompose(device, scenario, Outcome.SDC)
        due = calc.decompose(device, scenario, Outcome.DUE)
        band = thermal_share_with_uncertainty(
            device.sdc_ratio(), scenario.thermal_to_fast_ratio()
        )
        add(
            f"| {device.name} | {sdc.total:.1f} |"
            f" {sdc.thermal_share:.1%}"
            f" [{band.q05:.1%}, {band.q95:.1%}] |"
            f" {due.total:.1f} | {due.thermal_share:.1%} |"
        )
    add("")

    # ---- findings ----
    assessment = RiskAssessment(calc).assess(
        list(devices), [scenario]
    )
    if assessment.findings:
        add("## Findings")
        add("")
        for finding in assessment.findings:
            add(f"- **{finding.severity}**: {finding.message}")
        add("")

    # ---- shielding ----
    if opts.include_shielding:
        add("## Shielding options")
        add("")
        evaluator = ShieldingEvaluator(
            n_neutrons=opts.mc_histories
        )
        worst = max(
            devices,
            key=lambda d: calc.thermal_share(
                d, scenario, Outcome.SDC
            ),
        )
        for option in (CADMIUM_SHEET, BORATED_POLY_SLAB):
            ev = evaluator.evaluate(option, worst, scenario)
            verdict = (
                "practical"
                if ev.practical
                else "NOT practical near a hot device"
            )
            add(
                f"- {option.material.name}"
                f" ({option.thickness_cm} cm): thermal"
                f" transmission {ev.thermal_transmission:.3f},"
                f" FIT reduction {ev.fit_reduction:.1%} on"
                f" {worst.name} — {verdict}."
            )
        add("")

    # ---- checkpointing ----
    add("## Checkpoint plan")
    add("")
    planner = CheckpointPlanner(calc)
    for device in devices:
        plan = planner.plan(
            device,
            scenario,
            n_devices=opts.fleet_size,
            checkpoint_cost_hours=opts.checkpoint_cost_hours,
        )
        add(
            f"- {opts.fleet_size} x {device.name}: fleet DUE MTBF"
            f" {plan.mtbf_hours:.2f} h -> checkpoint every"
            f" {plan.interval_hours:.2f} h"
            f" (efficiency {plan.expected_efficiency:.1%})."
        )
    add("")
    add(
        "*Generated by thermal-neutron-repro (DSN 2020"
        " reproduction).*"
    )
    return "\n".join(lines)


__all__ = ["ReportOptions", "generate_report"]
