"""Process exit codes shared by every ``repro`` subcommand.

Historically each CLI module hard-coded its own bare integers
(``cli.py`` used 0/3/4, ``chaos/cli.py`` 0/1/2, ``devtools/cli.py``
0/1/2) which made the contract between the harness and its callers —
CI jobs, batch schedulers, the chaos fork children — easy to drift.
This module is now the single source of truth; the table is documented
in the README ("Exit codes").

Because :class:`ExitCode` is an :class:`enum.IntEnum`, members compare
equal to the historical integers, so ``sys.exit(ExitCode.OK)`` and
shell checks like ``test $? -eq 3`` keep working unchanged.
"""

from __future__ import annotations

import enum

__all__ = ["ExitCode"]


class ExitCode(enum.IntEnum):
    """Exit codes returned by ``python -m repro`` subcommands.

    ======================  =====  =========================================
    member                  value  meaning
    ======================  =====  =========================================
    ``OK``                  0      command succeeded
    ``FAILURE``             1      command ran but found violations/failures
    ``USAGE``               2      bad arguments or unknown configuration
    ``INCOMPLETE``          3      campaign stopped early (budget/deadline)
    ``CHECKPOINT``          4      checkpoint missing, stale, or corrupt
    ``INTERRUPTED``         5      SIGINT/SIGTERM; final checkpoint flushed
    ``DEGRADED``            6      finished, but with quarantined poison
                                   shards or engine fallbacks (see
                                   ``repro studies``)
    ======================  =====  =========================================
    """

    OK = 0
    FAILURE = 1
    USAGE = 2
    INCOMPLETE = 3
    CHECKPOINT = 4
    INTERRUPTED = 5
    DEGRADED = 6
