"""Step-change detection for detector count series.

The Tin-II experiment (Fig. 5) is a single step change in a Poisson
count-rate time series: the moment the water box goes on, the thermal
rate jumps ~24 %.  :func:`detect_step` finds the most likely change
point by maximizing the two-segment Poisson log-likelihood, and
:func:`step_magnitude` reports the rate ratio across it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class StepChange:
    """A detected rate step in a count series.

    Attributes:
        index: first sample index of the post-step segment.
        rate_before: mean counts/sample before the step.
        rate_after: mean counts/sample after the step.
        log_likelihood_gain: improvement over the no-step model —
            use as a detection confidence score.
    """

    index: int
    rate_before: float
    rate_after: float
    log_likelihood_gain: float

    @property
    def relative_change(self) -> float:
        """Fractional rate change, e.g. +0.24 for the water step."""
        if self.rate_before == 0.0:
            raise ValueError("zero pre-step rate; change undefined")
        return self.rate_after / self.rate_before - 1.0


def _poisson_loglik(counts: np.ndarray) -> float:
    """Max log-likelihood of a constant-rate Poisson segment.

    Up to count-only terms that cancel in comparisons:
    ``sum(k) * ln(mean) - n * mean``.
    """
    if counts.size == 0:
        return 0.0
    mean = counts.mean()
    if mean <= 0.0:
        return 0.0
    return float(counts.sum() * math.log(mean) - counts.size * mean)


def detect_step(
    counts: Sequence[float], min_segment: int = 3
) -> StepChange:
    """Find the most likely single step change in a count series.

    Args:
        counts: per-interval event counts.
        min_segment: minimum samples on each side of the step.

    Returns:
        The best :class:`StepChange`.

    Raises:
        ValueError: if the series is too short.
    """
    arr = np.asarray(counts, dtype=float)
    if min_segment < 1:
        raise ValueError(
            f"min_segment must be >= 1, got {min_segment}"
        )
    if arr.size < 2 * min_segment:
        raise ValueError(
            f"need >= {2 * min_segment} samples, got {arr.size}"
        )
    base = _poisson_loglik(arr)
    best_idx = min_segment
    best_gain = -math.inf
    for idx in range(min_segment, arr.size - min_segment + 1):
        gain = (
            _poisson_loglik(arr[:idx])
            + _poisson_loglik(arr[idx:])
            - base
        )
        if gain > best_gain:
            best_gain = gain
            best_idx = idx
    return StepChange(
        index=best_idx,
        rate_before=float(arr[:best_idx].mean()),
        rate_after=float(arr[best_idx:].mean()),
        log_likelihood_gain=best_gain,
    )


def step_magnitude(
    counts: Sequence[float], true_index: int
) -> float:
    """Rate ratio across a *known* change point (minus one).

    Used when the experiment log records when the water went on; the
    detector analysis then only needs the magnitude.
    """
    arr = np.asarray(counts, dtype=float)
    if not 0 < true_index < arr.size:
        raise ValueError(
            f"index {true_index} outside series of {arr.size}"
        )
    before = arr[:true_index].mean()
    after = arr[true_index:].mean()
    if before == 0.0:
        raise ValueError("zero pre-step rate; magnitude undefined")
    return after / before - 1.0
