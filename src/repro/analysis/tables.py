"""Plain-text table/report formatting for benches and examples.

Every benchmark prints the rows the paper's figures plot; this module
keeps that output aligned and consistent.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: column headers.
        rows: row cells; values are converted with ``str``.
        title: optional title line above the table.

    Raises:
        ValueError: if any row width differs from the header width.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([str(c) for c in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(
        " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    )
    lines.append(sep)
    for row in cells[1:]:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_quantity(value: float, unit: str = "", sig: int = 3) -> str:
    """Format a physical quantity compactly (``1.23e-08 cm^2``)."""
    if sig <= 0:
        raise ValueError(f"sig must be positive, got {sig}")
    if value == 0.0:
        text = "0"
    elif 1e-3 <= abs(value) < 1e4:
        text = f"{value:.{sig}g}"
    else:
        text = f"{value:.{max(sig - 1, 0)}e}"
    return f"{text} {unit}".strip()


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{fraction * 100.0:.{digits}f}%"
