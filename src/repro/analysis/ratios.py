"""Rate ratios with error propagation and bootstrap utilities.

The paper's Figure 4 is a ratio of two independently measured Poisson
rates (high-energy sigma / thermal sigma).  The CI here uses the
standard log-normal propagation: ``var(ln R) = 1/n1 + 1/n2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.analysis.poisson import _normal_quantile


@dataclass(frozen=True)
class RateRatio:
    """A ratio of two measured rates with its confidence interval.

    Attributes:
        ratio: point estimate.
        lower: CI lower bound.
        upper: CI upper bound.
        n_numerator: event count behind the numerator.
        n_denominator: event count behind the denominator.
    """

    ratio: float
    lower: float
    upper: float
    n_numerator: int
    n_denominator: int


def rate_ratio(
    count_num: int,
    exposure_num: float,
    count_den: int,
    exposure_den: float,
    confidence: float = 0.95,
) -> RateRatio:
    """Ratio of two Poisson rates with a log-normal CI.

    Args:
        count_num: numerator event count.
        exposure_num: numerator exposure (fluence).
        count_den: denominator event count.
        exposure_den: denominator exposure (fluence).
        confidence: CI level.

    Raises:
        ValueError: if either count is zero (ratio undefined) or the
            exposures are not positive.
    """
    if count_num < 0 or count_den < 0:
        raise ValueError("counts must be >= 0")
    if exposure_num <= 0.0 or exposure_den <= 0.0:
        raise ValueError("exposures must be positive")
    if count_den == 0 or count_num == 0:
        raise ValueError(
            "cannot form a ratio CI with zero counts; collect more"
            " fluence"
        )
    rate_n = count_num / exposure_num
    rate_d = count_den / exposure_den
    ratio = rate_n / rate_d
    z = _normal_quantile(1.0 - (1.0 - confidence) / 2.0)
    sd_log = math.sqrt(1.0 / count_num + 1.0 / count_den)
    return RateRatio(
        ratio=ratio,
        lower=ratio * math.exp(-z * sd_log),
        upper=ratio * math.exp(z * sd_log),
        n_numerator=count_num,
        n_denominator=count_den,
    )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile bootstrap CI of an arbitrary statistic.

    Args:
        samples: the observed sample.
        statistic: function of a 1-D array.
        n_resamples: bootstrap resamples.
        confidence: CI level.
        seed: RNG seed.

    Returns:
        ``(point, lower, upper)``.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if n_resamples <= 0:
        raise ValueError(
            f"n_resamples must be positive, got {n_resamples}"
        )
    rng = np.random.default_rng(seed)
    point = float(statistic(arr))
    stats = np.empty(n_resamples)
    for i in range(n_resamples):
        stats[i] = statistic(rng.choice(arr, size=arr.size))
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)
