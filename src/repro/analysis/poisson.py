"""Poisson counting statistics.

Beam experiments report cross sections as ``errors / fluence`` with
Poisson 95 % confidence intervals; at ROTAX the SDC counts are small,
so the *exact* (Garwood, chi-square-based) interval matters — the
normal approximation undercovers badly below ~20 counts.  Both are
provided; the exact one is the default everywhere.
"""

from __future__ import annotations

import math
from typing import Tuple


def _chi2_quantile(p: float, k: float) -> float:
    """Quantile of the chi-square distribution with ``k`` d.o.f.

    Wilson-Hilferty approximation refined by bisection on the
    regularized gamma CDF — good to ~1e-10 without SciPy.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if k <= 0.0:
        raise ValueError(f"dof must be positive, got {k}")

    def cdf(x: float) -> float:
        return _regularized_gamma_p(k / 2.0, x / 2.0)

    # Wilson-Hilferty starting point.
    z = _normal_quantile(p)
    start = k * (1.0 - 2.0 / (9.0 * k) + z * math.sqrt(
        2.0 / (9.0 * k)
    )) ** 3
    lo, hi = 0.0, max(start * 2.0, k + 20.0 * math.sqrt(k) + 20.0)
    while cdf(hi) < p:
        hi *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _normal_quantile(p: float) -> float:
    """Standard normal quantile (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00]
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q
                 + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q
                  + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r
             + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
        + 1.0
    )


def _regularized_gamma_p(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x)."""
    if x < 0.0 or s <= 0.0:
        raise ValueError("invalid gamma arguments")
    if x == 0.0:
        return 0.0
    if x < s + 1.0:
        # Series expansion.
        term = 1.0 / s
        total = term
        n = s
        for _ in range(500):
            n += 1.0
            term *= x / n
            total += term
            if abs(term) < abs(total) * 1e-16:
                break
        return total * math.exp(-x + s * math.log(x) - math.lgamma(s))
    # Continued fraction for Q, then P = 1 - Q.
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-16:
            break
    q = h * math.exp(-x + s * math.log(x) - math.lgamma(s))
    return 1.0 - q


def poisson_interval(
    count: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact (Garwood) confidence interval for a Poisson mean.

    Args:
        count: observed event count (>= 0).
        confidence: two-sided confidence level.

    Returns:
        ``(lower, upper)`` bounds on the mean count.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    alpha = 1.0 - confidence
    if count == 0:
        lower = 0.0
    else:
        lower = 0.5 * _chi2_quantile(alpha / 2.0, 2.0 * count)
    upper = 0.5 * _chi2_quantile(
        1.0 - alpha / 2.0, 2.0 * (count + 1)
    )
    return lower, upper


def poisson_interval_normal(
    count: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation interval, ``count +- z * sqrt(count)``.

    Exposed for the ablation comparing exact vs normal CIs at the low
    counts typical of ROTAX SDC data (experiment E2 error bars).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    z = _normal_quantile(1.0 - (1.0 - confidence) / 2.0)
    half = z * math.sqrt(count)
    return max(count - half, 0.0), count + half


def cross_section(
    count: int, fluence_per_cm2: float, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Cross section and CI from a count and a fluence.

    Returns:
        ``(sigma, lower, upper)`` in cm^2.
    """
    if fluence_per_cm2 <= 0.0:
        raise ValueError(
            f"fluence must be positive, got {fluence_per_cm2}"
        )
    lo, hi = poisson_interval(count, confidence)
    return (
        count / fluence_per_cm2,
        lo / fluence_per_cm2,
        hi / fluence_per_cm2,
    )
