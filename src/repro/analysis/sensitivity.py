"""Uncertainty propagation for the headline conclusions.

The FIT shares rest on calibrated inputs — the device sigma ratios
(beam statistics) and the thermal/fast flux ratio (environment model).
This module Monte-Carlo-propagates log-normal uncertainties on those
inputs through any scalar conclusion and reports the resulting band,
so statements like "39 % of the APU DUE FIT is thermal" carry error
bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class UncertainParameter:
    """A positive input known up to a relative (log-normal) sigma.

    Attributes:
        name: key passed to the model function.
        nominal: central value (> 0).
        relative_sigma: one-sigma relative uncertainty.
    """

    name: str
    nominal: float
    relative_sigma: float

    def __post_init__(self) -> None:
        if self.nominal <= 0.0:
            raise ValueError(
                f"{self.name}: nominal must be positive,"
                f" got {self.nominal}"
            )
        if self.relative_sigma < 0.0:
            raise ValueError(
                f"{self.name}: relative sigma must be >= 0,"
                f" got {self.relative_sigma}"
            )

    def sample(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Log-normal draws centred (in median) on the nominal."""
        if self.relative_sigma == 0.0:
            return np.full(n, self.nominal)
        sigma_log = np.sqrt(
            np.log1p(self.relative_sigma ** 2)
        )
        # Median-centred log-normal: the nominal is the median, so
        # multiplicative errors up and down are symmetric.
        return self.nominal * np.exp(
            rng.normal(0.0, sigma_log, size=n)
        )


@dataclass(frozen=True)
class PropagationResult:
    """Distribution summary of a propagated conclusion.

    Attributes:
        nominal: value at the nominal inputs.
        mean / std: moments over the samples.
        q05 / q95: the 90 % band.
    """

    nominal: float
    mean: float
    std: float
    q05: float
    q95: float

    @property
    def band_width(self) -> float:
        """Width of the 90 % band."""
        return self.q95 - self.q05

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the 90 % band?"""
        return self.q05 <= value <= self.q95


def propagate(
    model: Callable[[Mapping[str, float]], float],
    parameters: Sequence[UncertainParameter],
    n_samples: int = 2000,
    seed: int = 0,
) -> PropagationResult:
    """Monte Carlo propagation of input uncertainty through a model.

    Args:
        model: scalar function of a ``{name: value}`` mapping.
        parameters: the uncertain inputs.
        n_samples: Monte Carlo sample count.
        seed: RNG seed.

    Raises:
        ValueError: on empty parameters or non-positive samples.
    """
    if not parameters:
        raise ValueError("no parameters to propagate")
    if n_samples <= 0:
        raise ValueError(
            f"n_samples must be positive, got {n_samples}"
        )
    rng = np.random.default_rng(seed)
    draws: Dict[str, np.ndarray] = {
        p.name: p.sample(rng, n_samples) for p in parameters
    }
    nominal = model({p.name: p.nominal for p in parameters})
    values = np.empty(n_samples)
    for i in range(n_samples):
        values[i] = model(
            {name: arr[i] for name, arr in draws.items()}
        )
    q05, q95 = np.quantile(values, [0.05, 0.95])
    return PropagationResult(
        nominal=float(nominal),
        mean=float(values.mean()),
        std=float(values.std()),
        q05=float(q05),
        q95=float(q95),
    )


def thermal_share_with_uncertainty(
    sigma_ratio: float,
    flux_ratio: float,
    sigma_ratio_rel_sigma: float = 0.10,
    flux_ratio_rel_sigma: float = 0.20,
    n_samples: int = 2000,
    seed: int = 0,
) -> PropagationResult:
    """Error band on the thermal FIT share ``r / (r + R)``.

    Args:
        sigma_ratio: device HE/thermal sigma ratio ``R``.
        flux_ratio: environment thermal/fast flux ratio ``r``.
        sigma_ratio_rel_sigma: beam-statistics uncertainty on ``R``.
        flux_ratio_rel_sigma: environment-model uncertainty on ``r``
            (the flux ratio is the softer number, hence the default
            20 %).
        n_samples: Monte Carlo samples.
        seed: RNG seed.
    """
    params = [
        UncertainParameter(
            "sigma_ratio", sigma_ratio, sigma_ratio_rel_sigma
        ),
        UncertainParameter(
            "flux_ratio", flux_ratio, flux_ratio_rel_sigma
        ),
    ]

    def share(values: Mapping[str, float]) -> float:
        r = values["flux_ratio"]
        big_r = values["sigma_ratio"]
        return r / (r + big_r)

    return propagate(share, params, n_samples=n_samples, seed=seed)


__all__ = [
    "PropagationResult",
    "UncertainParameter",
    "propagate",
    "thermal_share_with_uncertainty",
]
