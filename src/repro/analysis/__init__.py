"""Statistics and reporting: Poisson CIs, rate ratios, changepoints."""

from repro.analysis.poisson import (
    cross_section,
    poisson_interval,
    poisson_interval_normal,
)
from repro.analysis.ratios import RateRatio, bootstrap_ci, rate_ratio
from repro.analysis.changepoint import (
    StepChange,
    detect_step,
    step_magnitude,
)
from repro.analysis.sensitivity import (
    PropagationResult,
    UncertainParameter,
    propagate,
    thermal_share_with_uncertainty,
)
from repro.analysis.tables import (
    format_percent,
    format_quantity,
    format_table,
)

__all__ = [
    "cross_section",
    "poisson_interval",
    "poisson_interval_normal",
    "RateRatio",
    "bootstrap_ci",
    "rate_ratio",
    "StepChange",
    "detect_step",
    "step_magnitude",
    "PropagationResult",
    "UncertainParameter",
    "propagate",
    "thermal_share_with_uncertainty",
    "format_percent",
    "format_quantity",
    "format_table",
]
