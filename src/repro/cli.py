"""Command-line interface: the paper's analyses from a shell.

Examples::

    python -m repro assess --device K20 --site leadville --room --rain
    python -m repro campaign --seed 7
    python -m repro top10
    python -m repro ddr --generation 4 --hours 2
    python -m repro water
    python -m repro shield --device K20
    python -m repro checkpoint --device K20 --site lanl --nodes 4000
    python -m repro run --plan heterogeneous --checkpoint ck.json
    python -m repro run --plan heterogeneous --checkpoint ck.json --resume
    python -m repro lint --statistics
    python -m repro chaos --trials 2 --json chaos.json
    python -m repro serve --port 7920 --cache-dir /tmp/fit-cache
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis import format_table
from repro.beam import IrradiationCampaign, chipir, rotax
from repro.core import (
    BORATED_POLY_SLAB,
    CADMIUM_SHEET,
    RiskAssessment,
    ShieldingEvaluator,
    project_top10,
    top10_table,
)
from repro.core.checkpoint import CheckpointPlanner
from repro.detector import water_step_experiment
from repro.devices import DEVICES, get_device
from repro.environment import (
    ISIS,
    LEADVILLE,
    LOS_ALAMOS,
    NEW_YORK,
    Site,
    WeatherCondition,
    datacenter_scenario,
    outdoor_scenario,
)
from repro.exitcodes import ExitCode
from repro.faults.models import Outcome
from repro.memory import (
    CorrectLoopTester,
    DDR_SENSITIVITIES,
    ErrorCategory,
)
from repro.spectra import ROTAX_THERMAL_FLUX

#: Named sites accepted by ``--site``.
SITES = {
    "nyc": NEW_YORK,
    "leadville": LEADVILLE,
    "lanl": LOS_ALAMOS,
    "isis": ISIS,
}


def _site(args: argparse.Namespace) -> Site:
    if args.altitude is not None:
        return Site("custom", args.altitude, args.latitude)
    return SITES[args.site]


def _scenario(args: argparse.Namespace):
    site = _site(args)
    weather = (
        WeatherCondition.RAIN if args.rain else WeatherCondition.SUNNY
    )
    if args.room:
        scenario = datacenter_scenario(
            site, liquid_cooled=not args.air_cooled, weather=weather
        )
    else:
        scenario = outdoor_scenario(site, weather=weather)
    return scenario


def _add_site_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--site", choices=sorted(SITES), default="nyc",
        help="named deployment site",
    )
    parser.add_argument(
        "--altitude", type=float, default=None,
        help="custom altitude in metres (overrides --site)",
    )
    parser.add_argument(
        "--latitude", type=float, default=45.0,
        help="geomagnetic latitude for a custom site",
    )
    parser.add_argument(
        "--room", action="store_true",
        help="machine-room scenario (concrete + cooling water)",
    )
    parser.add_argument(
        "--air-cooled", action="store_true",
        help="machine room without liquid cooling",
    )
    parser.add_argument(
        "--rain", action="store_true", help="thunderstorm weather"
    )


def cmd_assess(args: argparse.Namespace) -> int:
    """FIT decomposition for devices in a scenario."""
    devices = [get_device(name) for name in args.device] or list(
        DEVICES.values()
    )
    report = RiskAssessment().assess(devices, [_scenario(args)])
    print(report.to_table())
    for finding in report.findings:
        print(f"[{finding.severity}] {finding.message}")
    return ExitCode.OK


def cmd_campaign(args: argparse.Namespace) -> int:
    """Virtual ChipIR + ROTAX ratio campaign (Figure 4)."""
    campaign = IrradiationCampaign(seed=args.seed)
    chip, rot = chipir(), rotax()
    for device in DEVICES.values():
        for code in device.supported_codes:
            campaign.expose_counting(
                chip, device, code, args.chipir_hours * 3600.0
            )
            campaign.expose_counting(
                rot, device, code, args.rotax_hours * 3600.0
            )
    if args.save:
        from repro.beam.logbook import CampaignLogbook

        CampaignLogbook(
            result=campaign.result,
            seed=args.seed,
            notes="virtual ChipIR+ROTAX campaign via CLI",
        ).save(args.save)
        print(f"logbook written to {args.save}")
    rows = []
    for name in campaign.result.device_names():
        sdc = campaign.result.beam_ratio(name, Outcome.SDC)
        try:
            due = campaign.result.beam_ratio(name, Outcome.DUE)
            due_cell = f"{due.ratio:.2f} [{due.lower:.2f}, {due.upper:.2f}]"
        except ValueError:
            due_cell = "(too few DUEs)"
        rows.append(
            [
                name,
                f"{sdc.ratio:.2f} [{sdc.lower:.2f}, {sdc.upper:.2f}]",
                due_cell,
            ]
        )
    print(
        format_table(
            ["device", "SDC HE/thermal ratio", "DUE HE/thermal ratio"],
            rows,
            title="Virtual ChipIR + ROTAX campaign (Figure 4)",
        )
    )
    return ExitCode.OK


def cmd_top10(args: argparse.Namespace) -> int:
    """Top-10 supercomputer DDR FIT projection."""
    del args
    print(top10_table(project_top10()))
    return ExitCode.OK


def cmd_ddr(args: argparse.Namespace) -> int:
    """DDR correct-loop beam experiment."""
    sensitivity = DDR_SENSITIVITIES[args.generation]
    capacity = 32.0 if args.generation == 3 else 64.0
    tester = CorrectLoopTester(sensitivity, capacity, seed=args.seed)
    result = tester.run(
        ROTAX_THERMAL_FLUX, duration_s=args.hours * 3600.0
    )
    rows = [
        [cat.value, result.count(cat)] for cat in ErrorCategory
    ]
    print(
        format_table(
            ["category", "errors"],
            rows,
            title=(
                f"DDR{args.generation} correct-loop:"
                f" {len(result.errors)} errors,"
                f" sigma/GBit"
                f" {result.total_cell_cross_section_per_gbit():.2e}"
                f" cm^2, dominant direction"
                f" {result.dominant_direction_fraction():.0%}"
            ),
        )
    )
    return ExitCode.OK


def cmd_water(args: argparse.Namespace) -> int:
    """Tin-II water-box detector experiment (Figure 5)."""
    result = water_step_experiment(seed=args.seed)
    print(
        "Tin-II water experiment: step detected at sample"
        f" {result.step.index}"
        f" (water on at hour {result.true_water_start_h:.0f}),"
        f" thermal rate {result.measured_enhancement:+.1%}"
        " (paper: +24%)"
    )
    return ExitCode.OK


def cmd_shield(args: argparse.Namespace) -> int:
    """Shielding trade-off analysis."""
    if getattr(args, "surrogate_root", ""):
        from repro.transport import api as transport_api

        transport_api.configure(args.surrogate_root)
    evaluator = ShieldingEvaluator(
        n_neutrons=args.histories, engine=args.engine
    )
    device = get_device(args.device[0] if args.device else "K20")
    scenario = _scenario(args)
    rows = []
    for option in (CADMIUM_SHEET, BORATED_POLY_SLAB):
        ev = evaluator.evaluate(option, device, scenario)
        rows.append(
            [
                option.material.name,
                f"{option.thickness_cm:.2f}",
                f"{ev.thermal_transmission:.4f}",
                f"{ev.fit_reduction:.1%}",
                "yes" if ev.practical else "NO",
            ]
        )
    print(
        format_table(
            ["shield", "cm", "thermal transmission",
             "FIT reduction", "practical"],
            rows,
            title=f"Shielding options for {device.name}",
        )
    )
    return ExitCode.OK


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Checkpoint-interval planning from DUE FIT."""
    planner = CheckpointPlanner()
    device = get_device(args.device[0] if args.device else "K20")
    scenario = _scenario(args)
    plan = planner.plan(
        device,
        scenario,
        n_devices=args.nodes,
        checkpoint_cost_hours=args.cost_minutes / 60.0,
    )
    print(
        f"{args.nodes} x {device.name} in {scenario.label}:"
        f" fleet DUE MTBF {plan.mtbf_hours:.2f} h,"
        f" checkpoint every {plan.interval_hours:.2f} h,"
        f" efficiency {plan.expected_efficiency:.1%}"
    )
    rainy = scenario.with_weather(WeatherCondition.RAIN)
    penalty = planner.weather_penalty(
        device, scenario, rainy, args.nodes, args.cost_minutes / 60.0
    )
    print(
        "Running the fair-weather plan through a thunderstorm costs"
        f" {penalty:.2%} efficiency vs re-planning."
    )
    return ExitCode.OK


def cmd_report(args: argparse.Namespace) -> int:
    """Full Markdown reliability report."""
    from repro.core.report import ReportOptions, generate_report

    devices = [get_device(name) for name in args.device] or list(
        DEVICES.values()
    )
    text = generate_report(
        devices,
        _scenario(args),
        ReportOptions(
            fleet_size=args.nodes,
            checkpoint_cost_hours=args.cost_minutes / 60.0,
            mc_histories=args.histories,
        ),
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return ExitCode.OK


def cmd_avf(args: argparse.Namespace) -> int:
    """Per-array vulnerability factors of a workload."""
    from repro.workloads import create_workload
    from repro.workloads.metrics import (
        measure_vulnerability,
        most_vulnerable_surface,
        workload_avf,
    )

    workload = create_workload(args.code)
    vulns = measure_vulnerability(
        workload, samples_per_array=args.samples, seed=args.seed
    )
    rows = [
        [
            v.stage, v.array, v.bits,
            f"{v.sdc_fraction:.2f}", f"{v.due_fraction:.2f}",
        ]
        for v in sorted(
            vulns, key=lambda v: v.weighted_avf, reverse=True
        )[: args.top]
    ]
    print(
        format_table(
            ["stage", "array", "bits", "SDC AVF", "DUE AVF"],
            rows,
            title=f"Most vulnerable surfaces of {args.code}",
        )
    )
    sdc, due = workload_avf(vulns)
    hot = most_vulnerable_surface(vulns)
    print(
        f"workload AVF: SDC {sdc:.2f}, DUE {due:.2f};"
        f" hottest surface: {hot.array!r} at stage {hot.stage!r}"
    )
    return ExitCode.OK


#: Backwards-compatible aliases for the centralized exit codes (see
#: :class:`repro.exitcodes.ExitCode` for the documented table).
EXIT_INCOMPLETE = ExitCode.INCOMPLETE
EXIT_CHECKPOINT = ExitCode.CHECKPOINT


def cmd_run(args: argparse.Namespace) -> int:
    """Supervised campaign with checkpoint/resume and budgets."""
    import signal

    from repro.beam.logbook import CampaignLogbook
    from repro.obs import core as obs_core
    from repro.obs.cli import export_metrics, observer_from_args
    from repro.runtime.budget import Budget
    from repro.runtime.errors import (
        CheckpointError,
        ConfigurationError,
    )
    from repro.runtime.supervisor import (
        PLAN_FACTORIES,
        CampaignRunner,
    )

    try:
        observer = observer_from_args(args)
    except ConfigurationError as exc:
        print(f"usage error: {exc}")
        return ExitCode.USAGE
    plan = PLAN_FACTORIES[args.plan]()
    budget = Budget(
        wall_clock_s=args.deadline_s,
        max_events=args.max_events,
    )
    # Graceful interrupt: SIGINT/SIGTERM raise a flag the runner
    # polls between steps, so the final checkpoint still flushes and
    # the process exits with a distinct, scriptable code instead of
    # dying mid-write.
    interrupt_flag = {"hit": False}

    def _on_signal(signum: int, frame) -> None:
        del signum, frame
        interrupt_flag["hit"] = True

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(
                signum, _on_signal
            )
        except (ValueError, OSError):
            # Not the main thread (embedded use): run uninterrupted.
            break
    runner = CampaignRunner(
        plan,
        seed=args.seed,
        budget=budget,
        checkpoint_path=args.checkpoint or None,
        checkpoint_every=args.checkpoint_every,
        interrupt=lambda: interrupt_flag["hit"],
    )
    try:
        if observer is not None:
            with obs_core.observing(observer):
                outcome = runner.run(
                    resume=args.resume, max_steps=args.max_steps
                )
            if args.metrics:
                export_metrics(observer, args.metrics)
                print(f"metrics written to {args.metrics}")
            if args.trace:
                print(f"trace written to {args.trace}")
        else:
            outcome = runner.run(
                resume=args.resume, max_steps=args.max_steps
            )
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}")
        print(
            "the checkpoint was not used; re-run without --resume"
            " to start over, or restore a valid checkpoint"
        )
        return ExitCode.CHECKPOINT
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
    status = "completed" if outcome.completed else "INCOMPLETE"
    if outcome.interrupted:
        status = "INTERRUPTED"
    print(
        f"plan {args.plan!r} {status}:"
        f" {outcome.steps_completed}/{outcome.steps_total} steps,"
        f" {outcome.events_used} simulated strikes,"
        f" {outcome.isolation_count()} isolated,"
        f" {outcome.degradation_count()} degraded"
    )
    for event in outcome.events:
        print(f"  [{event.kind}] {event.label}: {event.message}")
    if args.save:
        CampaignLogbook(
            result=outcome.result,
            seed=args.seed,
            notes=f"supervised {args.plan} plan via CLI",
            metadata={"status": status},
        ).save(args.save)
        print(f"logbook written to {args.save}")
    if args.report:
        from pathlib import Path

        Path(args.report).write_text(outcome.to_markdown())
        print(f"report written to {args.report}")
    if not outcome.completed and args.checkpoint:
        print(
            f"resume with: python -m repro run --plan {args.plan}"
            f" --seed {args.seed} --checkpoint {args.checkpoint}"
            " --resume"
        )
    if outcome.interrupted:
        return ExitCode.INTERRUPTED
    return (
        ExitCode.OK if outcome.completed else ExitCode.INCOMPLETE
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Long-running FIT query service (see repro.service)."""
    from repro.service.cli import run_serve

    return run_serve(args)


def cmd_studies(args: argparse.Namespace) -> int:
    """Durable sharded studies (see repro.studies)."""
    from repro.studies.cli import run_studies

    return run_studies(args)


def cmd_surrogate(args: argparse.Namespace) -> int:
    """Surrogate artifact tooling (see repro.transport.surrogate)."""
    from repro.transport.surrogate.cli import run_surrogate

    return run_surrogate(args)


def cmd_obs(args: argparse.Namespace) -> int:
    """Observability tooling (see repro.obs)."""
    from repro.obs.cli import run_obs

    return run_obs(args)


def cmd_lint(args: argparse.Namespace) -> int:
    """Static-analysis pass over the repo (see repro.devtools)."""
    from repro.devtools.cli import run_lint

    return run_lint(args)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection sweep over the runtime (see repro.chaos)."""
    from repro.chaos.cli import run_chaos

    return run_chaos(args)


def cmd_validate(args: argparse.Namespace) -> int:
    """Recompute every paper anchor and report PASS/FAIL."""
    from repro.core.validation import (
        all_passed,
        validate_reproduction,
        validation_table,
    )

    checks = validate_reproduction(seed=args.seed)
    print(validation_table(checks))
    if all_passed(checks):
        print("All paper anchors reproduced.")
        return ExitCode.OK
    print("Some anchors FAILED — see the table above.")
    return ExitCode.FAILURE


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Thermal-neutron reliability analyses (DSN 2020"
            " reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "assess", help="FIT decomposition for devices in a scenario"
    )
    p.add_argument(
        "--device", action="append", default=[],
        help="device name (repeatable; default: all)",
    )
    _add_site_args(p)
    p.set_defaults(func=cmd_assess)

    p = sub.add_parser(
        "campaign", help="virtual ChipIR + ROTAX ratio campaign"
    )
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--chipir-hours", type=float, default=0.5)
    p.add_argument("--rotax-hours", type=float, default=4.0)
    p.add_argument(
        "--save", default="",
        help="write a JSON campaign logbook to this path",
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "top10", help="Top-10 supercomputer DDR FIT projection"
    )
    p.set_defaults(func=cmd_top10)

    p = sub.add_parser("ddr", help="DDR correct-loop experiment")
    p.add_argument("--generation", type=int, choices=(3, 4), default=4)
    p.add_argument("--hours", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=2020)
    p.set_defaults(func=cmd_ddr)

    p = sub.add_parser("water", help="Tin-II water-box experiment")
    p.add_argument("--seed", type=int, default=2019)
    p.set_defaults(func=cmd_water)

    p = sub.add_parser("shield", help="shielding trade-off analysis")
    p.add_argument("--device", action="append", default=[])
    p.add_argument("--histories", type=int, default=2000)
    p.add_argument(
        "--engine",
        choices=["auto", "batch", "scalar", "deterministic",
                 "surrogate"],
        default="batch",
        help="transport engine policy (deterministic = noise-free"
        " multigroup solve, --histories inert; auto/surrogate"
        " serve from certified surfaces, see --surrogate-root)",
    )
    p.add_argument(
        "--surrogate-root",
        default="",
        help="certified surrogate artifact directory (from"
        " 'repro surrogate build'); used by engine=auto/surrogate",
    )
    _add_site_args(p)
    p.set_defaults(func=cmd_shield)

    p = sub.add_parser(
        "avf", help="per-array vulnerability factors of a workload"
    )
    p.add_argument("--code", default="LUD")
    p.add_argument("--samples", type=int, default=25)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--seed", type=int, default=2020)
    p.set_defaults(func=cmd_avf)

    p = sub.add_parser(
        "run",
        help=(
            "supervised campaign: checkpoint/resume, deadlines,"
            " event budgets, crash isolation"
        ),
    )
    p.add_argument(
        "--plan", choices=("figure4", "heterogeneous"),
        default="heterogeneous",
        help="built-in exposure plan to execute",
    )
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument(
        "--checkpoint", default="",
        help="JSON checkpoint path (enables resume)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="continue from the checkpoint instead of starting over",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="write a checkpoint after this many steps",
    )
    p.add_argument(
        "--max-steps", type=int, default=None,
        help="process at most this many steps, then stop",
    )
    p.add_argument(
        "--max-events", type=int, default=None,
        help="simulated-strike budget (degrades when exhausted)",
    )
    p.add_argument(
        "--deadline-s", type=float, default=None,
        help="wall-clock budget in seconds",
    )
    p.add_argument(
        "--save", default="",
        help="write a JSON campaign logbook to this path",
    )
    p.add_argument(
        "--report", default="",
        help="write the Markdown run report to this path",
    )
    from repro.obs.cli import add_obs_arguments, add_observer_arguments

    add_observer_arguments(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "serve",
        help=(
            "fault-tolerant FIT query service: NDJSON protocol,"
            " result cache, coalescing, admission control"
        ),
    )
    from repro.service.cli import add_serve_arguments

    add_serve_arguments(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "studies",
        help=(
            "durable sharded studies: crash-tolerant FIT sweeps"
            " with a write-ahead ledger and poison-shard quarantine"
        ),
    )
    from repro.studies.cli import add_studies_arguments

    add_studies_arguments(p)
    p.set_defaults(func=cmd_studies)

    p = sub.add_parser(
        "surrogate",
        help=(
            "certified transport response surfaces: build and"
            " inspect content-addressed surrogate artifacts"
        ),
    )
    from repro.transport.surrogate.cli import add_surrogate_arguments

    add_surrogate_arguments(p)
    p.set_defaults(func=cmd_surrogate)

    p = sub.add_parser(
        "obs",
        help=(
            "observability tooling: summarize a --trace file into"
            " a run report"
        ),
    )
    add_obs_arguments(p)
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "lint",
        help=(
            "run the repro static-analysis pass (determinism,"
            " unit suffixes, API hygiene, mutability)"
        ),
    )
    from repro.devtools.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "chaos",
        help=(
            "deterministic fault injection: prove the runtime's"
            " recovery invariants across the (site, action) matrix"
        ),
    )
    from repro.chaos.cli import add_chaos_arguments

    add_chaos_arguments(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "validate",
        help="recompute every paper anchor and report PASS/FAIL",
    )
    p.add_argument("--seed", type=int, default=2020)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "report", help="full Markdown reliability report"
    )
    p.add_argument("--device", action="append", default=[])
    p.add_argument("--nodes", type=int, default=1000)
    p.add_argument("--cost-minutes", type=float, default=10.0)
    p.add_argument("--histories", type=int, default=1500)
    p.add_argument(
        "--output", default="", help="write to a file instead of stdout"
    )
    _add_site_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "checkpoint", help="checkpoint-interval planning"
    )
    p.add_argument("--device", action="append", default=[])
    p.add_argument("--nodes", type=int, default=1000)
    p.add_argument("--cost-minutes", type=float, default=10.0)
    _add_site_args(p)
    p.set_defaults(func=cmd_checkpoint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
