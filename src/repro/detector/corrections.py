"""Barometric pressure correction for neutron count rates.

Every neutron-monitor analysis corrects counts for atmospheric
pressure: more air overhead attenuates the cascade, so the raw rate
anti-correlates with the barometer.  Long Tin-II series need the same
correction before a step as small as +24 % can be attributed to the
water box rather than a passing weather front:

    N_corrected = N_raw * exp(beta * (P - P_ref))

with ``beta`` the barometric coefficient (~0.7 %/hPa for the nucleonic
component).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

#: Standard barometric coefficient for neutrons, 1/hPa.
BAROMETRIC_COEFFICIENT_PER_HPA: float = 0.0072

#: Reference station pressure, hPa.
REFERENCE_PRESSURE_HPA: float = 1013.25


def pressure_correction_factor(
    pressure_hpa: float,
    reference_hpa: float = REFERENCE_PRESSURE_HPA,
    beta_per_hpa: float = BAROMETRIC_COEFFICIENT_PER_HPA,
) -> float:
    """Multiplier bringing a raw count to reference pressure.

    Above-reference pressure suppresses the raw rate, so the factor
    exceeds one there.

    Raises:
        ValueError: for non-positive pressures.
    """
    if pressure_hpa <= 0.0 or reference_hpa <= 0.0:
        raise ValueError("pressures must be positive")
    return float(
        np.exp(beta_per_hpa * (pressure_hpa - reference_hpa))
    )


def correct_series(
    counts: Sequence[float],
    pressures_hpa: Sequence[float],
    reference_hpa: float = REFERENCE_PRESSURE_HPA,
    beta_per_hpa: float = BAROMETRIC_COEFFICIENT_PER_HPA,
) -> List[float]:
    """Pressure-correct a count series.

    Args:
        counts: raw per-interval counts.
        pressures_hpa: station pressure per interval.
        reference_hpa: pressure to correct to.
        beta_per_hpa: barometric coefficient.

    Raises:
        ValueError: on length mismatch.
    """
    if len(counts) != len(pressures_hpa):
        raise ValueError(
            f"{len(counts)} counts vs {len(pressures_hpa)} pressures"
        )
    return [
        c
        * pressure_correction_factor(
            p, reference_hpa, beta_per_hpa
        )
        for c, p in zip(counts, pressures_hpa)
    ]


def estimate_beta(
    counts: Sequence[float], pressures_hpa: Sequence[float]
) -> float:
    """Fit the barometric coefficient from a series.

    Ordinary least squares of ``ln(N)`` on ``-(P - mean(P))``; needs
    real pressure variation in the series.

    Raises:
        ValueError: on mismatched/short series or zero counts.
    """
    counts_arr = np.asarray(counts, dtype=float)
    pressures = np.asarray(pressures_hpa, dtype=float)
    if counts_arr.shape != pressures.shape:
        raise ValueError("series lengths differ")
    if counts_arr.size < 3:
        raise ValueError("need at least 3 samples")
    if np.any(counts_arr <= 0.0):
        raise ValueError("counts must be positive to take logs")
    dp = pressures - pressures.mean()
    if np.allclose(dp, 0.0):
        raise ValueError("no pressure variation; beta unidentifiable")
    log_n = np.log(counts_arr)
    slope = float(np.polyfit(dp, log_n, 1)[0])
    return -slope


__all__ = [
    "BAROMETRIC_COEFFICIENT_PER_HPA",
    "REFERENCE_PRESSURE_HPA",
    "correct_series",
    "estimate_beta",
    "pressure_correction_factor",
]
