"""The water-box experiment (paper Fig. 5, "turkeypan").

Several days of background counting in a LANL-like building, then a
box with 2 inches of water is placed over the detector and the thermal
count rate jumps ~24 %.  :func:`water_step_experiment` simulates the
series and analyses it with the changepoint detector; the MC-transport
cross-check (:func:`predicted_water_enhancement`) shows the +24 % is
physically reasonable moderation albedo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.changepoint import StepChange, detect_step
from repro.detector.tin2 import CountSample, TinII
from repro.environment.modifiers import WATER_COOLING
from repro.environment.scenario import FluxScenario
from repro.environment.sites import LOS_ALAMOS
from repro.transport.api import TransportQuery, answer
from repro.transport.materials import WATER


@dataclass(frozen=True)
class WaterStepResult:
    """Outcome of the simulated Fig. 5 experiment.

    Attributes:
        samples: full count time series.
        step: detected change point in the thermal series.
        measured_enhancement: fractional thermal-rate increase across
            the detected step (paper: ~0.24).
        true_water_start_h: when the water actually went on.
    """

    samples: List[CountSample]
    step: StepChange
    measured_enhancement: float
    true_water_start_h: float


def water_step_experiment(
    background_hours: float = 96.0,
    water_hours: float = 48.0,
    interval_h: float = 2.0,
    seed: int = 2019,
) -> WaterStepResult:
    """Simulate the Tin-II water experiment and analyse the series.

    Args:
        background_hours: counting time before the water goes on
            (the paper collected "several days").
        water_hours: counting time with the water box in place.
        interval_h: counting interval.
        seed: RNG seed.
    """
    if background_hours <= 0.0 or water_hours <= 0.0:
        raise ValueError("phase durations must be positive")
    detector = TinII(rng=np.random.default_rng(seed))
    building = FluxScenario(
        site=LOS_ALAMOS, name="LANL building (background)"
    )
    with_water = building.with_materials(WATER_COOLING)
    samples = detector.record_series(
        [(building, background_hours), (with_water, water_hours)],
        interval_h=interval_h,
    )
    thermal = TinII.thermal_series(samples)
    step = detect_step(thermal)
    return WaterStepResult(
        samples=samples,
        step=step,
        measured_enhancement=step.relative_change,
        true_water_start_h=background_hours,
    )


def predicted_water_enhancement(
    thickness_cm: float = 5.08,
    n_neutrons: int = 8000,
    seed: int = 2019,
    engine: str = "batch",
) -> float:
    """MC-transport prediction of the water albedo enhancement.

    Transports fast neutrons into a water slab of the experiment's
    thickness and reports the thermal albedo — the fraction reflected
    back as thermals, which adds to the local thermal population.
    The geometry factor (solid angle of the box over the detector)
    pushes the pure-albedo number toward the measured +24 %.
    """
    served = answer(
        TransportQuery(
            mode="albedo",
            material=WATER,
            thickness_cm=thickness_cm,
            source_energy_ev=1.0e6,
            n_neutrons=n_neutrons,
            seed=seed,
            engine=engine,
        )
    )
    return served.result.thermal_albedo()
