"""The Tin-II two-tube thermal-neutron detector.

One bare tube counts everything; one cadmium-wrapped tube counts
everything *except* thermal neutrons.  The difference, divided by the
thermal efficiency, is the thermal flux — the measurement behind the
paper's Figure 5 water experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.detector.tubes import CadmiumShield, He3Tube
from repro.environment.scenario import FluxScenario


@dataclass(frozen=True)
class CountSample:
    """One counting interval.

    Attributes:
        start_h: interval start time, hours from experiment start.
        duration_h: interval length.
        bare_counts: counts in the bare tube.
        shielded_counts: counts in the Cd-wrapped tube.
    """

    start_h: float
    duration_h: float
    bare_counts: int
    shielded_counts: int

    @property
    def thermal_counts(self) -> int:
        """Cadmium-difference counts (may dip negative from noise)."""
        return self.bare_counts - self.shielded_counts


@dataclass
class TinII:
    """The detector pair.

    Attributes:
        tube: the tube design (both tubes are identical — the paper
            cross-calibrated them for 18 h).
        shield: the cadmium wrap of the shielded tube.
        rng: generator for Poisson counting noise.
    """

    tube: He3Tube = field(default_factory=He3Tube)
    shield: CadmiumShield = field(default_factory=CadmiumShield)
    #: Counting noise defaults to seed 0 so two default-constructed
    #: detector pairs report identical measurements.
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    # ------------------------------------------------------------------

    def expected_rates_per_h(
        self, scenario: FluxScenario
    ) -> Tuple[float, float]:
        """Expected (bare, shielded) count rates in a scenario.

        The bare tube sees thermal + epithermal-and-background; the
        shielded tube sees the same minus the thermal band (times the
        Cd transmission).
        """
        thermal_rate = self.tube.thermal_count_rate_per_h(
            scenario.thermal_flux_per_h()
        )
        # Epithermal/fast neutrons fire 3He far less (1/v), modelled
        # as a fixed small fraction of the fast flux, identical in
        # both tubes.
        epi_rate = (
            0.02
            * scenario.fast_flux_per_h()
            * self.tube.frontal_area_cm2
        )
        common = epi_rate + self.tube.background_rate_per_h
        bare = thermal_rate + common
        shielded = (
            thermal_rate * self.shield.thermal_transmission()
            + common * self.shield.epithermal_transmission()
        )
        return bare, shielded

    def measure(
        self,
        scenario: FluxScenario,
        duration_h: float,
        start_h: float = 0.0,
    ) -> CountSample:
        """One Poisson-noisy counting interval."""
        if duration_h <= 0.0:
            raise ValueError(
                f"duration must be positive, got {duration_h}"
            )
        bare_rate, shielded_rate = self.expected_rates_per_h(scenario)
        return CountSample(
            start_h=start_h,
            duration_h=duration_h,
            bare_counts=int(
                self.rng.poisson(bare_rate * duration_h)
            ),
            shielded_counts=int(
                self.rng.poisson(shielded_rate * duration_h)
            ),
        )

    def record_series(
        self,
        phases: Sequence[Tuple[FluxScenario, float]],
        interval_h: float = 1.0,
    ) -> List[CountSample]:
        """A multi-phase time series (e.g. background, then water).

        Args:
            phases: ``(scenario, phase duration in hours)`` pairs.
            interval_h: counting interval.

        Returns:
            Chronological :class:`CountSample` list.
        """
        if interval_h <= 0.0:
            raise ValueError(
                f"interval must be positive, got {interval_h}"
            )
        samples: List[CountSample] = []
        clock = 0.0
        for scenario, phase_h in phases:
            if phase_h <= 0.0:
                raise ValueError(
                    f"phase duration must be positive, got {phase_h}"
                )
            n = int(round(phase_h / interval_h))
            for _ in range(max(n, 1)):
                samples.append(
                    self.measure(scenario, interval_h, start_h=clock)
                )
                clock += interval_h
        return samples

    # ------------------------------------------------------------------

    @staticmethod
    def thermal_series(
        samples: Sequence[CountSample],
    ) -> np.ndarray:
        """Cadmium-difference (thermal) counts per interval."""
        return np.asarray(
            [s.thermal_counts for s in samples], dtype=float
        )

    def thermal_flux_from_counts(
        self, sample: CountSample
    ) -> float:
        """Invert one sample to a thermal flux, n/cm^2/h."""
        eff = (
            self.tube.frontal_area_cm2
            * self.tube.thermal_efficiency()
        )
        if sample.duration_h <= 0.0:
            raise ValueError("sample has no duration")
        return sample.thermal_counts / (eff * sample.duration_h)
