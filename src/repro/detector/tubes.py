"""He-3 proportional counter tubes and the cadmium difference method.

Tin-II is two identical cylindrical 3He detectors; one is wrapped in
cadmium.  Cadmium blocks thermal neutrons (113Cd's 20.6 kb capture)
while passing everything else, so

    thermal rate = (bare counts - shielded counts) / efficiency.

The tube model keeps just enough physics to make that subtraction
honest: a thermal detection efficiency from the 3He(n,p) cross section
and gas column density, plus an energy-independent background response
(gammas, betas, fast neutrons) common to both tubes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.physics.isotopes import isotope
from repro.physics.units import BARN_CM2

#: Loschmidt-like conversion: gas atoms/cm^3 per atmosphere at 20 C.
_ATOMS_PER_CM3_PER_ATM = 2.5e19


@dataclass(frozen=True)
class He3Tube:
    """One cylindrical 3He proportional counter.

    Attributes:
        diameter_cm: tube diameter (neutron path length scale).
        length_cm: active length.
        pressure_atm: 3He fill pressure.
        background_rate_per_h: non-neutron response (gammas, betas,
            electronics), counts/hour.
    """

    diameter_cm: float = 2.54
    length_cm: float = 30.0
    pressure_atm: float = 4.0
    background_rate_per_h: float = 30.0

    def __post_init__(self) -> None:
        if min(self.diameter_cm, self.length_cm, self.pressure_atm) <= 0:
            raise ValueError("tube geometry/fill must be positive")
        if self.background_rate_per_h < 0.0:
            raise ValueError("background rate must be >= 0")

    @property
    def frontal_area_cm2(self) -> float:
        """Projected area facing the ambient flux."""
        return self.diameter_cm * self.length_cm

    def thermal_efficiency(self) -> float:
        """Detection probability for a thermal neutron crossing the tube.

        ``1 - exp(-n * sigma * d)`` with the 3He(n,p) thermal cross
        section over the mean chord (the diameter).
        """
        n_density = self.pressure_atm * _ATOMS_PER_CM3_PER_ATM
        sigma_cm2 = (
            isotope("He3").sigma_capture_thermal_b * BARN_CM2
        )
        return 1.0 - math.exp(
            -n_density * sigma_cm2 * self.diameter_cm
        )

    def thermal_count_rate_per_h(
        self, thermal_flux_per_cm2_h: float
    ) -> float:
        """Expected thermal-neutron counts/hour in a given flux."""
        if thermal_flux_per_cm2_h < 0.0:
            raise ValueError(
                "flux must be >= 0,"
                f" got {thermal_flux_per_cm2_h}"
            )
        return (
            thermal_flux_per_cm2_h
            * self.frontal_area_cm2
            * self.thermal_efficiency()
        )


@dataclass(frozen=True)
class CadmiumShield:
    """A cadmium wrap around a tube.

    Attributes:
        thickness_cm: wrap thickness; 1 mm of Cd transmits ~nothing in
            the thermal band.
    """

    thickness_cm: float = 0.1

    def __post_init__(self) -> None:
        if self.thickness_cm <= 0.0:
            raise ValueError(
                f"thickness must be positive, got {self.thickness_cm}"
            )

    def thermal_transmission(self) -> float:
        """Fraction of thermal neutrons passing the wrap.

        Exponential attenuation with the 113Cd macroscopic thermal
        cross section in natural cadmium metal.
        """
        cd113 = isotope("Cd113")
        # Natural Cd number density ~4.6e22 atoms/cm^3.
        n_density = 4.6e22 * cd113.abundance
        sigma_cm2 = cd113.sigma_capture_thermal_b * BARN_CM2
        return math.exp(
            -n_density * sigma_cm2 * self.thickness_cm
        )

    def epithermal_transmission(self) -> float:
        """Fraction of above-cutoff neutrons passing (essentially 1)."""
        return 0.98
