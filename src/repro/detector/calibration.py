"""Tube cross-calibration (the paper's 18-hour procedure).

Before wrapping one tube in cadmium, the paper counted with both bare
tubes side by side for 18 hours "to ensure that they have the same
detection efficiency".  Real tubes never match exactly; the procedure
estimates the efficiency ratio and the analysis divides it out.  This
module simulates that step and provides the corrected
cadmium-difference estimator, plus the error you make by skipping
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detector.tubes import He3Tube
from repro.environment.scenario import FluxScenario


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a side-by-side calibration run.

    Attributes:
        efficiency_ratio: estimated (tube B / tube A) efficiency.
        ratio_stderr: standard error of the estimate.
        counts_a / counts_b: raw counts.
        duration_h: counting time.
    """

    efficiency_ratio: float
    ratio_stderr: float
    counts_a: int
    counts_b: int
    duration_h: float


def calibrate_tube_pair(
    tube_a: He3Tube,
    tube_b: He3Tube,
    scenario: FluxScenario,
    duration_h: float = 18.0,
    rng: np.random.Generator | None = None,
    true_ratio_bias: float = 1.0,
) -> CalibrationResult:
    """Count side by side and estimate the efficiency ratio.

    Args:
        tube_a: reference tube (stays bare).
        tube_b: tube that will be wrapped in cadmium.
        scenario: ambient environment during calibration.
        duration_h: counting time (paper: 18 h).
        rng: generator for Poisson noise; defaults to the fixed-seed
            ``default_rng(0)`` so repeated calls without an explicit
            generator reproduce the same counts.
        true_ratio_bias: multiplicative efficiency mismatch of tube B
            relative to its design value (1.0 = perfectly matched;
            real pairs are a few percent off).

    Raises:
        ValueError: on a non-positive duration/bias or empty counts.
    """
    if duration_h <= 0.0:
        raise ValueError(
            f"duration must be positive, got {duration_h}"
        )
    if true_ratio_bias <= 0.0:
        raise ValueError(
            f"bias must be positive, got {true_ratio_bias}"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    flux = scenario.thermal_flux_per_h()
    rate_a = (
        tube_a.thermal_count_rate_per_h(flux)
        + tube_a.background_rate_per_h
    )
    rate_b = (
        tube_b.thermal_count_rate_per_h(flux) * true_ratio_bias
        + tube_b.background_rate_per_h
    )
    counts_a = int(rng.poisson(rate_a * duration_h))
    counts_b = int(rng.poisson(rate_b * duration_h))
    if counts_a == 0 or counts_b == 0:
        raise ValueError(
            "calibration counted zero events; extend the run"
        )
    ratio = counts_b / counts_a
    stderr = ratio * np.sqrt(1.0 / counts_a + 1.0 / counts_b)
    return CalibrationResult(
        efficiency_ratio=ratio,
        ratio_stderr=float(stderr),
        counts_a=counts_a,
        counts_b=counts_b,
        duration_h=duration_h,
    )


def corrected_thermal_counts(
    bare_counts: float,
    shielded_counts: float,
    calibration: CalibrationResult,
) -> float:
    """Cadmium-difference with the calibration divided out.

    ``thermal = bare - shielded / efficiency_ratio``: the shielded
    tube's counts are first mapped back to the bare tube's scale.
    """
    if calibration.efficiency_ratio <= 0.0:
        raise ValueError("calibration ratio must be positive")
    return bare_counts - shielded_counts / calibration.efficiency_ratio


def uncalibrated_bias(
    true_ratio: float, thermal_fraction: float
) -> float:
    """Relative error of skipping calibration.

    With a tube mismatch ``true_ratio`` (B/A) and a non-thermal count
    fraction ``1 - thermal_fraction`` common to both tubes, the naive
    difference mis-subtracts by ``(true_ratio - 1) * (1 -
    thermal_fraction) / thermal_fraction`` of the thermal signal.
    """
    if not 0.0 < thermal_fraction <= 1.0:
        raise ValueError(
            "thermal fraction must be in (0, 1],"
            f" got {thermal_fraction}"
        )
    return (true_ratio - 1.0) * (
        1.0 - thermal_fraction
    ) / thermal_fraction


__all__ = [
    "CalibrationResult",
    "calibrate_tube_pair",
    "corrected_thermal_counts",
    "uncalibrated_bias",
]
