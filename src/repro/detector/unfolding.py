"""Few-band spectrum unfolding with moderated detectors.

A single bare+Cd pair measures only the thermal band.  To measure the
*spectrum* — the paper's point that realistic settings must be
measured, not assumed — health physicists wrap the counter in
polyethylene moderators of several thicknesses (Bonner spheres): thin
moderators respond to thermals, thick ones thermalize and detect fast
neutrons.  Given the response of each configuration to each energy
band, the band fluxes follow from non-negative least squares.

The response matrix here is *computed from our own Monte Carlo*, so
the unfolding closes the loop between the transport and detector
subsystems.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.detector.tubes import He3Tube
from repro.transport.materials import POLYETHYLENE
from repro.transport.montecarlo import Layer, SlabGeometry, SlabTransport

#: Representative energy per unfolding band, eV.
BAND_ENERGIES: Dict[str, float] = {
    "thermal": 0.0253,
    "epithermal": 1.0e3,
    "fast": 1.0e6,
}

#: Band order used in all matrices/vectors.
BANDS: Tuple[str, ...] = ("thermal", "epithermal", "fast")


@dataclass(frozen=True)
class UnfoldingResult:
    """Band fluxes recovered from moderated-counter measurements.

    Attributes:
        fluxes: recovered per-band fluxes (same units as the counts
            divided by the response normalization).
        residual: least-squares residual norm.
        bands: band labels, matching ``fluxes``.
    """

    fluxes: np.ndarray
    residual: float
    bands: Tuple[str, ...] = BANDS

    def flux(self, band: str) -> float:
        """Recovered flux of one band."""
        try:
            return float(self.fluxes[self.bands.index(band)])
        except ValueError:
            raise KeyError(
                f"unknown band {band!r}; valid: {self.bands}"
            ) from None


def response_matrix(
    moderator_thicknesses_cm: Sequence[float],
    n_neutrons: int = 3000,
    seed: int = 2020,
    tube: He3Tube | None = None,
) -> np.ndarray:
    """Response of each moderated configuration to each band.

    Entry ``(i, j)``: expected counts per unit incident band-``j``
    fluence for configuration ``i``.  Thickness 0 means the bare
    tube.  Responses are Monte Carlo transport through the moderator
    followed by the tube's thermal efficiency (the 3He response to
    the emerging thermal population; the tube's small epithermal
    response is included for the bare case).

    Raises:
        ValueError: on empty/negative thicknesses.
    """
    if not list(moderator_thicknesses_cm):
        raise ValueError("need at least one configuration")
    tube = tube or He3Tube()
    efficiency = tube.thermal_efficiency()
    rows: List[List[float]] = []
    for thickness in moderator_thicknesses_cm:
        if thickness < 0.0:
            raise ValueError(
                f"thickness must be >= 0, got {thickness}"
            )
        row: List[float] = []
        for band in BANDS:
            energy = BAND_ENERGIES[band]
            if thickness == 0.0:
                # Bare tube: full thermal response, small 1/v tail
                # response above.
                if band == "thermal":
                    row.append(efficiency)
                elif band == "epithermal":
                    row.append(0.02 * efficiency)
                else:
                    row.append(0.002 * efficiency)
                continue
            geometry = SlabGeometry(
                [Layer(POLYETHYLENE, float(thickness))]
            )
            # Per-configuration stream key derived with sha256, not
            # hash(): builtin hash of a str is salted per process
            # (PYTHONHASHSEED), which would unseed the responses.
            key = int.from_bytes(
                hashlib.sha256(
                    f"{round(thickness, 6)}:{band}".encode("utf-8")
                ).digest()[:4],
                "big",
            )
            transport = SlabTransport(
                geometry,
                rng=np.random.default_rng(
                    np.random.SeedSequence([seed, key])
                ),
            )
            result = transport.run(
                n_neutrons, source_energy_ev=energy
            )
            row.append(
                result.thermal_transmission_fraction() * efficiency
            )
        rows.append(row)
    return np.asarray(rows)


def _nnls(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, float]:
    """Non-negative least squares; scipy if present, else projected
    gradient (small problems only)."""
    try:
        from scipy.optimize import nnls as scipy_nnls

        x, residual = scipy_nnls(a, b)
        return x, float(residual)
    except ImportError:  # pragma: no cover - scipy is installed here
        x = np.maximum(np.linalg.lstsq(a, b, rcond=None)[0], 0.0)
        for _ in range(500):
            grad = a.T @ (a @ x - b)
            x = np.maximum(x - 1e-3 * grad, 0.0)
        return x, float(np.linalg.norm(a @ x - b))


def unfold(
    counts_per_fluence: Sequence[float],
    matrix: np.ndarray,
) -> UnfoldingResult:
    """Recover band fluxes from moderated-counter responses.

    Args:
        counts_per_fluence: measured count rate of each
            configuration, normalized per unit incident fluence
            scale (the same scale the matrix columns use).
        matrix: response matrix from :func:`response_matrix`.

    Raises:
        ValueError: on shape mismatch or an underdetermined system.
    """
    counts = np.asarray(counts_per_fluence, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] != len(BANDS):
        raise ValueError(
            f"matrix must be (n_configs, {len(BANDS)}),"
            f" got {matrix.shape}"
        )
    if counts.shape != (matrix.shape[0],):
        raise ValueError(
            f"need {matrix.shape[0]} measurements,"
            f" got {counts.shape}"
        )
    if matrix.shape[0] < len(BANDS):
        raise ValueError(
            "underdetermined: need at least as many"
            " configurations as bands"
        )
    fluxes, residual = _nnls(matrix, counts)
    return UnfoldingResult(fluxes=fluxes, residual=residual)


def simulate_measurement(
    true_fluxes: Dict[str, float],
    matrix: np.ndarray,
    rng: np.random.Generator | None = None,
    counting_scale: float = 1000.0,
) -> np.ndarray:
    """Synthesize noisy counts for a known spectrum.

    Args:
        true_fluxes: per-band fluxes.
        matrix: response matrix.
        rng: if given, Poisson noise is applied at the
            ``counting_scale`` (counts = scale x response).
        counting_scale: expected-count normalization for the noise.

    Raises:
        ValueError: on a band mismatch.
    """
    if set(true_fluxes) != set(BANDS):
        raise ValueError(
            f"fluxes must cover exactly {BANDS},"
            f" got {sorted(true_fluxes)}"
        )
    phi = np.asarray([true_fluxes[b] for b in BANDS])
    expected = matrix @ phi
    if rng is None:
        return expected
    noisy = rng.poisson(
        np.maximum(expected * counting_scale, 0.0)
    )
    return noisy / counting_scale


__all__ = [
    "BANDS",
    "UnfoldingResult",
    "response_matrix",
    "simulate_measurement",
    "unfold",
]
