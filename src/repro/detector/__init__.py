"""The Tin-II thermal-neutron detector and the water-box experiment."""

from repro.detector.tubes import CadmiumShield, He3Tube
from repro.detector.tin2 import CountSample, TinII
from repro.detector.calibration import (
    CalibrationResult,
    calibrate_tube_pair,
    corrected_thermal_counts,
    uncalibrated_bias,
)
from repro.detector.corrections import (
    correct_series,
    estimate_beta,
    pressure_correction_factor,
)
from repro.detector.unfolding import (
    BANDS,
    UnfoldingResult,
    response_matrix,
    simulate_measurement,
    unfold,
)
from repro.detector.experiment import (
    WaterStepResult,
    predicted_water_enhancement,
    water_step_experiment,
)

__all__ = [
    "CadmiumShield",
    "He3Tube",
    "CountSample",
    "TinII",
    "CalibrationResult",
    "calibrate_tube_pair",
    "corrected_thermal_counts",
    "uncalibrated_bias",
    "correct_series",
    "estimate_beta",
    "pressure_correction_factor",
    "BANDS",
    "UnfoldingResult",
    "response_matrix",
    "simulate_measurement",
    "unfold",
    "WaterStepResult",
    "predicted_water_enhancement",
    "water_step_experiment",
]
