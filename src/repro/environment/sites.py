"""Reference sites: the paper's two FIT locations plus the Top-10 list.

The paper computes FIT shares at New York City (the JEDEC sea-level
reference) and Leadville, CO (10 151 ft, the classic high-altitude
stress case), and projects DDR FIT rates for the ten fastest machines of
the Top500 list of its era.  Altitudes and geomagnetic latitudes here
are approximate but representative; memory inventories are
order-of-magnitude machine-room figures used only for the relative
comparison in experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.environment.flux import fast_flux_per_h, thermal_flux_per_h


@dataclass(frozen=True)
class Site:
    """A geographic location hosting computing equipment.

    Attributes:
        name: label.
        altitude_m: altitude above sea level, metres.
        geomagnetic_latitude_deg: approximate geomagnetic latitude.
    """

    name: str
    altitude_m: float
    geomagnetic_latitude_deg: float = 51.0

    def fast_flux_per_h(self) -> float:
        """Outdoor fast (>10 MeV) flux, n/cm^2/h."""
        return fast_flux_per_h(
            self.altitude_m, self.geomagnetic_latitude_deg
        )

    def thermal_flux_per_h(self) -> float:
        """Outdoor thermal (<0.5 eV) flux, n/cm^2/h."""
        return thermal_flux_per_h(
            self.altitude_m, self.geomagnetic_latitude_deg
        )


#: The JEDEC reference location.
NEW_YORK = Site("New York City", altitude_m=0.0,
                geomagnetic_latitude_deg=51.0)

#: The paper's high-altitude comparison point (10,151 ft).
LEADVILLE = Site("Leadville, CO", altitude_m=3094.0,
                 geomagnetic_latitude_deg=48.0)

#: Los Alamos National Laboratory (Trinity's home, Tin-II deployment).
LOS_ALAMOS = Site("Los Alamos, NM", altitude_m=2231.0,
                  geomagnetic_latitude_deg=44.0)

#: ISIS / Rutherford Appleton Laboratory (the beam experiments).
ISIS = Site("ISIS, UK", altitude_m=130.0, geomagnetic_latitude_deg=53.0)


@dataclass(frozen=True)
class Supercomputer:
    """A Top500 machine for the DDR FIT projection (experiment E7).

    Attributes:
        name: machine name.
        site: hosting location.
        memory_tib: total main-memory capacity, TiB.
        ddr_generation: 3 or 4.
        liquid_cooled: whether the machine uses liquid cooling (adds
            the water modifier in the projection).
    """

    name: str
    site: Site
    memory_tib: float
    ddr_generation: int
    liquid_cooled: bool = True

    def __post_init__(self) -> None:
        if self.ddr_generation not in (3, 4):
            raise ValueError(
                f"only DDR3/DDR4 are modelled, got {self.ddr_generation}"
            )
        if self.memory_tib <= 0.0:
            raise ValueError(
                f"memory must be positive, got {self.memory_tib}"
            )


#: The ten fastest machines of the paper's era (Top500, June 2019),
#: with approximate altitudes and machine-room memory inventories.
TOP10_SUPERCOMPUTERS: Tuple[Supercomputer, ...] = (
    Supercomputer(
        "Summit",
        Site("Oak Ridge, TN", 260.0, 46.0), 2800.0, 4, True,
    ),
    Supercomputer(
        "Sierra",
        Site("Livermore, CA", 180.0, 43.0), 1382.0, 4, True,
    ),
    Supercomputer(
        "Sunway TaihuLight",
        Site("Wuxi, China", 5.0, 22.0), 1280.0, 3, True,
    ),
    Supercomputer(
        "Tianhe-2A",
        Site("Guangzhou, China", 20.0, 13.0), 1375.0, 3, False,
    ),
    Supercomputer(
        "Frontera",
        Site("Austin, TX", 150.0, 39.0), 1500.0, 4, True,
    ),
    Supercomputer(
        "Piz Daint",
        Site("Lugano, Switzerland", 273.0, 47.0), 365.0, 4, True,
    ),
    Supercomputer(
        "Trinity",
        Site("Los Alamos, NM", 2231.0, 44.0), 2070.0, 4, True,
    ),
    Supercomputer(
        "ABCI",
        Site("Kashiwa, Japan", 10.0, 27.0), 417.0, 4, True,
    ),
    Supercomputer(
        "SuperMUC-NG",
        Site("Garching, Germany", 480.0, 49.0), 719.0, 4, True,
    ),
    Supercomputer(
        "Lassen",
        Site("Livermore, CA", 180.0, 43.0), 253.0, 4, True,
    ),
)

#: Convenience lookup by machine name.
TOP10_BY_NAME: Dict[str, Supercomputer] = {
    m.name: m for m in TOP10_SUPERCOMPUTERS
}
