"""Solar modulation of the atmospheric neutron flux.

Section II: "Under normal solar conditions, the fast neutron flux is
almost constant for a given latitude, longitude, and altitude."  The
caveat is *normal*: the galactic-cosmic-ray intensity anti-correlates
with the ~11-year solar cycle (ground-level neutron monitors swing
roughly ±10-15 %), and a coronal mass ejection produces a *Forbush
decrease* — a sudden few-percent-to-20 % drop recovering over days.

This module provides those multipliers so campaigns and FIT estimates
can be placed at a moment of the cycle, and a time-series generator
for detector simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

#: Solar cycle length, years.
SOLAR_CYCLE_YEARS: float = 11.0

#: Peak-to-peak fractional swing of the ground-level fast flux over
#: the cycle (neutron-monitor amplitude).
CYCLE_AMPLITUDE: float = 0.15


def solar_modulation_factor(years_since_minimum: float) -> float:
    """Fast-flux multiplier at a point of the solar cycle.

    1 + amplitude/2 at solar minimum (GCR maximum), 1 - amplitude/2
    at solar maximum, sinusoidal in between.

    Raises:
        ValueError: for a negative phase.
    """
    if years_since_minimum < 0.0:
        raise ValueError(
            "phase must be >= 0,"
            f" got {years_since_minimum}"
        )
    phase = (
        2.0 * math.pi * years_since_minimum / SOLAR_CYCLE_YEARS
    )
    return 1.0 + (CYCLE_AMPLITUDE / 2.0) * math.cos(phase)


@dataclass(frozen=True)
class ForbushDecrease:
    """A Forbush decrease: sudden GCR drop, exponential recovery.

    Attributes:
        onset_h: event start, hours from series start.
        magnitude: fractional flux drop at onset (0.2 = 20 %).
        recovery_h: e-folding recovery time, hours (~2-4 days).
    """

    onset_h: float
    magnitude: float
    recovery_h: float = 72.0

    def __post_init__(self) -> None:
        if self.onset_h < 0.0:
            raise ValueError(
                f"onset must be >= 0, got {self.onset_h}"
            )
        if not 0.0 < self.magnitude < 1.0:
            raise ValueError(
                f"magnitude must be in (0, 1), got {self.magnitude}"
            )
        if self.recovery_h <= 0.0:
            raise ValueError(
                f"recovery must be positive, got {self.recovery_h}"
            )

    def factor(self, time_h: float) -> float:
        """Flux multiplier at ``time_h``."""
        if time_h < self.onset_h:
            return 1.0
        elapsed = time_h - self.onset_h
        return 1.0 - self.magnitude * math.exp(
            -elapsed / self.recovery_h
        )


def flux_series(
    duration_h: float,
    interval_h: float,
    years_since_minimum: float = 0.0,
    forbush_events: List[ForbushDecrease] | None = None,
) -> List[float]:
    """Fast-flux multiplier time series.

    Args:
        duration_h: series length.
        interval_h: sample spacing.
        years_since_minimum: solar-cycle phase (fixed over the
            series — the cycle is slow).
        forbush_events: transient decreases to overlay.

    Returns:
        One multiplier per interval.

    Raises:
        ValueError: on non-positive durations.
    """
    if duration_h <= 0.0 or interval_h <= 0.0:
        raise ValueError("durations must be positive")
    events = forbush_events or []
    base = solar_modulation_factor(years_since_minimum)
    out = []
    t = 0.0
    while t < duration_h:
        factor = base
        for event in events:
            factor *= event.factor(t)
        out.append(factor)
        t += interval_h
    return out


__all__ = [
    "CYCLE_AMPLITUDE",
    "SOLAR_CYCLE_YEARS",
    "ForbushDecrease",
    "flux_series",
    "solar_modulation_factor",
]
