"""Natural neutron environment: location fluxes, materials, weather.

The fast (>10 MeV) flux is a property of altitude/latitude alone; the
thermal flux is local and is assembled as
``outdoor thermal flux x material enhancements x weather multiplier``
by :class:`~repro.environment.scenario.FluxScenario`.
"""

from repro.environment.flux import (
    NYC_FAST_FLUX_PER_H,
    SEA_LEVEL_THERMAL_RATIO,
    altitude_acceleration,
    atmospheric_depth_g_cm2,
    fast_flux_per_h,
    latitude_factor,
    outdoor_thermal_ratio,
    thermal_flux_per_h,
)
from repro.environment.modifiers import (
    ASPHALT_ROAD,
    CONCRETE_FLOOR,
    FUEL_TANK,
    HUMAN_BODY,
    MaterialModifier,
    RAISED_FLOOR,
    WATER_COOLING,
    WeatherCondition,
    combined_fast_factor,
    combined_thermal_factor,
    describe,
)
from repro.environment.sites import (
    ISIS,
    LEADVILLE,
    LOS_ALAMOS,
    NEW_YORK,
    Site,
    Supercomputer,
    TOP10_BY_NAME,
    TOP10_SUPERCOMPUTERS,
)
from repro.environment.avionics import (
    FlightSegment,
    cruise_acceleration,
    flight_level_to_m,
    flux_at_altitude_per_h,
    route_fluence_per_cm2,
    thermal_flux_aboard_per_h,
)
from repro.environment.solar import (
    ForbushDecrease,
    flux_series,
    solar_modulation_factor,
)
from repro.environment.scenario import (
    FluxScenario,
    datacenter_scenario,
    expected_thermal_ratio,
    outdoor_scenario,
)

__all__ = [
    "NYC_FAST_FLUX_PER_H",
    "SEA_LEVEL_THERMAL_RATIO",
    "altitude_acceleration",
    "atmospheric_depth_g_cm2",
    "fast_flux_per_h",
    "latitude_factor",
    "outdoor_thermal_ratio",
    "thermal_flux_per_h",
    "ASPHALT_ROAD",
    "CONCRETE_FLOOR",
    "FUEL_TANK",
    "HUMAN_BODY",
    "MaterialModifier",
    "RAISED_FLOOR",
    "WATER_COOLING",
    "WeatherCondition",
    "combined_fast_factor",
    "combined_thermal_factor",
    "describe",
    "ISIS",
    "LEADVILLE",
    "LOS_ALAMOS",
    "NEW_YORK",
    "Site",
    "Supercomputer",
    "TOP10_BY_NAME",
    "TOP10_SUPERCOMPUTERS",
    "FlightSegment",
    "cruise_acceleration",
    "flight_level_to_m",
    "flux_at_altitude_per_h",
    "route_fluence_per_cm2",
    "thermal_flux_aboard_per_h",
    "ForbushDecrease",
    "flux_series",
    "solar_modulation_factor",
    "FluxScenario",
    "datacenter_scenario",
    "expected_thermal_ratio",
    "outdoor_scenario",
]
