"""Flux scenarios: site + surroundings -> the fluxes a device sees.

A :class:`FluxScenario` is the environment half of a FIT calculation:
it yields the fast and thermal fluxes (n/cm^2/h) at the device after
applying material and weather modifiers to the site's outdoor fluxes.
It can also synthesize a full :class:`~repro.spectra.spectrum.Spectrum`
for transport or folding studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.environment.flux import outdoor_thermal_ratio
from repro.environment.modifiers import (
    CONCRETE_FLOOR,
    MaterialModifier,
    WATER_COOLING,
    WeatherCondition,
    combined_fast_factor,
    combined_thermal_factor,
)
from repro.environment.sites import NEW_YORK, Site
from repro.physics.units import per_hour_to_per_second
from repro.spectra.analytic import atmospheric_spectrum
from repro.spectra.spectrum import Spectrum


@dataclass(frozen=True)
class FluxScenario:
    """The neutron environment of a deployed device.

    Attributes:
        site: geographic location.
        materials: nearby moderator bodies (concrete, water...).
        weather: weather condition (thermal multiplier).
        name: optional label; defaults to a descriptive composite.
    """

    site: Site = NEW_YORK
    materials: Tuple[MaterialModifier, ...] = field(default_factory=tuple)
    weather: WeatherCondition = WeatherCondition.SUNNY
    name: str = ""

    @property
    def label(self) -> str:
        """Report label: explicit name or a generated description."""
        if self.name:
            return self.name
        mats = "+".join(m.name for m in self.materials) or "open field"
        return f"{self.site.name} ({mats}, {self.weather.name.lower()})"

    def fast_flux_per_h(self) -> float:
        """Fast (>10 MeV) flux at the device, n/cm^2/h."""
        return self.site.fast_flux_per_h() * combined_fast_factor(
            self.materials
        )

    def thermal_flux_per_h(self) -> float:
        """Thermal (<0.5 eV) flux at the device, n/cm^2/h."""
        return self.site.thermal_flux_per_h() * combined_thermal_factor(
            self.materials, self.weather
        )

    def thermal_to_fast_ratio(self) -> float:
        """Thermal/fast flux ratio at the device."""
        fast = self.fast_flux_per_h()
        if fast == 0.0:
            raise ValueError("fast flux is zero; ratio undefined")
        return self.thermal_flux_per_h() / fast

    def thermal_factor(self) -> float:
        """Total enhancement applied to the outdoor thermal flux."""
        return combined_thermal_factor(self.materials, self.weather)

    def with_materials(
        self, *materials: MaterialModifier
    ) -> "FluxScenario":
        """A copy with additional material modifiers."""
        return replace(
            self, materials=self.materials + tuple(materials), name=""
        )

    def with_weather(self, weather: WeatherCondition) -> "FluxScenario":
        """A copy under different weather."""
        return replace(self, weather=weather, name="")

    def spectrum(self) -> Spectrum:
        """Full environmental spectrum (n/cm^2/s) for transport/folding."""
        return atmospheric_spectrum(
            flux_above_10mev=per_hour_to_per_second(
                self.fast_flux_per_h()
            ),
            thermal_fraction_flux=per_hour_to_per_second(
                self.thermal_flux_per_h()
            ),
            name=self.label,
        )


def datacenter_scenario(
    site: Site,
    liquid_cooled: bool = True,
    weather: WeatherCondition = WeatherCondition.SUNNY,
) -> FluxScenario:
    """The paper's machine-room scenario: concrete plus cooling water.

    This is the +44 % adjustment used for the FIT graphs (concrete
    +20 % and water +24 %, additively).
    """
    materials: Tuple[MaterialModifier, ...] = (CONCRETE_FLOOR,)
    if liquid_cooled:
        materials = materials + (WATER_COOLING,)
    return FluxScenario(
        site=site,
        materials=materials,
        weather=weather,
        name=f"{site.name} machine room"
        + (" (liquid cooled)" if liquid_cooled else ""),
    )


def outdoor_scenario(
    site: Site, weather: WeatherCondition = WeatherCondition.SUNNY
) -> FluxScenario:
    """Bare outdoor environment at a site."""
    return FluxScenario(site=site, weather=weather)


def expected_thermal_ratio(scenario: FluxScenario) -> float:
    """Analytic thermal/fast ratio for cross-checking scenarios.

    Equals ``outdoor_thermal_ratio(site) * thermal_factor /
    fast_factor`` — exposed for tests and calibration audits.
    """
    return (
        outdoor_thermal_ratio(scenario.site.altitude_m)
        * combined_thermal_factor(scenario.materials, scenario.weather)
        / combined_fast_factor(scenario.materials)
    )
