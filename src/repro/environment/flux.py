"""Natural neutron flux model: altitude, latitude and the thermal ratio.

The fast (>10 MeV) flux follows the standard JESD89A-style barometric
scaling anchored to the New York City reference value.  The thermal
(<0.5 eV) flux is modelled as a *ratio* to the fast flux: unlike the
fast flux it depends strongly on surroundings, so the outdoor ratio
computed here is only the starting point that
:mod:`repro.environment.modifiers` then adjusts for materials/weather.

Calibration (documented in DESIGN.md Section 5): the outdoor
thermal-to-fast ratio is chosen so that, after the paper's +44 %
concrete+water indoor adjustment, the thermal FIT shares published for
Xeon Phi / K20 / APU at NYC and Leadville are reproduced:
``ratio(NYC) = 0.445`` and ``ratio(Leadville) = 0.755`` indoors.
"""

from __future__ import annotations

import math

#: Reference fast (>10 MeV) flux at NYC sea level, n/cm^2/h.
NYC_FAST_FLUX_PER_H: float = 13.0

#: Sea-level atmospheric depth, g/cm^2.
SEA_LEVEL_DEPTH_G_CM2: float = 1033.0

#: Atmospheric scale height used to convert altitude to depth, m.
ATMOSPHERE_SCALE_HEIGHT_M: float = 8400.0

#: Neutron attenuation length in air, g/cm^2.  Tuned (within the
#: published 120-148 range) so Leadville, CO (3109 m) comes out at the
#: ~12.9x acceleration the FIT literature uses for that site.
NEUTRON_ATTENUATION_LENGTH_G_CM2: float = 125.0

#: Outdoor thermal/fast flux ratio at sea level (calibrated, see module
#: docstring): 0.445 indoor / 1.44 materials adjustment.
SEA_LEVEL_THERMAL_RATIO: float = 0.309

#: Linear growth of the outdoor thermal/fast ratio with altitude, 1/m.
#: Calibrated so the indoor Leadville ratio is 0.755.
THERMAL_RATIO_ALTITUDE_SLOPE_PER_M: float = 2.24e-4


def atmospheric_depth_g_cm2(altitude_m: float) -> float:
    """Atmospheric depth above ``altitude_m``, g/cm^2 (isothermal)."""
    if altitude_m < -500.0:
        raise ValueError(f"altitude implausibly low: {altitude_m} m")
    return SEA_LEVEL_DEPTH_G_CM2 * math.exp(
        -altitude_m / ATMOSPHERE_SCALE_HEIGHT_M
    )


def altitude_acceleration(altitude_m: float) -> float:
    """Fast-flux multiplier relative to sea level at ``altitude_m``.

    ``exp((d0 - d(h)) / L)`` with ``L`` the neutron attenuation length.
    Leadville (3109 m) gives ~12.9; aircraft altitudes give hundreds.
    """
    depth = atmospheric_depth_g_cm2(altitude_m)
    return math.exp(
        (SEA_LEVEL_DEPTH_G_CM2 - depth) / NEUTRON_ATTENUATION_LENGTH_G_CM2
    )


def latitude_factor(geomagnetic_latitude_deg: float) -> float:
    """Fast-flux multiplier for geomagnetic latitude.

    The geomagnetic cutoff rigidity suppresses the flux near the
    equator (factor ~0.65) and saturates past ~55 degrees (factor ~1.1
    relative to the NYC reference at ~51 degrees).  A smooth cosine
    interpolation is adequate for FIT bookkeeping.
    """
    lat = abs(geomagnetic_latitude_deg)
    if lat > 90.0:
        raise ValueError(
            f"latitude must be within [-90, 90], got"
            f" {geomagnetic_latitude_deg}"
        )
    low, high, knee = 0.65, 1.1, 55.0
    if lat >= knee:
        return high
    # Smooth rise from `low` at the equator to `high` at the knee.
    t = lat / knee
    return low + (high - low) * 0.5 * (1.0 - math.cos(math.pi * t))


def fast_flux_per_h(
    altitude_m: float, geomagnetic_latitude_deg: float = 51.0
) -> float:
    """Outdoor fast (>10 MeV) flux at a location, n/cm^2/h.

    NYC reference (sea level, ~51 deg geomagnetic) times the altitude
    and latitude factors.
    """
    return (
        NYC_FAST_FLUX_PER_H
        * altitude_acceleration(altitude_m)
        * latitude_factor(geomagnetic_latitude_deg)
        / latitude_factor(51.0)
    )


def outdoor_thermal_ratio(altitude_m: float) -> float:
    """Outdoor thermal/fast flux ratio at ``altitude_m``.

    Grows with altitude because the thermalized population builds up
    relative to the hard cascade (calibrated against the paper's
    Leadville numbers — see module docstring).
    """
    if altitude_m < -500.0:
        raise ValueError(f"altitude implausibly low: {altitude_m} m")
    return SEA_LEVEL_THERMAL_RATIO * (
        1.0 + THERMAL_RATIO_ALTITUDE_SLOPE_PER_M * max(altitude_m, 0.0)
    )


def thermal_flux_per_h(
    altitude_m: float, geomagnetic_latitude_deg: float = 51.0
) -> float:
    """Outdoor thermal (<0.5 eV) flux at a location, n/cm^2/h."""
    return fast_flux_per_h(
        altitude_m, geomagnetic_latitude_deg
    ) * outdoor_thermal_ratio(altitude_m)
