"""Environmental modifiers of the thermal-neutron flux.

The paper's central flux observation is that the thermal population is
*local*: bodies of hydrogenous material near the device moderate and
reflect neutrons into the thermal band.  Measured/quoted enhancements:

* 2 inches of cooling water: **+24 %** (Tin-II measurement, Fig. 5);
* concrete slab floor: **+20 %** (quoted from the literature);
* both together: **+44 %** (the adjustment applied to the FIT graphs —
  note the paper combines the two *additively*, each body contributing
  an independent albedo increment);
* rain / thunderstorm: **x2** on the whole thermal population
  (Ziegler's measurement, applied multiplicatively on top).

:class:`MaterialModifier` instances therefore carry additive
enhancements, and :class:`WeatherCondition` carries a multiplier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class MaterialModifier:
    """An additive thermal-flux enhancement from nearby material.

    Attributes:
        name: label used in reports.
        thermal_enhancement: fractional increase of the thermal flux
            contributed by this body (0.24 for the paper's water box).
        fast_enhancement: fractional change of the fast flux; material
            bodies barely touch the fast cascade so this is ~0.
    """

    name: str
    thermal_enhancement: float
    fast_enhancement: float = 0.0

    def __post_init__(self) -> None:
        if self.thermal_enhancement < -1.0:
            raise ValueError(
                "thermal enhancement cannot remove more than the whole"
                f" flux, got {self.thermal_enhancement}"
            )


#: 2 inches of cooling water over/near the device (Tin-II, Fig. 5).
WATER_COOLING = MaterialModifier("water cooling", 0.24)

#: Concrete slab floor / cinder-block walls.
CONCRETE_FLOOR = MaterialModifier("concrete floor", 0.20)

#: Raised machine-room floor (additional concrete structure).
RAISED_FLOOR = MaterialModifier("raised floor", 0.10)

#: A full human (we are mostly water): relevant for vehicle scenarios.
HUMAN_BODY = MaterialModifier("human body", 0.05)

#: A vehicle fuel tank (hydrocarbons moderate like water).
FUEL_TANK = MaterialModifier("fuel tank", 0.08)

#: Asphalt road surface.
ASPHALT_ROAD = MaterialModifier("asphalt road", 0.12)


class WeatherCondition(enum.Enum):
    """Weather multiplier applied to the thermal flux."""

    SUNNY = 1.0
    OVERCAST = 1.3
    RAIN = 2.0

    @property
    def thermal_multiplier(self) -> float:
        """Multiplier on the thermal flux for this condition."""
        return self.value


def combined_thermal_factor(
    materials: Iterable[MaterialModifier],
    weather: WeatherCondition = WeatherCondition.SUNNY,
) -> float:
    """Total thermal-flux factor for a set of materials and weather.

    Material enhancements add (per the paper's +44 % = +20 % + 24 %
    bookkeeping); the weather multiplier applies to the result.
    """
    additive = 1.0 + sum(m.thermal_enhancement for m in materials)
    if additive < 0.0:
        raise ValueError("material modifiers removed more than all flux")
    return additive * weather.thermal_multiplier


def combined_fast_factor(
    materials: Iterable[MaterialModifier],
) -> float:
    """Total fast-flux factor (usually ~1; materials shield little)."""
    factor = 1.0 + sum(m.fast_enhancement for m in materials)
    if factor < 0.0:
        raise ValueError("material modifiers removed more than all flux")
    return factor


def describe(
    materials: Iterable[MaterialModifier],
    weather: WeatherCondition = WeatherCondition.SUNNY,
) -> Tuple[str, ...]:
    """Human-readable summary lines for a modifier set."""
    lines = [
        f"{m.name}: +{m.thermal_enhancement:.0%} thermal"
        for m in materials
    ]
    if weather is not WeatherCondition.SUNNY:
        lines.append(
            f"weather {weather.name.lower()}:"
            f" x{weather.thermal_multiplier:g} thermal"
        )
    return tuple(lines)
