"""Flight-altitude neutron environment.

Section II of the paper notes the fast flux "increases exponentially
with altitude, reaching a maximum at about 60,000 ft".  Avionics is the
classic market where COTS parts meet that flux, so the library extends
the ground-level model to flight levels: the barometric scaling holds
up to the Pfotzer maximum, above which the cascade has not fully
developed and the flux rolls off.

The thermal population aboard an aircraft is dominated by the airframe
and fuel (hydrogenous moderators around the avionics bay), handled with
the usual material modifiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.environment.flux import (
    altitude_acceleration,
    fast_flux_per_h,
    outdoor_thermal_ratio,
)

#: Altitude of the Pfotzer maximum, metres (~60,000 ft).
PFOTZER_ALTITUDE_M: float = 18_300.0

#: Roll-off scale above the Pfotzer maximum, metres.
PFOTZER_ROLLOFF_M: float = 7_000.0

#: Feet per metre, for flight-level conversions.
FEET_PER_M: float = 3.28084


def flight_level_to_m(flight_level: float) -> float:
    """Convert a flight level (hundreds of feet) to metres."""
    if flight_level < 0.0:
        raise ValueError(
            f"flight level must be >= 0, got {flight_level}"
        )
    return flight_level * 100.0 / FEET_PER_M


def flux_at_altitude_per_h(
    altitude_m: float, geomagnetic_latitude_deg: float = 45.0
) -> float:
    """Fast (>10 MeV) flux at any altitude including flight levels.

    Barometric growth up to the Pfotzer maximum, then a Gaussian-like
    roll-off (the cascade is underdeveloped in thin air).
    """
    if altitude_m <= PFOTZER_ALTITUDE_M:
        return fast_flux_per_h(altitude_m, geomagnetic_latitude_deg)
    peak = fast_flux_per_h(
        PFOTZER_ALTITUDE_M, geomagnetic_latitude_deg
    )
    excess = (altitude_m - PFOTZER_ALTITUDE_M) / PFOTZER_ROLLOFF_M
    return peak * math.exp(-(excess ** 2))


@dataclass(frozen=True)
class FlightSegment:
    """One leg of a flight profile.

    Attributes:
        altitude_m: cruise altitude of the segment.
        duration_h: time spent on the segment.
        geomagnetic_latitude_deg: representative latitude.
    """

    altitude_m: float
    duration_h: float
    geomagnetic_latitude_deg: float = 45.0

    def __post_init__(self) -> None:
        if self.duration_h < 0.0:
            raise ValueError(
                f"duration must be >= 0, got {self.duration_h}"
            )
        if self.altitude_m < 0.0:
            raise ValueError(
                f"altitude must be >= 0, got {self.altitude_m}"
            )

    def fluence_per_cm2(self) -> float:
        """Fast-neutron fluence accumulated on this segment."""
        return (
            flux_at_altitude_per_h(
                self.altitude_m, self.geomagnetic_latitude_deg
            )
            * self.duration_h
        )


def route_fluence_per_cm2(segments: Sequence[FlightSegment]) -> float:
    """Total fast fluence over a flight profile, n/cm^2.

    Raises:
        ValueError: on an empty profile.
    """
    if not segments:
        raise ValueError("flight profile has no segments")
    return sum(s.fluence_per_cm2() for s in segments)


def cruise_acceleration(cruise_altitude_m: float = 11_000.0) -> float:
    """Flux multiplier at cruise relative to NYC sea level.

    ~300-500x at typical commercial cruise — the number avionics
    reliability engineers carry around.
    """
    return flux_at_altitude_per_h(cruise_altitude_m) / fast_flux_per_h(
        0.0, 45.0
    )


def thermal_flux_aboard_per_h(
    altitude_m: float,
    moderation_enhancement: float = 0.5,
    geomagnetic_latitude_deg: float = 45.0,
) -> Tuple[float, float]:
    """(fast, thermal) flux in an avionics bay.

    The cabin/airframe/fuel moderate the local cascade; the
    ``moderation_enhancement`` (default +50 %: fuel + passengers +
    structure, cf. the paper's materials table) scales the outdoor
    thermal ratio at altitude.
    """
    if moderation_enhancement < 0.0:
        raise ValueError(
            "enhancement must be >= 0,"
            f" got {moderation_enhancement}"
        )
    fast = flux_at_altitude_per_h(
        altitude_m, geomagnetic_latitude_deg
    )
    ratio = outdoor_thermal_ratio(min(altitude_m, 5_000.0))
    thermal = fast * ratio * (1.0 + moderation_enhancement)
    return fast, thermal


__all__ = [
    "PFOTZER_ALTITUDE_M",
    "FlightSegment",
    "cruise_acceleration",
    "flight_level_to_m",
    "flux_at_altitude_per_h",
    "route_fluence_per_cm2",
    "thermal_flux_aboard_per_h",
]
