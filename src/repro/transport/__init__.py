"""1-D Monte Carlo neutron moderation, albedo and shielding."""

from repro.transport.materials import (
    AIR,
    BORATED_POLYETHYLENE,
    CADMIUM,
    CONCRETE,
    GASOLINE,
    Material,
    Nuclide,
    POLYETHYLENE,
    SILICON,
    WATER,
)
from repro.transport.batch import (
    BatchTransportEngine,
    DEFAULT_BATCH_SIZE,
    HISTORIES_PER_STREAM,
    scattered_energies_ev,
)
from repro.transport.montecarlo import (
    Engine,
    Layer,
    SlabGeometry,
    SlabTransport,
    shield_transmission,
    thermal_albedo_enhancement,
)
from repro.transport.analytic import (
    absorber_transmission,
    diffusion_coefficient_cm,
    diffusion_length_cm,
    uncollided_transmission,
)
from repro.transport.multigroup import (
    DeterministicTransportEngine,
    DeterministicTransportResult,
    GroupStructure,
    fine_structure,
)
from repro.transport.tallies import TransportResult, TransportTally

__all__ = [
    "AIR",
    "BORATED_POLYETHYLENE",
    "CADMIUM",
    "CONCRETE",
    "GASOLINE",
    "Material",
    "Nuclide",
    "POLYETHYLENE",
    "SILICON",
    "WATER",
    "BatchTransportEngine",
    "DEFAULT_BATCH_SIZE",
    "HISTORIES_PER_STREAM",
    "scattered_energies_ev",
    "Engine",
    "Layer",
    "SlabGeometry",
    "SlabTransport",
    "shield_transmission",
    "thermal_albedo_enhancement",
    "absorber_transmission",
    "diffusion_coefficient_cm",
    "diffusion_length_cm",
    "uncollided_transmission",
    "DeterministicTransportEngine",
    "DeterministicTransportResult",
    "GroupStructure",
    "fine_structure",
    "TransportResult",
    "TransportTally",
]
