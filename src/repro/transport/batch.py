"""Vectorized, event-based batch Monte Carlo transport engine.

The scalar loop in :mod:`repro.transport.montecarlo` follows one
neutron at a time; this module carries **all alive neutrons as NumPy
arrays** (position, direction cosine, energy) and advances them
collision-step by collision-step with masked array operations.  The
physics is identical — same flight-length law, same surface-crossing
treatment, same 1/v absorption, same single-variate isotope pick and
elastic kinematics — so the two engines are statistically equivalent
channel by channel (enforced by ``tests/test_transport_equivalence.py``).

Determinism contract
--------------------

Histories are partitioned into fixed-size **seed streams** of
:data:`HISTORIES_PER_STREAM` histories.  The run's root
``SeedSequence`` spawns one child per stream, each stream draws its
source energies and all of its collision randomness from its own
generator, and streams never share draws.  Consequences:

* same seed → same tallies, bit for bit;
* tallies are independent of ``batch_size`` (which only sets how many
  streams are fused into one vectorized sweep) and of ``n_workers``
  (which only sets how sweeps are scheduled across processes).

Geometry boundaries, per-layer cross-section coefficients and
per-material scatter tables are built once per engine and reused by
every sweep, instead of being re-derived per collision.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.physics.constants import BOLTZMANN_EV_PER_K, ROOM_TEMPERATURE_K
from repro.physics.units import (
    FAST_CUTOFF_EV,
    THERMAL_CUTOFF_EV,
    THERMAL_ENERGY_EV,
)
from repro.spectra.spectrum import Spectrum
from repro.transport.montecarlo import _MAX_COLLISIONS, SlabGeometry
from repro.transport.tallies import TransportResult, TransportTally

#: Histories per randomness stream.  This is the granularity of the
#: ``SeedSequence`` spawn tree and is deliberately **not** tunable per
#: run: tallies depend on it, so freezing it is what makes results
#: independent of ``batch_size`` and ``n_workers``.
HISTORIES_PER_STREAM = 4096

#: Default histories co-resident per vectorized sweep (8 streams).
DEFAULT_BATCH_SIZE = 32768

#: Nudge past a crossed boundary, matching the scalar engine.
_BOUNDARY_EPS_CM = 1.0e-9


def scattered_energies_ev(
    energies_ev: np.ndarray,
    mass_numbers: np.ndarray,
    u: np.ndarray,
    bath_energy_ev: float,
) -> np.ndarray:
    """Vectorized isotropic-CM elastic kinematics with a thermal floor.

    The per-neutron outgoing energy is uniform on ``[alpha E, E]``
    with ``alpha = ((A - 1) / (A + 1))^2``, clipped below at the bath
    energy — the array form of
    :func:`repro.physics.interactions.scattered_energy` plus the
    bath-floor rule the transport applies after every scatter.

    Args:
        energies_ev: incident energies, eV.
        mass_numbers: struck-nucleus mass numbers ``A`` (>= 1).
        u: uniform variates in [0, 1).
        bath_energy_ev: thermal-bath floor, eV.
    """
    a = np.asarray(mass_numbers, dtype=float)
    alpha = ((a - 1.0) / (a + 1.0)) ** 2
    out = np.asarray(energies_ev, dtype=float) * (
        alpha + (1.0 - alpha) * np.asarray(u, dtype=float)
    )
    return np.maximum(out, bath_energy_ev)


@dataclass(frozen=True)
class _ScatterTable:
    """Per-material tables replicating ``Material.dominant_scatter_mass``.

    The scalar method turns a single uniform ``u`` into an element
    pick (by cumulative scatter weight) and an isotope pick (by
    cumulative abundance on ``frac = (997 u) mod 1``).  The tables
    below make both picks a ``searchsorted``/``argmax`` over arrays,
    padded so the scalar "fall back to the last isotope" branch is a
    padding column rather than a Python loop.
    """

    elem_cum_weight: np.ndarray  # (n_elem,) cumulative scatter weights
    total_weight: float
    iso_cum_2d: np.ndarray  # (n_elem, pad) cumulative abundance, +inf pad
    iso_mass_2d: np.ndarray  # (n_elem, pad) mass numbers, last-iso pad

    def sample_mass_numbers(self, u: np.ndarray) -> np.ndarray:
        """Struck mass numbers for uniform variates ``u``."""
        n_elem = self.elem_cum_weight.size
        elem_idx = np.minimum(
            np.searchsorted(
                self.elem_cum_weight, u * self.total_weight, side="right"
            ),
            n_elem - 1,
        )
        frac = (u * 997.0) % 1.0
        iso_idx = np.argmax(
            self.iso_cum_2d[elem_idx] > frac[:, None], axis=1
        )
        return self.iso_mass_2d[elem_idx, iso_idx]


@dataclass(frozen=True)
class _GeometryTables:
    """Immutable per-geometry cache shared by every sweep (picklable,
    so worker processes receive it ready-made)."""

    bounds_cm: np.ndarray  # (L + 1,) layer boundaries
    sigma_scatter_per_cm: np.ndarray  # (L,) energy-independent
    sigma_absorb_thermal_per_cm: np.ndarray  # (L,) at 0.0253 eV
    scatter_tables: Tuple[_ScatterTable, ...]  # one per layer
    material_names: Tuple[str, ...]  # one per layer


def _build_scatter_table(material) -> _ScatterTable:
    """Flatten one material's element/isotope data into arrays."""
    weights = np.asarray(
        [
            nuc.number_density * nuc.elem.sigma_scatter_b
            for nuc in material.nuclides
        ]
    )
    cum_weight = np.cumsum(weights)
    pad = max(len(nuc.elem.isotopes) for nuc in material.nuclides) + 1
    iso_cum = np.full((weights.size, pad), np.inf)
    iso_mass = np.empty((weights.size, pad))
    for i, nuc in enumerate(material.nuclides):
        isotopes = nuc.elem.isotopes
        cums = np.cumsum([iso.abundance for iso in isotopes])
        iso_cum[i, : cums.size] = cums
        masses = [float(iso.mass_number) for iso in isotopes]
        iso_mass[i, : len(masses)] = masses
        iso_mass[i, len(masses) :] = masses[-1]
    return _ScatterTable(
        elem_cum_weight=cum_weight,
        total_weight=float(cum_weight[-1]),
        iso_cum_2d=iso_cum,
        iso_mass_2d=iso_mass,
    )


def _build_tables(geometry: SlabGeometry) -> _GeometryTables:
    """Evaluate every per-layer quantity the sweep loop needs, once."""
    scatter = []
    sigma_s = []
    sigma_a0 = []
    names = []
    table_by_material_id = {}
    for layer in geometry.layers:
        mat = layer.material
        # Absorption is 1/v, so the full curve is the thermal-point
        # value scaled by sqrt(E0 / E); one evaluation per layer
        # replaces one per collision.
        sigma_s.append(mat.sigma_scatter_per_cm(THERMAL_ENERGY_EV))
        sigma_a0.append(mat.sigma_absorb_per_cm(THERMAL_ENERGY_EV))
        names.append(mat.name)
        key = id(mat)
        if key not in table_by_material_id:
            table_by_material_id[key] = _build_scatter_table(mat)
        scatter.append(table_by_material_id[key])
    return _GeometryTables(
        bounds_cm=geometry.bounds_cm,
        sigma_scatter_per_cm=np.asarray(sigma_s),
        sigma_absorb_thermal_per_cm=np.asarray(sigma_a0),
        scatter_tables=tuple(scatter),
        material_names=tuple(names),
    )


# ----------------------------------------------------------------------
# Sweep kernel
# ----------------------------------------------------------------------


def _simulate_sweep(
    tables: _GeometryTables,
    bath_energy_ev: float,
    children: Sequence[np.random.SeedSequence],
    sizes: Sequence[int],
    source_energy_ev: Optional[float],
    source_spectrum: Optional[Spectrum],
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Transport one sweep (a group of whole seed streams).

    Returns ``(leaks, absorbed_per_layer, lost, collisions)`` where
    ``leaks`` is a ``(2, 3)`` array indexed by (transmitted/reflected,
    thermal/epithermal/fast).
    """
    rngs = [np.random.default_rng(child) for child in children]
    energies = []
    for rng, size in zip(rngs, sizes):
        if source_spectrum is not None:
            energies.append(source_spectrum.sample_energies(rng, size))
        else:
            energies.append(np.full(size, float(source_energy_ev)))

    n_streams = len(rngs)
    bounds = tables.bounds_cm
    total_cm = float(bounds[-1])
    last_layer = bounds.size - 2
    sigma_s_layer = tables.sigma_scatter_per_cm
    sigma_a0_layer = tables.sigma_absorb_thermal_per_cm

    # State arrays, kept compact: dead neutrons are dropped each round.
    # ``stream`` stays sorted because compaction preserves order, so
    # per-stream draws are contiguous slices.
    stream = np.repeat(np.arange(n_streams), [e.size for e in energies])
    e = np.concatenate(energies) if energies else np.empty(0)
    x = np.zeros(e.size)
    mu = np.ones(e.size)

    leaks = np.zeros((2, 3), dtype=np.int64)
    absorbed_per_layer = np.zeros(last_layer + 1, dtype=np.int64)
    collisions = 0
    lost = 0

    for _ in range(_MAX_COLLISIONS):
        k = x.size
        if k == 0:
            break
        # Each stream draws the round's five uniforms (flight length,
        # absorption, isotope, energy, direction) for exactly its own
        # alive neutrons — the draw count is a function of that
        # stream's history alone, which is what makes tallies
        # independent of how streams are grouped into sweeps.
        u = np.empty((5, k))
        counts = np.bincount(stream, minlength=n_streams)
        offset = 0
        for s in range(n_streams):
            c = int(counts[s])
            if c:
                u[:, offset : offset + c] = rngs[s].random((5, c))
            offset += c

        idx = np.clip(
            np.searchsorted(bounds, x, side="right") - 1, 0, last_layer
        )
        sigma_s = sigma_s_layer[idx]
        sigma_a = sigma_a0_layer[idx] * np.sqrt(THERMAL_ENERGY_EV / e)
        sigma_t = sigma_s + sigma_a
        vacuum = sigma_t <= 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            distance = -np.log(u[0]) / sigma_t
            p_abs = sigma_a / sigma_t
        new_x = x + distance * mu
        lo = bounds[idx]
        hi = bounds[idx + 1]
        # Vacuum-like layers stream straight to the nearest face.
        new_x = np.where(vacuum, np.where(mu > 0.0, total_cm, 0.0), new_x)
        crossed = ~vacuum & ((new_x > hi) | (new_x < lo))
        boundary_x = np.where(
            mu > 0.0, hi + _BOUNDARY_EPS_CM, lo - _BOUNDARY_EPS_CM
        )
        x = np.where(crossed, boundary_x, new_x)
        leaked = (vacuum | crossed) & ((x >= total_cm) | (x <= 0.0))

        colliding = ~vacuum & ~crossed
        absorbed = colliding & (u[1] < p_abs)
        collisions += int(colliding.sum())
        if absorbed.any():
            absorbed_per_layer += np.bincount(
                idx[absorbed], minlength=last_layer + 1
            )
        scattering = colliding & ~absorbed
        if scattering.any():
            mass = np.ones(k)
            for li in np.unique(idx[scattering]):
                sel = scattering & (idx == li)
                mass[sel] = tables.scatter_tables[li].sample_mass_numbers(
                    u[2, sel]
                )
            e = np.where(
                scattering,
                scattered_energies_ev(e, mass, u[3], bath_energy_ev),
                e,
            )
            mu = np.where(scattering, 2.0 * u[4] - 1.0, mu)
        if leaked.any():
            band = np.where(
                e[leaked] < THERMAL_CUTOFF_EV,
                0,
                np.where(e[leaked] < FAST_CUTOFF_EV, 1, 2),
            )
            side = np.where(x[leaked] >= total_cm, 0, 1)
            leaks += np.bincount(side * 3 + band, minlength=6).reshape(
                2, 3
            )
        keep = ~(leaked | absorbed)
        if not keep.all():
            x = x[keep]
            mu = mu[keep]
            e = e[keep]
            stream = stream[keep]
    else:
        # Pathological histories that hit the collision cap are banked
        # as absorbed, mirroring the scalar engine.
        lost = x.size

    return leaks, absorbed_per_layer, lost, collisions


def _sweep_worker(args):
    """Top-level adapter so sweeps can run in a process pool.

    Takes ``(shard_index, task_tuple)`` and returns
    ``(shard_index, part)`` so results can be delivered by shard
    identity regardless of completion order.
    """
    shard, task = args
    fault_point("batch.worker", shard=shard)
    return shard, _simulate_sweep(*task)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


class BatchTransportEngine:
    """Event-based vectorized transport over a :class:`SlabGeometry`.

    Usually reached through ``SlabTransport.run(engine="batch")``;
    instantiate directly to reuse the cached geometry tables across
    many runs of a campaign.

    Args:
        geometry: the slab stack.
        bath_energy_ev: thermal-bath floor energy (defaults to kT at
            room temperature, matching :class:`SlabTransport`).
    """

    def __init__(
        self,
        geometry: SlabGeometry,
        bath_energy_ev: float = BOLTZMANN_EV_PER_K * ROOM_TEMPERATURE_K,
    ) -> None:
        if bath_energy_ev <= 0.0:
            raise ValueError(
                f"bath energy must be positive, got {bath_energy_ev}"
            )
        self.geometry = geometry
        self.bath_energy_ev = bath_energy_ev
        self._tables = _build_tables(geometry)

    def run(
        self,
        n_neutrons: int,
        source_energy_ev: Optional[float] = None,
        source_spectrum: Optional[Spectrum] = None,
        seed: int = 0,
        batch_size: Optional[int] = None,
        n_workers: Optional[int] = None,
    ) -> TransportResult:
        """Transport ``n_neutrons`` and return a frozen result.

        Exactly one of ``source_energy_ev`` / ``source_spectrum`` must
        be given; neutrons start at ``x = 0`` moving in ``+x``.

        Args:
            n_neutrons: number of source histories.
            source_energy_ev: monoenergetic source energy, eV.
            source_spectrum: alternatively, a spectrum to sample.
            seed: entropy for the root ``SeedSequence`` (an int or
                anything ``SeedSequence`` accepts).
            batch_size: histories co-resident per vectorized sweep;
                rounded up to whole seed streams.  Affects memory and
                speed only — tallies are invariant.
            n_workers: if > 1, fan sweeps out over this many worker
                processes and merge tallies.  Tallies are invariant.
        """
        if n_neutrons <= 0:
            raise ValueError(f"need n_neutrons > 0, got {n_neutrons}")
        if (source_energy_ev is None) == (source_spectrum is None):
            raise ValueError(
                "give exactly one of source_energy_ev/source_spectrum"
            )
        if source_energy_ev is not None and source_energy_ev <= 0.0:
            raise ValueError(
                f"source energy must be positive, got {source_energy_ev}"
            )
        if batch_size is not None and batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {batch_size}"
            )
        if n_workers is not None and n_workers <= 0:
            raise ValueError(
                f"n_workers must be positive, got {n_workers}"
            )

        n_streams = math.ceil(n_neutrons / HISTORIES_PER_STREAM)
        children = np.random.SeedSequence(seed).spawn(n_streams)
        sizes = [HISTORIES_PER_STREAM] * n_streams
        sizes[-1] = n_neutrons - HISTORIES_PER_STREAM * (n_streams - 1)

        per_sweep = max(
            1, (batch_size or DEFAULT_BATCH_SIZE) // HISTORIES_PER_STREAM
        )
        tasks = [
            (
                self._tables,
                self.bath_energy_ev,
                children[i : i + per_sweep],
                sizes[i : i + per_sweep],
                source_energy_ev,
                source_spectrum,
            )
            for i in range(0, n_streams, per_sweep)
        ]

        with obs.span(
            "transport.run",
            histories=n_neutrons,
            shards=len(tasks),
        ) as sp:
            parts, degraded_shards = self._run_shards(
                tasks, n_workers
            )
            result = TransportResult.from_tally(
                self._merge(n_neutrons, parts),
                degraded_shards=degraded_shards,
            )
        obs.inc("repro_transport_histories_total", n_neutrons)
        if degraded_shards:
            obs.inc("repro_shard_retries_total", degraded_shards)
        if sp.elapsed_s > 0:
            obs.set_gauge(
                "repro_histories_per_s", n_neutrons / sp.elapsed_s
            )
        assert result.balance_check(), "neutron balance violated"
        return result

    def _run_shards(
        self,
        tasks: List[tuple],
        n_workers: Optional[int],
    ) -> Tuple[List[Tuple[np.ndarray, np.ndarray, int, int]], int]:
        """Run every shard, riding out worker death and merge faults.

        Each shard is a whole group of seed streams, so its tally is
        a pure function of its task tuple: a shard that failed in a
        pool worker (the process was killed, the executor broke, the
        delivery faulted) is simply recomputed once in-process and
        delivered again.  Shard-indexed delivery keeps the retry —
        and any duplicated delivery — idempotent.

        Returns:
            ``(parts, degraded_shards)`` where ``parts`` is ordered
            by shard index and ``degraded_shards`` counts shards that
            needed the in-process fallback.

        Raises:
            Exception: whatever the in-process retry of a shard
                raises — one retry is the recovery policy, a second
                failure is a real bug.
        """
        parts: Dict[int, Tuple[np.ndarray, np.ndarray, int, int]] = {}

        def _store(
            shard: int,
            part: Tuple[np.ndarray, np.ndarray, int, int],
        ) -> None:
            parts[shard] = part

        def _deliver(
            shard: int,
            part: Tuple[np.ndarray, np.ndarray, int, int],
        ) -> None:
            fault_point(
                "batch.merge", index=shard, part=part, store=_store
            )
            _store(shard, part)

        failed: List[int] = []
        if n_workers is not None and n_workers > 1 and len(tasks) > 1:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(tasks))
            ) as pool:
                futures = [
                    pool.submit(_sweep_worker, (i, task))
                    for i, task in enumerate(tasks)
                ]
                for i, future in enumerate(futures):
                    try:
                        shard, part = future.result()
                        _deliver(shard, part)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BrokenProcessPool:
                        # The pool died under this shard (worker
                        # SIGKILL / OOM); every not-yet-delivered
                        # future fails the same way and each shard
                        # falls back in-process.
                        failed.append(i)
                    except Exception:  # noqa: BLE001 — worker isolation point
                        failed.append(i)
        else:
            for i, task in enumerate(tasks):
                try:
                    shard, part = _sweep_worker((i, task))
                    _deliver(shard, part)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:  # noqa: BLE001 — shard isolation point
                    failed.append(i)

        # One in-process retry per failed shard; determinism of the
        # seed streams makes the recomputed tally bit-identical to
        # what the lost worker would have produced.
        for i in failed:
            shard, part = _sweep_worker((i, tasks[i]))
            _deliver(shard, part)

        missing = [i for i in range(len(tasks)) if i not in parts]
        assert not missing, f"shards never delivered: {missing}"
        return [parts[i] for i in range(len(tasks))], len(failed)

    def _merge(
        self,
        n_neutrons: int,
        parts: List[Tuple[np.ndarray, np.ndarray, int, int]],
    ) -> TransportTally:
        """Sum sweep tallies into one ``TransportTally``."""
        leaks = np.zeros((2, 3), dtype=np.int64)
        absorbed_per_layer = np.zeros(
            len(self._tables.material_names), dtype=np.int64
        )
        lost = 0
        collisions = 0
        for part_leaks, part_absorbed, part_lost, part_collisions in parts:
            leaks += part_leaks
            absorbed_per_layer += part_absorbed
            lost += part_lost
            collisions += part_collisions

        tally = TransportTally()
        tally.source = n_neutrons
        (
            tally.transmitted_thermal,
            tally.transmitted_epithermal,
            tally.transmitted_fast,
        ) = (int(c) for c in leaks[0])
        (
            tally.reflected_thermal,
            tally.reflected_epithermal,
            tally.reflected_fast,
        ) = (int(c) for c in leaks[1])
        tally.collisions = collisions
        for name, count in zip(
            self._tables.material_names, absorbed_per_layer
        ):
            if count:
                tally.absorbed += int(count)
                tally.absorbed_by_material[name] = (
                    tally.absorbed_by_material.get(name, 0) + int(count)
                )
        if lost:
            tally.absorbed += lost
            tally.absorbed_by_material["lost"] = (
                tally.absorbed_by_material.get("lost", 0) + lost
            )
        return tally
