"""The typed transport facade: ``TransportQuery`` -> ``TransportAnswer``.

One front door for every transport question in the repo.  Callers
state *what* they need — the physics (mode, material, thickness,
source), an accuracy target, and an engine policy — and the facade
negotiates *how*: serve from a certified surrogate surface iff the
query is inside its envelope and the certified bound meets the
target, else cascade to a live engine.  Every answer is stamped with
:class:`Provenance` (engine actually used, error bound, artifact
digest, degraded flags), so downstream layers never have to guess
where a number came from.

The live-engine cascade policy (:func:`pick_live_engine`) is shared
by the studies scheduler and the service circuit breaker — the single
source of truth for "batch is unavailable, what now?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

import numpy as np

from repro.obs import core as obs
from repro.runtime.errors import ConfigurationError
from repro.spectra.spectrum import Spectrum
from repro.transport.materials import Material
from repro.transport.montecarlo import (
    Engine,
    Layer,
    SlabGeometry,
    SlabTransport,
)
from repro.transport.surrogate.store import SurrogateStore
from repro.transport.surrogate.surface import (
    HEADLINE,
    mono_source_key,
    spectrum_source_key,
)

__all__ = [
    "ENGINE_POLICIES",
    "LIVE_CASCADE",
    "AccuracyTarget",
    "Provenance",
    "TransportAnswer",
    "TransportQuery",
    "answer",
    "cascade_for",
    "coerce_policy",
    "configure",
    "default_store",
    "pick_live_engine",
    "set_default_store",
]

#: Every engine policy a query may request.  The first two are
#: negotiation policies (may resolve to any live engine); the last
#: three name a live engine directly.
ENGINE_POLICIES = (
    "auto",
    "surrogate",
    "batch",
    "deterministic",
    "scalar",
)

#: The shared live-engine downgrade order: the noise-free multigroup
#: solver is ~11x cheaper than batch MC, the scalar oracle is the
#: always-works floor.  Studies and the service both cascade through
#: this exact sequence (fixing the old batch->scalar shortcut).
LIVE_CASCADE = ("batch", "deterministic", "scalar")


def coerce_policy(value: Union[str, Engine]) -> str:
    """Normalise an engine policy string.

    Raises:
        ConfigurationError: on an unknown policy.
    """
    if isinstance(value, Engine):
        return value.value
    name = str(value).lower()
    if name not in ENGINE_POLICIES:
        raise ConfigurationError(
            f"unknown engine policy {value!r};"
            f" allowed: {ENGINE_POLICIES}"
        )
    return name


def cascade_for(requested: str) -> Tuple[str, ...]:
    """Live engines to try, in order, for a requested policy.

    Negotiation policies (``auto``/``surrogate``) fall back through
    the full cascade; a named live engine starts the cascade at
    itself (never silently upgrades).
    """
    requested = coerce_policy(requested)
    if requested in LIVE_CASCADE:
        return LIVE_CASCADE[LIVE_CASCADE.index(requested):]
    return LIVE_CASCADE


def pick_live_engine(
    requested: str,
    blocked: FrozenSet[str] = frozenset(),
    budget_pressure: bool = False,
) -> Tuple[str, str]:
    """Choose the live engine to run and why it differs (if it does).

    Args:
        requested: engine policy of the query.
        blocked: live engines currently unavailable (open breakers).
        budget_pressure: the caller is behind budget — skip the
            requested engine in favour of a cheaper one when there is
            a fallback to take.

    Returns:
        ``(engine, reason)`` — ``reason`` is ``""`` when the pick is
        the requested engine itself, else the downgrade cause
        (``"budget-pressure"`` or ``"breaker-open"``).
    """
    order = cascade_for(requested)
    reason = ""
    for engine in order:
        if (
            budget_pressure
            and engine == requested
            and len(order) > 1
        ):
            reason = "budget-pressure"
            continue
        if engine in blocked:
            reason = reason or "breaker-open"
            continue
        return engine, reason
    # Everything is blocked: run the floor anyway (the scalar oracle
    # has no shared state to protect) and say why.
    return order[-1], reason or "breaker-open"


@dataclass(frozen=True)
class AccuracyTarget:
    """What the caller needs to be true of the answer.

    Attributes:
        rel_err: maximum acceptable relative error on the headline
            value (with a small absolute floor for near-zero
            channels — see ``ABS_SERVE_FLOOR``).
        confidence: minimum statistical coverage of the bound.
    """

    rel_err: float = 0.05
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.rel_err <= 1.0:
            raise ConfigurationError(
                f"rel_err must be in (0, 1], got {self.rel_err}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1),"
                f" got {self.confidence}"
            )


@dataclass(frozen=True)
class TransportQuery:
    """One transport question, stated declaratively.

    Attributes:
        mode: ``"transmission"`` or ``"albedo"``.
        material: slab material.
        thickness_cm: slab thickness.
        source_spectrum: incident spectrum (transmission queries).
        source_energy_ev: monoenergetic source (albedo queries).
        n_neutrons: MC histories for live MC engines.
        seed: transport seed for live MC engines.
        engine: engine policy (:data:`ENGINE_POLICIES`).
        accuracy: the accuracy target gating surrogate serving.
    """

    mode: str
    material: Material
    thickness_cm: float
    source_spectrum: Optional[Spectrum] = None
    source_energy_ev: Optional[float] = None
    n_neutrons: int = 20_000
    seed: int = 2020
    engine: str = "auto"
    accuracy: AccuracyTarget = field(default_factory=AccuracyTarget)

    def __post_init__(self) -> None:
        if self.mode not in HEADLINE:
            raise ConfigurationError(
                f"unknown query mode {self.mode!r};"
                f" allowed: {tuple(HEADLINE)}"
            )
        if (self.source_spectrum is None) == (
            self.source_energy_ev is None
        ):
            raise ConfigurationError(
                "give exactly one of"
                " source_spectrum/source_energy_ev"
            )
        if self.thickness_cm <= 0.0:
            raise ConfigurationError(
                f"thickness must be positive,"
                f" got {self.thickness_cm}"
            )
        if self.n_neutrons < 1:
            raise ConfigurationError(
                f"n_neutrons must be >= 1, got {self.n_neutrons}"
            )
        object.__setattr__(
            self, "engine", coerce_policy(self.engine)
        )

    def source_key(self) -> str:
        """Content key of the query's source (surface lookup key)."""
        if self.source_spectrum is not None:
            return spectrum_source_key(self.source_spectrum)
        return mono_source_key(float(self.source_energy_ev))


@dataclass(frozen=True)
class Provenance:
    """Where an answer came from and how much to trust it.

    Attributes:
        engine: engine that actually produced the answer
            (``"surrogate"`` or a live engine name).
        requested_engine: the query's engine policy.
        error_bound: certified absolute bound on the headline value
            (surrogate answers) or the MC standard error proxy
            (0.0 for deterministic/live answers without one).
        confidence: statistical coverage of ``error_bound``.
        artifact_digest: content address of the serving artifact
            (``""`` for live answers).
        degraded: the answer was produced by a different engine than
            the policy promised (fallback or downgrade).
        reason: why it degraded (``""`` when not degraded).
    """

    engine: str
    requested_engine: str
    error_bound: float = 0.0
    confidence: float = 0.0
    artifact_digest: str = ""
    degraded: bool = False
    reason: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form (the wire's ``provenance`` block)."""
        return {
            "engine": self.engine,
            "requested_engine": self.requested_engine,
            "error_bound": self.error_bound,
            "confidence": self.confidence,
            "artifact_digest": self.artifact_digest,
            "degraded": self.degraded,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class TransportAnswer:
    """A transport result plus its provenance stamp.

    ``result`` quacks like the engine results (``TransportResult`` /
    ``DeterministicTransportResult`` / surrogate): the shared
    accessors (``thermal_transmission_fraction``, ``thermal_albedo``,
    ...) all work.
    """

    result: object
    provenance: Provenance
    mode: str = "transmission"

    @property
    def value(self) -> float:
        """The headline number for the query's mode."""
        if self.mode == "albedo":
            return float(self.result.thermal_albedo())
        return float(self.result.thermal_transmission_fraction())


# -- default store -----------------------------------------------------

_DEFAULT_STORE: Optional[SurrogateStore] = None

#: Sentinel: "use the configured default store".
_USE_DEFAULT = object()


def configure(surrogate_root: Optional[str]) -> None:
    """Set (or clear, with None) the process-wide surrogate store."""
    global _DEFAULT_STORE
    if surrogate_root is None:
        _DEFAULT_STORE = None
    else:
        _DEFAULT_STORE = SurrogateStore(surrogate_root)


def set_default_store(store: Optional[SurrogateStore]) -> None:
    """Install an already-constructed store as the default."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def default_store() -> Optional[SurrogateStore]:
    """The process-wide surrogate store, if any."""
    return _DEFAULT_STORE


# -- the facade --------------------------------------------------------


def _run_live(query: TransportQuery, engine: str):
    """Run a live engine exactly as the legacy free functions did
    (same geometry/RNG construction, so results are bit-identical)."""
    geometry = SlabGeometry(
        [Layer(query.material, query.thickness_cm)]
    )
    transport = SlabTransport(
        geometry, rng=np.random.default_rng(query.seed)
    )
    return transport.run(
        query.n_neutrons,
        source_energy_ev=query.source_energy_ev,
        source_spectrum=query.source_spectrum,
        engine=engine,
    )


def _try_surrogate(query: TransportQuery, store: SurrogateStore):
    """A certified surrogate answer, or ``(None, reason)``."""
    hit = store.lookup(
        query.mode,
        query.material.name,
        query.source_key(),
        query.thickness_cm,
    )
    if hit is None:
        return None, "no-surface"
    surface, digest = hit
    if not surface.meets(
        query.thickness_cm,
        query.accuracy.rel_err,
        query.accuracy.confidence,
    ):
        return None, "bound-exceeds-target"
    result = surface.evaluate(query.thickness_cm)
    provenance = Provenance(
        engine="surrogate",
        requested_engine=query.engine,
        error_bound=surface.certified_bound(
            confidence=query.accuracy.confidence
        ),
        confidence=query.accuracy.confidence,
        artifact_digest=digest,
    )
    return TransportAnswer(result, provenance, query.mode), ""


def answer(
    query: TransportQuery,
    store=_USE_DEFAULT,
    blocked: FrozenSet[str] = frozenset(),
    budget_pressure: bool = False,
) -> TransportAnswer:
    """Answer a transport query under its accuracy/engine contract.

    Args:
        query: the question.
        store: surrogate store to consult (defaults to the
            process-wide store from :func:`configure`; pass ``None``
            to force live engines).
        blocked: live engines currently unavailable (open breakers).
        budget_pressure: ask the cascade for a cheaper engine.

    Returns:
        A :class:`TransportAnswer`; ``provenance.degraded`` is set
        whenever the engine used is not the one the policy promised.
    """
    if store is _USE_DEFAULT:
        store = _DEFAULT_STORE
    requested = query.engine
    miss_reason = ""
    if store is not None and requested in ("auto", "surrogate"):
        served, miss_reason = _try_surrogate(query, store)
        if served is not None:
            obs.inc("repro_surrogate_hits_total", mode=query.mode)
            return served
        obs.inc(
            "repro_surrogate_misses_total",
            mode=query.mode,
            reason=miss_reason,
        )
    elif requested in ("auto", "surrogate"):
        miss_reason = "no-store"
    engine, cascade_reason = pick_live_engine(
        requested, blocked=blocked, budget_pressure=budget_pressure
    )
    result = _run_live(query, engine)
    degraded = False
    reason = ""
    if requested == "surrogate":
        # The caller demanded the surrogate; a live answer is a
        # fallback worth flagging (and counting).
        degraded = True
        reason = miss_reason or "no-store"
        obs.inc(
            "repro_surrogate_fallbacks_total",
            mode=query.mode,
            reason=reason,
        )
    elif requested in LIVE_CASCADE and engine != requested:
        degraded = True
        reason = cascade_reason
    elif requested == "auto" and cascade_reason:
        # auto tolerates any live engine, but a breaker-forced pick
        # is still worth surfacing.
        degraded = True
        reason = cascade_reason
    stderr = 0.0
    if engine in ("batch", "scalar"):
        try:
            stderr = float(result.thermal_albedo_stderr())
        except (AttributeError, ZeroDivisionError):
            stderr = 0.0
    provenance = Provenance(
        engine=engine,
        requested_engine=requested,
        error_bound=stderr,
        confidence=0.0,
        artifact_digest="",
        degraded=degraded,
        reason=reason,
    )
    return TransportAnswer(result, provenance, query.mode)
