"""Bulk materials for the slowing-down Monte Carlo.

A :class:`Material` is a density plus an atomic composition; it exposes
macroscopic scattering and absorption cross sections (1/cm).  Absorption
follows the 1/v law from the isotope table; scattering uses the
epithermal free-atom values, which is the right fidelity for a
moderation/albedo study (we are not doing criticality here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.physics.constants import AVOGADRO
from repro.physics.interactions import one_over_v_cross_section
from repro.physics.isotopes import Element, element
from repro.physics.units import BARN_CM2


@dataclass(frozen=True)
class Nuclide:
    """One element inside a material, with its number density.

    Attributes:
        elem: the natural element.
        number_density: atoms/cm^3 of this element in the material.
    """

    elem: Element
    number_density: float


class Material:
    """A homogeneous bulk material.

    Args:
        name: label.
        density_g_cm3: mass density.
        composition: mapping ``element symbol -> atoms per formula
            unit`` (e.g. water: ``{"H": 2, "O": 1}``).
        enrichment_b10: optional fraction of boron that is 10B
            (defaults to natural 19.9 %). Only used when the material
            contains boron; lets us model depleted/enriched boron.
    """

    def __init__(
        self,
        name: str,
        density_g_cm3: float,
        composition: Dict[str, float],
        enrichment_b10: float | None = None,
    ) -> None:
        if density_g_cm3 <= 0.0:
            raise ValueError(
                f"density must be positive, got {density_g_cm3}"
            )
        if not composition:
            raise ValueError("composition must not be empty")
        if enrichment_b10 is not None and not 0.0 <= enrichment_b10 <= 1.0:
            raise ValueError(
                f"B10 enrichment must be in [0, 1], got {enrichment_b10}"
            )
        self.name = name
        self.density_g_cm3 = density_g_cm3
        self.enrichment_b10 = enrichment_b10

        formula_mass = sum(
            element(sym).atomic_mass * n for sym, n in composition.items()
        )
        units_per_cm3 = density_g_cm3 * AVOGADRO / formula_mass
        self.nuclides: Tuple[Nuclide, ...] = tuple(
            Nuclide(element(sym), units_per_cm3 * n)
            for sym, n in composition.items()
        )

    # ------------------------------------------------------------------

    def _element_capture_b(self, nuc: Nuclide) -> float:
        """Thermal capture cross section of one element, honouring the
        boron enrichment override, barns."""
        if nuc.elem.symbol == "B" and self.enrichment_b10 is not None:
            b10 = next(
                i for i in nuc.elem.isotopes if i.name == "B10"
            )
            b11 = next(
                i for i in nuc.elem.isotopes if i.name == "B11"
            )
            return (
                self.enrichment_b10 * b10.sigma_capture_thermal_b
                + (1.0 - self.enrichment_b10)
                * b11.sigma_capture_thermal_b
            )
        return nuc.elem.sigma_capture_thermal_b

    def sigma_scatter_per_cm(self, energy_ev: float) -> float:
        """Macroscopic scattering cross section, 1/cm.

        Energy-independent in this model (free-atom plateau values).
        The argument is accepted for interface symmetry.
        """
        del energy_ev
        return sum(
            n.number_density * n.elem.sigma_scatter_b * BARN_CM2
            for n in self.nuclides
        )

    def sigma_absorb_per_cm(self, energy_ev: float) -> float:
        """Macroscopic absorption cross section at ``energy_ev``, 1/cm."""
        return sum(
            n.number_density
            * one_over_v_cross_section(
                self._element_capture_b(n), energy_ev
            )
            * BARN_CM2
            for n in self.nuclides
        )

    def sigma_total_per_cm(self, energy_ev: float) -> float:
        """Macroscopic total cross section, 1/cm."""
        return self.sigma_scatter_per_cm(
            energy_ev
        ) + self.sigma_absorb_per_cm(energy_ev)

    def scatter_nuclide(
        self, energy_ev: float, u: float
    ) -> Nuclide:
        """Pick the scattering element for a collision.

        Args:
            energy_ev: neutron energy (unused with flat scattering, but
                kept so energy-dependent laws can slot in).
            u: uniform variate in [0, 1).
        """
        del energy_ev
        weights: List[float] = [
            n.number_density * n.elem.sigma_scatter_b
            for n in self.nuclides
        ]
        total = sum(weights)
        target = u * total
        acc = 0.0
        for nuc, w in zip(self.nuclides, weights):
            acc += w
            if target < acc:
                return nuc
        return self.nuclides[-1]

    def dominant_scatter_mass(self, u: float) -> int:
        """Mass number of the isotope struck in a scattering event.

        Picks the element via :meth:`scatter_nuclide` and then an
        isotope by abundance within it.
        """
        nuc = self.scatter_nuclide(1.0, u)
        # Re-use the fractional part of u to pick the isotope, keeping
        # the function single-variate for callers.
        frac = (u * 997.0) % 1.0
        acc = 0.0
        for iso in nuc.elem.isotopes:
            acc += iso.abundance
            if frac < acc:
                return iso.mass_number
        return nuc.elem.isotopes[-1].mass_number

    def __repr__(self) -> str:
        return (
            f"Material({self.name!r}, rho={self.density_g_cm3} g/cm^3)"
        )


#: Light water (the cooling-loop moderator).
WATER = Material("water", 1.0, {"H": 2, "O": 1})

#: Ordinary concrete (simplified oxide composition with bound water).
CONCRETE = Material(
    "concrete",
    2.3,
    {"O": 52.0, "Si": 19.0, "Ca": 6.0, "Al": 2.0, "Fe": 0.5, "H": 10.0,
     "Na": 1.0, "C": 1.0},
)

#: Polyethylene (CH2)n.
POLYETHYLENE = Material("polyethylene", 0.94, {"C": 1, "H": 2})

#: 5 wt%-boron borated polyethylene — the practical thermal shield the
#: paper discusses (and rejects for thermal-isolation reasons).
BORATED_POLYETHYLENE = Material(
    "borated polyethylene", 1.0, {"C": 1, "H": 2, "B": 0.028}
)

#: Cadmium metal — the detector shield / thermal blanket.
CADMIUM = Material("cadmium", 8.65, {"Cd": 1})

#: Dry air at sea level (mostly nitrogen).
AIR = Material("air", 1.205e-3, {"N": 1.56, "O": 0.42})

#: Bulk silicon (the chip substrate).
SILICON = Material("silicon", 2.33, {"Si": 1})

#: Gasoline surrogate (C8H18) for the vehicle scenario.
GASOLINE = Material("gasoline", 0.74, {"C": 8, "H": 18})
