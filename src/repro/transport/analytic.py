"""Analytic transport approximations to cross-check the Monte Carlo.

Two closed forms with textbook pedigrees:

* **exponential attenuation** of an uncollided beam,
  ``T = exp(-Sigma_t * x)`` — exact for pure absorbers, a lower bound
  when scattering can carry neutrons through;
* **diffusion length** ``L = sqrt(D / Sigma_a)`` with
  ``D = 1 / (3 * Sigma_tr)`` — the scale over which a thermalized
  population survives in a moderator.

A two-method agreement between these and the MC is the standard sanity
check before trusting either.
"""

from __future__ import annotations

import math

from repro.transport.materials import Material


def uncollided_transmission(
    material: Material, thickness_cm: float, energy_ev: float
) -> float:
    """Uncollided-beam transmission through a slab.

    Exact for the never-interacted population; the full transmission
    also contains in-scattered neutrons, so MC >= this value.

    Raises:
        ValueError: on a negative thickness.
    """
    if thickness_cm < 0.0:
        raise ValueError(
            f"thickness must be >= 0, got {thickness_cm}"
        )
    sigma_t = material.sigma_total_per_cm(energy_ev)
    return math.exp(-sigma_t * thickness_cm)


def absorber_transmission(
    material: Material, thickness_cm: float, energy_ev: float
) -> float:
    """Transmission counting only absorption as removal.

    Upper bound for the true transmission of a thin absorber where
    scattering is forward-peaked or rare (cadmium in the thermal
    band: absorption dwarfs scattering, so this is nearly exact).
    """
    if thickness_cm < 0.0:
        raise ValueError(
            f"thickness must be >= 0, got {thickness_cm}"
        )
    sigma_a = material.sigma_absorb_per_cm(energy_ev)
    return math.exp(-sigma_a * thickness_cm)


def transport_cross_section_per_cm(
    material: Material, energy_ev: float
) -> float:
    """Transport cross section with the isotropic-lab approximation.

    With isotropic lab scattering (our MC's assumption) the mean
    cosine is zero and ``Sigma_tr = Sigma_t``.
    """
    return material.sigma_total_per_cm(energy_ev)


def diffusion_coefficient_cm(
    material: Material, energy_ev: float
) -> float:
    """Diffusion coefficient ``D = 1 / (3 Sigma_tr)``, cm."""
    sigma_tr = transport_cross_section_per_cm(material, energy_ev)
    if sigma_tr <= 0.0:
        raise ValueError(
            f"{material.name} has no interaction at {energy_ev} eV"
        )
    return 1.0 / (3.0 * sigma_tr)


def diffusion_length_cm(
    material: Material, energy_ev: float = 0.0253
) -> float:
    """Thermal diffusion length ``L = sqrt(D / Sigma_a)``, cm.

    Water's textbook value is ~2.8 cm; our simplified cross sections
    land in that neighbourhood.
    """
    sigma_a = material.sigma_absorb_per_cm(energy_ev)
    if sigma_a <= 0.0:
        raise ValueError(
            f"{material.name} does not absorb at {energy_ev} eV"
        )
    return math.sqrt(
        diffusion_coefficient_cm(material, energy_ev) / sigma_a
    )


__all__ = [
    "absorber_transmission",
    "diffusion_coefficient_cm",
    "diffusion_length_cm",
    "uncollided_transmission",
]
