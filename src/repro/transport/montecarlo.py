"""1-D slab Monte Carlo for neutron moderation and albedo.

Good-enough physics for the questions the paper asks of it:

* isotropic (lab-frame direction, CM-energy) elastic scattering with
  the exact ``alpha``-kinematics per struck isotope;
* 1/v absorption from the isotope table (so a cadmium sheet eats
  thermals and borated poly eats everything it moderates);
* a thermal bath: neutrons cannot moderate below the bath energy —
  once they reach it they diffuse at constant energy until absorbed or
  they leak;
* slab geometry: a stack of layers along ``x``; neutrons enter the
  first layer travelling in ``+x`` with ``mu = +1``.

The two headline uses are the water/concrete **albedo enhancement**
that reproduces the Tin-II +24 % step (experiment E5) and the
**shielding ablation** (experiment E9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.multigroup.solver import (
        DeterministicTransportResult,
    )

import numpy as np

from repro.physics.constants import BOLTZMANN_EV_PER_K, ROOM_TEMPERATURE_K
from repro.physics.interactions import scattered_energy
from repro.physics.units import THERMAL_CUTOFF_EV, FAST_CUTOFF_EV
from repro.runtime.errors import ConfigurationError
from repro.spectra.spectrum import Spectrum
from repro.transport.materials import Material
from repro.transport.tallies import TransportResult, TransportTally

#: Hard cap on collisions per history — a leak/absorption must happen
#: long before this for any sane slab; it guards against infinite
#: loops on pathological inputs.
_MAX_COLLISIONS = 10_000


@dataclass(frozen=True)
class Layer:
    """One slab layer.

    Attributes:
        material: bulk material.
        thickness_cm: layer thickness along ``x``.
    """

    material: Material
    thickness_cm: float

    def __post_init__(self) -> None:
        if self.thickness_cm <= 0.0:
            raise ValueError(
                f"thickness must be positive, got {self.thickness_cm}"
            )


class SlabGeometry:
    """A stack of layers from ``x = 0`` to the total thickness."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("geometry needs at least one layer")
        self.layers: Tuple[Layer, ...] = tuple(layers)
        bounds = [0.0]
        for layer in self.layers:
            bounds.append(bounds[-1] + layer.thickness_cm)
        self._bounds = np.asarray(bounds)
        self._bounds.setflags(write=False)

    @property
    def total_thickness_cm(self) -> float:
        """Total stack thickness."""
        return float(self._bounds[-1])

    def layer_at(self, x: float) -> int:
        """Index of the layer containing position ``x``.

        Positions exactly on an internal boundary belong to the layer
        to the right.
        """
        if x < 0.0 or x > self.total_thickness_cm:
            raise ValueError(f"position {x} outside the stack")
        idx = int(np.searchsorted(self._bounds, x, side="right")) - 1
        return min(max(idx, 0), len(self.layers) - 1)

    @property
    def bounds_cm(self) -> np.ndarray:
        """Cached, read-only boundary array (0 … total thickness).

        Unlike :meth:`boundaries` this does not copy; the transport
        hot loops index it directly.
        """
        return self._bounds

    def layer_indices(self, x_cm: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`layer_at` over an array of positions.

        Positions are clamped into the stack rather than validated —
        the transport engines only call this with in-stack positions.
        """
        idx = np.searchsorted(self._bounds, x_cm, side="right") - 1
        return np.clip(idx, 0, len(self.layers) - 1)

    def boundaries(self) -> np.ndarray:
        """Layer boundary positions including 0 and the far face."""
        return self._bounds.copy()


class Engine(enum.Enum):
    """Validated transport-engine selector.

    Replaces the bare ``"batch"`` / ``"scalar"`` strings:
    :meth:`coerce` still accepts those strings (every existing call
    site keeps working) but rejects anything else with a
    :class:`~repro.runtime.errors.ConfigurationError` naming the
    allowed set, instead of failing deep inside a run.

    Members:
        BATCH: vectorized Monte Carlo (the default) — statistical
            answers with binomial error bars.
        SCALAR: the original per-history Monte Carlo loop, kept as
            the statistical oracle.
        DETERMINISTIC: the multigroup discrete-ordinates solver —
            noise-free fractional answers, no RNG use, and orders of
            magnitude faster for wide parameter sweeps.
    """

    BATCH = "batch"
    SCALAR = "scalar"
    DETERMINISTIC = "deterministic"

    @classmethod
    def coerce(cls, value: Union[str, "Engine"]) -> "Engine":
        """Normalize a user-supplied engine selector.

        Args:
            value: an :class:`Engine` member or its string value.

        Raises:
            repro.runtime.errors.ConfigurationError: for anything
                else (the message lists the allowed values).
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            allowed = tuple(member.value for member in cls)
            raise ConfigurationError(
                f"unknown transport engine {value!r};"
                f" allowed: {allowed}"
            ) from None


def _classify(energy_ev: float) -> str:
    """Band label for a leaking neutron."""
    if energy_ev < THERMAL_CUTOFF_EV:
        return "thermal"
    if energy_ev < FAST_CUTOFF_EV:
        return "epithermal"
    return "fast"


class SlabTransport:
    """Monte Carlo transport through a :class:`SlabGeometry`.

    Args:
        geometry: the slab stack.
        bath_temperature_k: thermal-bath temperature; moderation stops
            at ``kT`` of this bath.
        rng: NumPy generator (seeded by the caller; defaults to the
            fixed-seed ``default_rng(0)`` so default-constructed
            transports are deterministic).
    """

    def __init__(
        self,
        geometry: SlabGeometry,
        bath_temperature_k: float = ROOM_TEMPERATURE_K,
        rng: np.random.Generator | None = None,
    ) -> None:
        if bath_temperature_k <= 0.0:
            raise ValueError(
                f"bath temperature must be positive,"
                f" got {bath_temperature_k}"
            )
        self.geometry = geometry
        self.bath_energy_ev = BOLTZMANN_EV_PER_K * bath_temperature_k
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # Engine slots: every engine attribute exists from birth (a
        # ``getattr(self, ..., None)`` probe used to paper over the
        # missing attribute) and is built lazily exactly once.
        self._batch = None  # BatchTransportEngine
        self._deterministic = None  # DeterministicTransportEngine

    # ------------------------------------------------------------------

    def run(
        self,
        n_neutrons: int,
        source_energy_ev: float | None = None,
        source_spectrum: Spectrum | None = None,
        engine: Union[str, Engine] = Engine.BATCH,
        batch_size: int | None = None,
        n_workers: int | None = None,
    ) -> Union[TransportResult, "DeterministicTransportResult"]:
        """Transport ``n_neutrons`` through the stack.

        Exactly one of ``source_energy_ev`` / ``source_spectrum`` must
        be given.  Neutrons start at ``x = 0`` moving in ``+x``.

        Args:
            n_neutrons: number of source histories.
            source_energy_ev: monoenergetic source energy, eV.
            source_spectrum: alternatively, a spectrum to sample.
            engine: :attr:`Engine.BATCH` (vectorized, the default),
                :attr:`Engine.SCALAR` (the original per-history loop,
                kept as the statistical oracle) or
                :attr:`Engine.DETERMINISTIC` (the noise-free
                multigroup solver); the strings ``"batch"`` /
                ``"scalar"`` / ``"deterministic"`` are accepted.  The
                MC engines consume the transport's ``rng`` stream, so
                repeated runs differ but a freshly seeded transport
                is deterministic; the deterministic engine never
                touches the stream — repeat solves are bit-identical
                (answers are fractions per source neutron, so
                ``n_neutrons`` does not affect them).
            batch_size: batch engine only — histories co-resident per
                vectorized sweep (rounded up to whole seed streams).
                Tallies do not depend on it.
            n_workers: batch engine only — optional process fan-out
                for campaign-scale runs; tallies do not depend on it.

        Returns:
            A frozen :class:`TransportResult` (MC engines) or the
            accessor-compatible ``DeterministicTransportResult``
            (deterministic engine).

        Raises:
            repro.runtime.errors.ConfigurationError: for an unknown
                ``engine`` selector.
        """
        engine = Engine.coerce(engine)
        if n_neutrons <= 0:
            raise ValueError(f"need n_neutrons > 0, got {n_neutrons}")
        if (source_energy_ev is None) == (source_spectrum is None):
            raise ValueError(
                "give exactly one of source_energy_ev/source_spectrum"
            )
        if source_energy_ev is not None and source_energy_ev <= 0.0:
            raise ValueError(
                f"source energy must be positive,"
                f" got {source_energy_ev}"
            )
        if engine is Engine.DETERMINISTIC:
            # No RNG use at all: the solver is a pure function of the
            # geometry and the source.  ``n_neutrons`` is validated
            # for interface symmetry but the answer is per source
            # neutron.
            return self._deterministic_engine().run(
                source_energy_ev=source_energy_ev,
                source_spectrum=source_spectrum,
            )
        if engine is Engine.BATCH:
            # Deterministic hand-off: one integer drawn from the shared
            # stream seeds the batch engine's SeedSequence tree, so the
            # batch path has the same "same seed, same result /
            # repeated runs differ" contract as the scalar loop.
            entropy = int(self.rng.integers(0, 2**63))
            return self._batch_engine().run(
                n_neutrons,
                source_energy_ev=source_energy_ev,
                source_spectrum=source_spectrum,
                seed=entropy,
                batch_size=batch_size,
                n_workers=n_workers,
            )
        if source_spectrum is not None:
            energies = source_spectrum.sample_energies(
                self.rng, n_neutrons
            )
        else:
            energies = np.full(n_neutrons, float(source_energy_ev))

        tally = TransportTally()
        tally.source = n_neutrons
        for e0 in energies:
            self._history(float(e0), tally)
        result = TransportResult.from_tally(tally)
        assert result.balance_check(), "neutron balance violated"
        return result

    def _batch_engine(self):
        """Lazily built (and cached) vectorized engine for this slab."""
        if self._batch is None:
            from repro.transport.batch import BatchTransportEngine

            self._batch = BatchTransportEngine(
                self.geometry, bath_energy_ev=self.bath_energy_ev
            )
        return self._batch

    def _deterministic_engine(self):
        """Lazily built (and cached) multigroup solver for this slab."""
        if self._deterministic is None:
            from repro.transport.multigroup.solver import (
                DeterministicTransportEngine,
            )

            self._deterministic = DeterministicTransportEngine(
                self.geometry, bath_energy_ev=self.bath_energy_ev
            )
        return self._deterministic

    # ------------------------------------------------------------------

    def _history(self, energy_ev: float, tally: TransportTally) -> None:
        """Follow one neutron until it leaks or is absorbed."""
        x = 0.0
        mu = 1.0  # direction cosine along +x
        rng = self.rng
        geo = self.geometry
        total_thickness = geo.total_thickness_cm
        # Hoisted out of the collision loop: the boundary array is
        # immutable for the life of the geometry, and the layer lookup
        # is a single searchsorted on it (the old code rebuilt a copy
        # of the bounds and re-derived the index on every collision).
        bounds = geo.bounds_cm
        last_layer = len(geo.layers) - 1

        for _ in range(_MAX_COLLISIONS):
            idx = int(np.searchsorted(bounds, x, side="right")) - 1
            idx = min(max(idx, 0), last_layer)
            mat = geo.layers[idx].material
            sigma_t = mat.sigma_total_per_cm(energy_ev)
            if sigma_t <= 0.0:
                # Vacuum-like layer: stream to the nearest face.
                x = total_thickness if mu > 0.0 else 0.0
            else:
                distance = -np.log(rng.random()) / sigma_t
                step = distance * mu
                new_x = x + step
                # Does the flight cross the current layer's boundary?
                lo, hi = bounds[idx], bounds[idx + 1]
                if new_x > hi or new_x < lo:
                    # Move to the boundary and re-sample in the next
                    # layer (standard surface-crossing treatment).
                    eps = 1.0e-9
                    x = hi + eps if mu > 0.0 else lo - eps
                    if x >= total_thickness or x <= 0.0:
                        self._leak(x, energy_ev, tally)
                        return
                    continue
                x = new_x
                # Collision: absorb or scatter.
                tally.collisions += 1
                p_abs = mat.sigma_absorb_per_cm(energy_ev) / sigma_t
                if rng.random() < p_abs:
                    tally.record_absorption(mat.name)
                    return
                mass = mat.dominant_scatter_mass(rng.random())
                energy_ev = max(
                    scattered_energy(energy_ev, mass, rng.random()),
                    self.bath_energy_ev,
                )
                mu = 2.0 * rng.random() - 1.0
                continue
            if x >= total_thickness or x <= 0.0:
                self._leak(x, energy_ev, tally)
                return
        # Pathological history: bank it as absorbed to keep balance.
        tally.record_absorption("lost")

    def _leak(
        self, x: float, energy_ev: float, tally: TransportTally
    ) -> None:
        """Record a leakage event at a face."""
        band = _classify(energy_ev)
        forward = x >= self.geometry.total_thickness_cm
        key = ("transmitted_" if forward else "reflected_") + band
        setattr(tally, key, getattr(tally, key) + 1)


def thermal_albedo_enhancement(
    material: Material,
    thickness_cm: float,
    n_neutrons: int = 20_000,
    incident_energy_ev: float = 1.0e6,
    seed: int = 2020,
    engine: Union[str, Engine] = Engine.BATCH,
) -> Tuple[float, float]:
    """Thermal albedo of a slab hit by fast neutrons.

    .. deprecated::
        Use :func:`repro.transport.api.answer` with an ``"albedo"``
        :class:`~repro.transport.api.TransportQuery` instead; this
        shim survives one release and never consults the surrogate.

    Returns:
        ``(albedo, stderr)``.
    """
    import warnings

    from repro.transport import api

    warnings.warn(
        "thermal_albedo_enhancement() is deprecated; build a"
        " repro.transport.api.TransportQuery(mode='albedo', ...)"
        " and call repro.transport.api.answer()",
        DeprecationWarning,
        stacklevel=2,
    )
    answer = api.answer(
        api.TransportQuery(
            mode="albedo",
            material=material,
            thickness_cm=thickness_cm,
            source_energy_ev=incident_energy_ev,
            n_neutrons=n_neutrons,
            seed=seed,
            engine=Engine.coerce(engine).value,
        ),
        store=None,
    )
    result = answer.result
    return result.thermal_albedo(), result.thermal_albedo_stderr()


def shield_transmission(
    material: Material,
    thickness_cm: float,
    source_spectrum: Spectrum,
    n_neutrons: int = 20_000,
    seed: int = 2020,
    engine: Union[str, Engine] = Engine.BATCH,
) -> Union[TransportResult, "DeterministicTransportResult"]:
    """Transport an incident spectrum through a shield layer.

    .. deprecated::
        Use :func:`repro.transport.api.answer` with a
        ``"transmission"`` :class:`~repro.transport.api.TransportQuery`
        instead; this shim survives one release and never consults
        the surrogate.
    """
    import warnings

    from repro.transport import api

    warnings.warn(
        "shield_transmission() is deprecated; build a"
        " repro.transport.api.TransportQuery(mode='transmission',"
        " ...) and call repro.transport.api.answer()",
        DeprecationWarning,
        stacklevel=2,
    )
    answer = api.answer(
        api.TransportQuery(
            mode="transmission",
            material=material,
            thickness_cm=thickness_cm,
            source_spectrum=source_spectrum,
            n_neutrons=n_neutrons,
            seed=seed,
            engine=Engine.coerce(engine).value,
        ),
        store=None,
    )
    return answer.result
