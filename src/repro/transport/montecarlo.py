"""1-D slab Monte Carlo for neutron moderation and albedo.

Good-enough physics for the questions the paper asks of it:

* isotropic (lab-frame direction, CM-energy) elastic scattering with
  the exact ``alpha``-kinematics per struck isotope;
* 1/v absorption from the isotope table (so a cadmium sheet eats
  thermals and borated poly eats everything it moderates);
* a thermal bath: neutrons cannot moderate below the bath energy —
  once they reach it they diffuse at constant energy until absorbed or
  they leak;
* slab geometry: a stack of layers along ``x``; neutrons enter the
  first layer travelling in ``+x`` with ``mu = +1``.

The two headline uses are the water/concrete **albedo enhancement**
that reproduces the Tin-II +24 % step (experiment E5) and the
**shielding ablation** (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.physics.constants import BOLTZMANN_EV_PER_K, ROOM_TEMPERATURE_K
from repro.physics.interactions import scattered_energy
from repro.physics.units import THERMAL_CUTOFF_EV, FAST_CUTOFF_EV
from repro.spectra.spectrum import Spectrum
from repro.transport.materials import Material
from repro.transport.tallies import TransportResult, TransportTally

#: Hard cap on collisions per history — a leak/absorption must happen
#: long before this for any sane slab; it guards against infinite
#: loops on pathological inputs.
_MAX_COLLISIONS = 10_000


@dataclass(frozen=True)
class Layer:
    """One slab layer.

    Attributes:
        material: bulk material.
        thickness_cm: layer thickness along ``x``.
    """

    material: Material
    thickness_cm: float

    def __post_init__(self) -> None:
        if self.thickness_cm <= 0.0:
            raise ValueError(
                f"thickness must be positive, got {self.thickness_cm}"
            )


class SlabGeometry:
    """A stack of layers from ``x = 0`` to the total thickness."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("geometry needs at least one layer")
        self.layers: Tuple[Layer, ...] = tuple(layers)
        bounds = [0.0]
        for layer in self.layers:
            bounds.append(bounds[-1] + layer.thickness_cm)
        self._bounds = np.asarray(bounds)

    @property
    def total_thickness_cm(self) -> float:
        """Total stack thickness."""
        return float(self._bounds[-1])

    def layer_at(self, x: float) -> int:
        """Index of the layer containing position ``x``.

        Positions exactly on an internal boundary belong to the layer
        to the right.
        """
        if x < 0.0 or x > self.total_thickness_cm:
            raise ValueError(f"position {x} outside the stack")
        idx = int(np.searchsorted(self._bounds, x, side="right")) - 1
        return min(max(idx, 0), len(self.layers) - 1)

    def boundaries(self) -> np.ndarray:
        """Layer boundary positions including 0 and the far face."""
        return self._bounds.copy()


def _classify(energy_ev: float) -> str:
    """Band label for a leaking neutron."""
    if energy_ev < THERMAL_CUTOFF_EV:
        return "thermal"
    if energy_ev < FAST_CUTOFF_EV:
        return "epithermal"
    return "fast"


class SlabTransport:
    """Monte Carlo transport through a :class:`SlabGeometry`.

    Args:
        geometry: the slab stack.
        bath_temperature_k: thermal-bath temperature; moderation stops
            at ``kT`` of this bath.
        rng: NumPy generator (seeded by the caller; defaults to the
            fixed-seed ``default_rng(0)`` so default-constructed
            transports are deterministic).
    """

    def __init__(
        self,
        geometry: SlabGeometry,
        bath_temperature_k: float = ROOM_TEMPERATURE_K,
        rng: np.random.Generator | None = None,
    ) -> None:
        if bath_temperature_k <= 0.0:
            raise ValueError(
                f"bath temperature must be positive,"
                f" got {bath_temperature_k}"
            )
        self.geometry = geometry
        self.bath_energy_ev = BOLTZMANN_EV_PER_K * bath_temperature_k
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------

    def run(
        self,
        n_neutrons: int,
        source_energy_ev: float | None = None,
        source_spectrum: Spectrum | None = None,
    ) -> TransportResult:
        """Transport ``n_neutrons`` through the stack.

        Exactly one of ``source_energy_ev`` / ``source_spectrum`` must
        be given.  Neutrons start at ``x = 0`` moving in ``+x``.

        Returns:
            A frozen :class:`TransportResult`.
        """
        if n_neutrons <= 0:
            raise ValueError(f"need n_neutrons > 0, got {n_neutrons}")
        if (source_energy_ev is None) == (source_spectrum is None):
            raise ValueError(
                "give exactly one of source_energy_ev/source_spectrum"
            )
        if source_spectrum is not None:
            energies = source_spectrum.sample_energies(
                self.rng, n_neutrons
            )
        else:
            if source_energy_ev <= 0.0:
                raise ValueError(
                    f"source energy must be positive,"
                    f" got {source_energy_ev}"
                )
            energies = np.full(n_neutrons, float(source_energy_ev))

        tally = TransportTally()
        tally.source = n_neutrons
        for e0 in energies:
            self._history(float(e0), tally)
        result = TransportResult.from_tally(tally)
        assert result.balance_check(), "neutron balance violated"
        return result

    # ------------------------------------------------------------------

    def _history(self, energy_ev: float, tally: TransportTally) -> None:
        """Follow one neutron until it leaks or is absorbed."""
        x = 0.0
        mu = 1.0  # direction cosine along +x
        rng = self.rng
        geo = self.geometry
        total_thickness = geo.total_thickness_cm

        for _ in range(_MAX_COLLISIONS):
            layer = geo.layers[geo.layer_at(x)]
            mat = layer.material
            sigma_t = mat.sigma_total_per_cm(energy_ev)
            if sigma_t <= 0.0:
                # Vacuum-like layer: stream to the nearest face.
                x = total_thickness if mu > 0.0 else 0.0
            else:
                distance = -np.log(rng.random()) / sigma_t
                step = distance * mu
                new_x = x + step
                # Does the flight cross the current layer's boundary?
                bounds = geo.boundaries()
                idx = geo.layer_at(x)
                lo, hi = bounds[idx], bounds[idx + 1]
                if new_x > hi or new_x < lo:
                    # Move to the boundary and re-sample in the next
                    # layer (standard surface-crossing treatment).
                    eps = 1.0e-9
                    x = hi + eps if mu > 0.0 else lo - eps
                    if x >= total_thickness or x <= 0.0:
                        self._leak(x, energy_ev, tally)
                        return
                    continue
                x = new_x
                # Collision: absorb or scatter.
                tally.collisions += 1
                p_abs = mat.sigma_absorb_per_cm(energy_ev) / sigma_t
                if rng.random() < p_abs:
                    tally.record_absorption(mat.name)
                    return
                mass = mat.dominant_scatter_mass(rng.random())
                energy_ev = max(
                    scattered_energy(energy_ev, mass, rng.random()),
                    self.bath_energy_ev,
                )
                mu = 2.0 * rng.random() - 1.0
                continue
            if x >= total_thickness or x <= 0.0:
                self._leak(x, energy_ev, tally)
                return
        # Pathological history: bank it as absorbed to keep balance.
        tally.record_absorption("lost")

    def _leak(
        self, x: float, energy_ev: float, tally: TransportTally
    ) -> None:
        """Record a leakage event at a face."""
        band = _classify(energy_ev)
        forward = x >= self.geometry.total_thickness_cm
        key = ("transmitted_" if forward else "reflected_") + band
        setattr(tally, key, getattr(tally, key) + 1)


def thermal_albedo_enhancement(
    material: Material,
    thickness_cm: float,
    n_neutrons: int = 20_000,
    incident_energy_ev: float = 1.0e6,
    seed: int = 2020,
) -> Tuple[float, float]:
    """Thermal albedo of a slab hit by fast neutrons.

    Models the paper's detector experiment: ambient fast/epithermal
    neutrons strike a nearby moderator body, which reflects a
    thermalized fraction back at the device/detector.  The returned
    albedo is the fractional *increase* of the local thermal
    population per unit incident fast flux.

    Returns:
        ``(albedo, stderr)``.
    """
    geometry = SlabGeometry([Layer(material, thickness_cm)])
    transport = SlabTransport(
        geometry, rng=np.random.default_rng(seed)
    )
    result = transport.run(
        n_neutrons, source_energy_ev=incident_energy_ev
    )
    return result.thermal_albedo(), result.thermal_albedo_stderr()


def shield_transmission(
    material: Material,
    thickness_cm: float,
    source_spectrum: Spectrum,
    n_neutrons: int = 20_000,
    seed: int = 2020,
) -> TransportResult:
    """Transport an incident spectrum through a shield layer.

    Used by the shielding ablation (experiment E9): cadmium sheets and
    borated polyethylene vs the thermal band.
    """
    geometry = SlabGeometry([Layer(material, thickness_cm)])
    transport = SlabTransport(
        geometry, rng=np.random.default_rng(seed)
    )
    return transport.run(n_neutrons, source_spectrum=source_spectrum)
