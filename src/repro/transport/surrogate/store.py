"""Content-addressed surrogate artifact store.

Artifacts live as ``<root>/<digest>.json`` where ``digest`` is the
payload's SHA-256 checksum — the filename *is* the content address,
so a partially-written or tampered file is detectable without any
sidecar metadata.  Loading re-derives the checksum and serde-checks
the envelope; anything that fails is quarantined (renamed to
``*.quarantined``) and skipped, never served.  The
``surrogate.artifact_load`` chaos fault point sits directly on the
load path so the matrix can prove corrupt artifacts degrade to a
live engine instead of poisoning answers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import serde
from repro.chaos.faultpoints import fault_point
from repro.obs import core as obs
from repro.runtime.checkpoint import payload_checksum
from repro.runtime.errors import TransientHarnessError
from repro.transport.surrogate.surface import ResponseSurface

__all__ = ["SurrogateStore", "QUARANTINE_SUFFIX"]

#: Rename suffix for artifacts that fail validation (mirrors the
#: service result cache's quarantine idiom).
QUARANTINE_SUFFIX = ".quarantined"


class SurrogateStore:
    """Load/save checksummed surrogate artifacts under one root.

    Loading is lazy and cached: the first lookup scans the root,
    validates every artifact, and indexes its surfaces by
    ``(mode, material, source)``; later lookups are dict hits.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._loaded = False
        # (mode, material, source) -> list of (surface, digest);
        # later artifacts may widen coverage of the same family.
        self._surfaces: Dict[
            Tuple[str, str, str], List[Tuple[ResponseSurface, str]]
        ] = {}
        self._digests: List[str] = []

    # -- persistence ---------------------------------------------------

    def save(self, artifact: dict) -> Path:
        """Persist an artifact at its content address.

        Returns:
            Path of the written ``<digest>.json``.
        """
        serde.check("surrogate-artifact", artifact)
        digest = payload_checksum(artifact)
        if artifact.get("checksum") != digest:
            raise ValueError(
                "artifact checksum does not match its body"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{digest}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(artifact, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, path)
        # Invalidate the cache so the next lookup sees the new file.
        self._loaded = False
        self._surfaces.clear()
        self._digests.clear()
        return path

    # -- loading -------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:
            return
        obs.inc(
            "repro_surrogate_quarantined_total", reason=reason
        )
        obs.event(
            "surrogate.artifact_quarantined",
            path=str(path),
            reason=reason,
        )

    def _load_file(self, path: Path) -> Optional[dict]:
        """Validate one artifact file; quarantine on any defect."""
        fault_point("surrogate.artifact_load", path=str(path))
        try:
            artifact = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._quarantine(path, reason="unreadable")
            return None
        try:
            serde.check("surrogate-artifact", artifact)
        except Exception:
            self._quarantine(path, reason="schema")
            return None
        digest = payload_checksum(artifact)
        if artifact.get("checksum") != digest:
            self._quarantine(path, reason="checksum")
            return None
        if path.name != f"{digest}.json":
            self._quarantine(path, reason="address")
            return None
        return artifact

    def _load_all(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            try:
                artifact = self._load_file(path)
            except TransientHarnessError:
                # Injected transient: skip this artifact for now
                # (miss, not quarantine) — a fresh store retries.
                continue
            if artifact is None:
                continue
            digest = str(artifact["checksum"])
            self._digests.append(digest)
            for data in artifact["surfaces"]:
                try:
                    surface = ResponseSurface.from_dict(data)
                except (KeyError, TypeError, ValueError):
                    continue
                key = (surface.mode, surface.material, surface.source)
                self._surfaces.setdefault(key, []).append(
                    (surface, digest)
                )

    # -- queries -------------------------------------------------------

    def digests(self) -> List[str]:
        """Digests of every valid artifact under the root."""
        self._load_all()
        return list(self._digests)

    def surfaces(self) -> List[Tuple[ResponseSurface, str]]:
        """Every loaded ``(surface, digest)`` pair, family-sorted."""
        self._load_all()
        pairs: List[Tuple[ResponseSurface, str]] = []
        for key in sorted(self._surfaces):
            pairs.extend(self._surfaces[key])
        return pairs

    def lookup(
        self,
        mode: str,
        material: str,
        source: str,
        thickness_cm: float,
    ) -> Optional[Tuple[ResponseSurface, str]]:
        """The first certified surface covering a query, or None.

        Returns:
            ``(surface, artifact_digest)`` when some loaded surface
            of the (mode, material, source) family has the thickness
            inside its envelope.
        """
        self._load_all()
        for surface, digest in self._surfaces.get(
            (mode, material, source), ()
        ):
            if surface.in_envelope(thickness_cm):
                return surface, digest
        return None
