"""``repro surrogate`` — build and inspect surrogate artifacts.

``build`` fills and certifies response surfaces (deterministic grid
fill, held-out batch-MC certification) and persists them as
content-addressed artifacts under ``--out``; ``info`` lists what a
store root contains and the certified bounds each surface carries.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.exitcodes import ExitCode
from repro.spectra.beamlines import rotax_spectrum
from repro.transport.surrogate.build import (
    ALBEDO_SOURCE_EV,
    DEFAULT_CERT_HISTORIES,
    DEFAULT_K_SIGMA,
    DEFAULT_N_POINTS,
    DEFAULT_SHIELD_THICKNESS_CM,
    SurfaceSpec,
    _ENVELOPE_SPAN,
    build_artifact,
    log_grid,
)
from repro.transport.surrogate.store import SurrogateStore

__all__ = ["add_surrogate_arguments", "run_surrogate"]

#: Shield name -> material, mirroring the service's SHIELDS table.
_SHIELD_MATERIALS = {
    "cadmium": "cadmium",
    "borated-poly": "borated polyethylene",
    "water": "water",
    "concrete": "concrete",
}


def add_surrogate_arguments(
    parser: argparse.ArgumentParser,
) -> None:
    """Attach ``repro surrogate`` arguments to a subparser."""
    sub = parser.add_subparsers(dest="surrogate_cmd", required=True)

    b = sub.add_parser(
        "build",
        help="fill + certify response surfaces into a store root",
    )
    b.add_argument(
        "--out",
        type=Path,
        required=True,
        help="store root to write the artifact into",
    )
    b.add_argument(
        "--name",
        default="default",
        help="artifact name (default: %(default)s)",
    )
    b.add_argument(
        "--shield",
        action="append",
        choices=sorted(_SHIELD_MATERIALS),
        default=None,
        help="restrict to these shields (repeatable;"
        " default: all four plus water/concrete albedo)",
    )
    b.add_argument(
        "--points",
        type=int,
        default=DEFAULT_N_POINTS,
        help="grid points per surface (default: %(default)s)",
    )
    b.add_argument(
        "--cert-histories",
        type=int,
        default=DEFAULT_CERT_HISTORIES,
        help="held-out MC histories per certification point"
        " (default: %(default)s)",
    )
    b.add_argument(
        "--k-sigma",
        type=float,
        default=DEFAULT_K_SIGMA,
        help="certification sigma multiplier"
        " (default: %(default)s)",
    )
    b.add_argument(
        "--seed",
        type=int,
        default=2020,
        help="certification MC seed (default: %(default)s)",
    )

    i = sub.add_parser(
        "info", help="list a store root's certified surfaces"
    )
    i.add_argument(
        "--root",
        type=Path,
        required=True,
        help="store root to inspect",
    )


def _build_specs(args: argparse.Namespace) -> list:
    """Surface specs for the requested shields."""
    from repro.transport.materials import (
        BORATED_POLYETHYLENE,
        CADMIUM,
        CONCRETE,
        WATER,
    )

    materials = {
        "cadmium": CADMIUM,
        "borated-poly": BORATED_POLYETHYLENE,
        "water": WATER,
        "concrete": CONCRETE,
    }
    shields = args.shield or sorted(materials)
    spectrum = rotax_spectrum()
    specs = []
    for shield in shields:
        material = materials[shield]
        t_ref = DEFAULT_SHIELD_THICKNESS_CM[material.name]
        grid = log_grid(
            t_ref / _ENVELOPE_SPAN,
            t_ref * _ENVELOPE_SPAN,
            args.points,
        )
        specs.append(
            SurfaceSpec(
                mode="transmission",
                material=material,
                thickness_cm=grid,
                source_spectrum=spectrum,
            )
        )
        if shield in ("water", "concrete"):
            specs.append(
                SurfaceSpec(
                    mode="albedo",
                    material=material,
                    thickness_cm=grid,
                    source_energy_ev=ALBEDO_SOURCE_EV,
                )
            )
    return specs


def run_surrogate(args: argparse.Namespace) -> int:
    """Entry point for ``repro surrogate``."""
    if args.surrogate_cmd == "build":
        specs = _build_specs(args)
        artifact = build_artifact(
            args.name,
            specs,
            cert_histories=args.cert_histories,
            k_sigma=args.k_sigma,
            seed=args.seed,
        )
        path = SurrogateStore(args.out).save(artifact)
        print(
            f"surrogate artifact {args.name!r}:"
            f" {len(specs)} surfaces,"
            f" {artifact['n_points']} grid points,"
            f" cert {args.cert_histories} histories"
            f" @ k={args.k_sigma:g}"
        )
        print(f"written: {path}")
        return int(ExitCode.OK)
    store = SurrogateStore(args.root)
    digests = store.digests()
    if not digests:
        print(f"no valid surrogate artifacts under {args.root}")
        return int(ExitCode.OK)
    for digest in digests:
        print(f"artifact {digest[:16]}…")
    for surface, digest in store.surfaces():
        grid = surface.thickness_cm
        print(
            f"  {surface.mode:<12} {surface.material:<22}"
            f" [{grid[0]:.3g}, {grid[-1]:.3g}] cm"
            f"  bound({surface.headline})"
            f"={surface.certified_bound():.2e}"
            f"  conf={surface.confidence:.6f}"
        )
    return int(ExitCode.OK)
