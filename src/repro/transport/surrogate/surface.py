"""Response surfaces: log-space interpolators with certified bounds.

A :class:`ResponseSurface` answers one (mode, material, source)
family of transport questions over a thickness envelope.  Grid values
come from the deterministic multigroup engine (noise-free), the
per-channel ``bounds`` from a held-out batch-MC certification pass
(:mod:`repro.transport.surrogate.build`), so a served answer carries
an error bar that was *measured*, not assumed.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import serde
from repro.spectra.spectrum import Spectrum

__all__ = [
    "CHANNELS",
    "FRACTION_CHANNELS",
    "ResponseSurface",
    "SurrogateTransportResult",
    "mono_source_key",
    "spectrum_source_key",
    "z_for_confidence",
]

#: Every channel a surface carries, in canonical order.  The first
#: seven are fractions per source neutron; ``collisions`` is a mean
#: count per source neutron (may exceed 1).
FRACTION_CHANNELS = (
    "transmitted_thermal",
    "transmitted_epithermal",
    "transmitted_fast",
    "reflected_thermal",
    "reflected_epithermal",
    "reflected_fast",
    "absorbed",
)
CHANNELS = FRACTION_CHANNELS + ("collisions",)

#: Headline channel per surface mode — the number callers actually
#: consume, whose certified bound gates serving.
HEADLINE = {
    "transmission": "transmitted_thermal",
    "albedo": "reflected_thermal",
}

#: Log-interpolation floor: channel values below this are treated as
#: zero (log-space cannot represent 0 exactly).
_LOG_FLOOR = 1.0e-12

#: Absolute accuracy floor when judging whether a certified bound
#: meets a relative target.  A surface cannot be certified tighter
#: than the MC it was certified *against* resolves (k-sigma at the
#: certification history count is a few 1e-3 for mid-range
#: fractions), so demanding better than this floor would mean no
#: surface ever serves; callers needing tighter answers should
#: request a live engine with more histories.
ABS_SERVE_FLOOR = 5.0e-3


def z_for_confidence(confidence: float) -> float:
    """Two-sided normal quantile: smallest ``z`` with
    ``erf(z / sqrt(2)) >= confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    lo, hi = 0.0, 10.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if math.erf(mid / math.sqrt(2.0)) < confidence:
            lo = mid
        else:
            hi = mid
    return hi

#: Relative slack on the envelope edges (grid endpoints are inside).
_EDGE_RTOL = 1.0e-9


def spectrum_source_key(spectrum: Spectrum) -> str:
    """Content key for a spectrum source (name + shape digest)."""
    digest = hashlib.sha256()
    digest.update(np.asarray(spectrum.edges, dtype=float).tobytes())
    digest.update(
        np.asarray(spectrum.group_flux, dtype=float).tobytes()
    )
    return f"spectrum:{spectrum.name}:{digest.hexdigest()[:16]}"


def mono_source_key(energy_ev: float) -> str:
    """Content key for a monoenergetic source."""
    return f"mono:{float(energy_ev)!r}"


@dataclass(frozen=True)
class SurrogateTransportResult:
    """A surface-served answer, accessor-compatible with the engines.

    Channels are fractions per source neutron (``source`` is 1.0),
    mirroring ``DeterministicTransportResult``; the ``*_stderr``
    accessors return the surface's *certified bound* for the channel
    — an honest error bar, unlike the deterministic engine's zero.
    """

    source: float
    transmitted_thermal: float
    transmitted_epithermal: float
    transmitted_fast: float
    reflected_thermal: float
    reflected_epithermal: float
    reflected_fast: float
    absorbed: float
    collisions: float
    bounds: Dict[str, float]

    def to_dict(self) -> dict:
        """Plain-dict form tagged ``surrogate-transport``."""
        return serde.tag(
            "surrogate-transport",
            {
                "source": self.source,
                "transmitted_thermal": self.transmitted_thermal,
                "transmitted_epithermal": (
                    self.transmitted_epithermal
                ),
                "transmitted_fast": self.transmitted_fast,
                "reflected_thermal": self.reflected_thermal,
                "reflected_epithermal": self.reflected_epithermal,
                "reflected_fast": self.reflected_fast,
                "absorbed": self.absorbed,
                "collisions": self.collisions,
                "bounds": dict(self.bounds),
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "SurrogateTransportResult":
        """Rebuild from :meth:`to_dict` output."""
        serde.check("surrogate-transport", data)
        return cls(
            source=float(data["source"]),
            transmitted_thermal=float(data["transmitted_thermal"]),
            transmitted_epithermal=float(
                data["transmitted_epithermal"]
            ),
            transmitted_fast=float(data["transmitted_fast"]),
            reflected_thermal=float(data["reflected_thermal"]),
            reflected_epithermal=float(data["reflected_epithermal"]),
            reflected_fast=float(data["reflected_fast"]),
            absorbed=float(data["absorbed"]),
            collisions=float(data["collisions"]),
            bounds={
                str(k): float(v)
                for k, v in data.get("bounds", {}).items()
            },
        )

    # -- TransportResult-compatible accessors --------------------------

    @property
    def transmitted(self) -> float:
        """Total transmitted fraction (any energy)."""
        return (
            self.transmitted_thermal
            + self.transmitted_epithermal
            + self.transmitted_fast
        )

    @property
    def reflected(self) -> float:
        """Total reflected fraction (any energy)."""
        return (
            self.reflected_thermal
            + self.reflected_epithermal
            + self.reflected_fast
        )

    def transmission_fraction(self) -> float:
        """Fraction of source neutrons transmitted (any energy)."""
        return self.transmitted

    def thermal_transmission_fraction(self) -> float:
        """Fraction transmitted below the cadmium cutoff."""
        return self.transmitted_thermal

    def thermal_albedo(self) -> float:
        """Fraction reflected back as thermal neutrons."""
        return self.reflected_thermal

    def thermal_albedo_stderr(self) -> float:
        """Certified bound on :meth:`thermal_albedo`."""
        return self.bounds.get("reflected_thermal", 0.0)

    def absorption_fraction(self) -> float:
        """Fraction absorbed anywhere in the stack."""
        return self.absorbed

    def mean_collisions(self) -> float:
        """Average collisions per source neutron."""
        return self.collisions

    def balance_check(self) -> bool:
        """Leakage + absorption within interpolation slack of 1."""
        total = self.transmitted + self.reflected + self.absorbed
        slack = sum(
            self.bounds.get(c, 0.0) for c in FRACTION_CHANNELS
        )
        return abs(total - 1.0) <= max(slack, 1.0e-3)


@dataclass(frozen=True)
class ResponseSurface:
    """One certified interpolator family over a thickness envelope.

    The certification (two-proportion-z style, as in the engine
    equivalence harness) records, per channel, the worst held-out
    ``gap = |predicted - MC|`` and the worst MC standard error
    ``sigma``.  The certified bound at coverage ``c`` is
    ``max(gap, z_c * sigma)``: the measured disagreement when it is
    statistically significant, the certification's own resolution
    limit when it is not — charging sub-noise gaps in full would
    just re-count the MC noise.

    Attributes:
        mode: ``"transmission"`` or ``"albedo"``.
        material: material name the surface was built for.
        source: content key of the source
            (:func:`spectrum_source_key` / :func:`mono_source_key`).
        thickness_cm: ascending thickness grid (the envelope).
        channels: channel name -> grid values (deterministic fill).
        gaps: channel name -> worst held-out ``|predicted - MC|``.
        sigmas: channel name -> worst held-out MC standard error.
        k_sigma: the certification's sigma multiplier.
        confidence: two-sided normal coverage of ``k_sigma`` — the
            maximum coverage this surface can certify at.
    """

    mode: str
    material: str
    source: str
    thickness_cm: Tuple[float, ...]
    channels: Dict[str, Tuple[float, ...]]
    gaps: Dict[str, float]
    sigmas: Dict[str, float]
    k_sigma: float
    confidence: float

    def __post_init__(self) -> None:
        if self.mode not in HEADLINE:
            raise ValueError(
                f"unknown surface mode {self.mode!r};"
                f" allowed: {tuple(HEADLINE)}"
            )
        grid = tuple(float(t) for t in self.thickness_cm)
        if len(grid) < 2:
            raise ValueError("surface needs >= 2 grid points")
        if any(t <= 0.0 for t in grid):
            raise ValueError("grid thicknesses must be positive")
        if any(b >= a for b, a in zip(grid, grid[1:])):
            raise ValueError("grid must be strictly increasing")
        object.__setattr__(self, "thickness_cm", grid)
        for channel in CHANNELS:
            values = self.channels.get(channel)
            if values is None or len(values) != len(grid):
                raise ValueError(
                    f"channel {channel!r} must carry one value per"
                    f" grid point"
                )
            if (
                channel not in self.gaps
                or channel not in self.sigmas
            ):
                raise ValueError(
                    f"channel {channel!r} missing certification"
                    f" gap/sigma"
                )

    @property
    def headline(self) -> str:
        """The mode's headline channel name."""
        return HEADLINE[self.mode]

    # -- envelope ------------------------------------------------------

    def in_envelope(self, thickness_cm: float) -> bool:
        """True when a thickness lies inside the certified grid."""
        lo = self.thickness_cm[0] * (1.0 - _EDGE_RTOL)
        hi = self.thickness_cm[-1] * (1.0 + _EDGE_RTOL)
        return lo <= thickness_cm <= hi

    # -- interpolation -------------------------------------------------

    def predict(self, channel: str, thickness_cm: float) -> float:
        """Interpolate one channel (log-thickness, log-value).

        Raises:
            ValueError: outside the envelope or unknown channel.
        """
        if channel not in self.channels:
            raise ValueError(f"unknown channel {channel!r}")
        if not self.in_envelope(thickness_cm):
            raise ValueError(
                f"thickness {thickness_cm} cm outside the certified"
                f" envelope [{self.thickness_cm[0]},"
                f" {self.thickness_cm[-1]}] cm"
            )
        grid = np.log(np.asarray(self.thickness_cm))
        values = np.asarray(self.channels[channel], dtype=float)
        logs = np.log(np.maximum(values, _LOG_FLOOR))
        raw = float(
            np.exp(np.interp(math.log(thickness_cm), grid, logs))
        )
        if raw <= 10.0 * _LOG_FLOOR:
            raw = 0.0
        if channel in FRACTION_CHANNELS:
            return min(max(raw, 0.0), 1.0)
        return max(raw, 0.0)

    def evaluate(self, thickness_cm: float) -> SurrogateTransportResult:
        """Interpolate every channel into a served result."""
        values = {
            channel: self.predict(channel, thickness_cm)
            for channel in CHANNELS
        }
        return SurrogateTransportResult(
            source=1.0, bounds=self.bounds, **values
        )

    # -- the accuracy contract -----------------------------------------

    @property
    def bounds(self) -> Dict[str, float]:
        """Per-channel certified bounds at the build's full
        ``k_sigma`` coverage."""
        return {
            channel: max(
                self.gaps[channel],
                self.k_sigma * self.sigmas[channel],
            )
            for channel in CHANNELS
        }

    def certified_bound(
        self,
        channel: Optional[str] = None,
        confidence: Optional[float] = None,
    ) -> float:
        """The certified absolute bound for a channel (default
        headline) at a coverage level (default: the build's full
        ``k_sigma`` coverage)."""
        channel = channel or self.headline
        if confidence is None:
            z = self.k_sigma
        else:
            z = min(z_for_confidence(confidence), self.k_sigma)
        return max(self.gaps[channel], z * self.sigmas[channel])

    def meets(
        self,
        thickness_cm: float,
        rel_err: float,
        confidence: float,
    ) -> bool:
        """Does the headline bound satisfy an accuracy target here?

        The target is met when the certification's coverage reaches
        ``confidence`` and the certified bound at that coverage is
        within ``rel_err`` of the predicted headline value (with the
        :data:`ABS_SERVE_FLOOR` absolute floor — the certification's
        own resolution).
        """
        if confidence > self.confidence:
            return False
        predicted = self.predict(self.headline, thickness_cm)
        allowed = max(rel_err * predicted, ABS_SERVE_FLOOR)
        return (
            self.certified_bound(confidence=confidence) <= allowed
        )

    # -- serde ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form (untagged; artifacts tag the bundle)."""
        return {
            "mode": self.mode,
            "material": self.material,
            "source": self.source,
            "thickness_cm": list(self.thickness_cm),
            "channels": {
                channel: list(values)
                for channel, values in sorted(self.channels.items())
            },
            "gaps": {
                channel: float(gap)
                for channel, gap in sorted(self.gaps.items())
            },
            "sigmas": {
                channel: float(sigma)
                for channel, sigma in sorted(self.sigmas.items())
            },
            "k_sigma": self.k_sigma,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResponseSurface":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            mode=str(data["mode"]),
            material=str(data["material"]),
            source=str(data["source"]),
            thickness_cm=tuple(
                float(t) for t in data["thickness_cm"]
            ),
            channels={
                str(channel): tuple(float(v) for v in values)
                for channel, values in data["channels"].items()
            },
            gaps={
                str(channel): float(gap)
                for channel, gap in data["gaps"].items()
            },
            sigmas={
                str(channel): float(sigma)
                for channel, sigma in data["sigmas"].items()
            },
            k_sigma=float(data["k_sigma"]),
            confidence=float(data["confidence"]),
        )
