"""Precomputed transport response surfaces with certified accuracy.

The build-once/serve-many layer behind the
:mod:`repro.transport.api` facade: response surfaces over (material,
source, thickness) are filled with the noise-free deterministic
multigroup engine, *certified* against held-out batch Monte Carlo
runs (the K-sigma contract of ``tests/test_transport_equivalence``),
persisted as serde-tagged, SHA-256-checksummed, content-addressed
artifacts, and served in microseconds by :class:`SurrogateStore`.
"""

from repro.transport.surrogate.build import (
    SurfaceSpec,
    build_artifact,
    default_surface_specs,
)
from repro.transport.surrogate.store import SurrogateStore
from repro.transport.surrogate.surface import (
    CHANNELS,
    ResponseSurface,
    SurrogateTransportResult,
)

__all__ = [
    "CHANNELS",
    "ResponseSurface",
    "SurfaceSpec",
    "SurrogateStore",
    "SurrogateTransportResult",
    "build_artifact",
    "default_surface_specs",
]
