"""Build and certify surrogate response-surface artifacts.

The grid fill uses the deterministic multigroup engine — noise-free,
no RNG, ~11x faster per point than an instrument-grade MC run — and
the *certification* pass holds out the geometric midpoints of every
grid interval, runs batch Monte Carlo there, and records the worst
``|prediction - MC| + k * sigma`` disagreement per channel as the
surface's certified absolute bound.  This is the deterministic-vs-MC
K-sigma contract of ``tests/test_transport_equivalence.py``, applied
at points the interpolator never saw: the bound covers condensation
bias *and* interpolation error, with MC noise folded in at ``k``
standard errors (two-sided normal coverage ``erf(k / sqrt(2))``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import serde
from repro.obs import core as obs
from repro.runtime.checkpoint import payload_checksum
from repro.spectra.beamlines import rotax_spectrum
from repro.spectra.spectrum import Spectrum
from repro.transport.materials import (
    BORATED_POLYETHYLENE,
    CADMIUM,
    CONCRETE,
    WATER,
    Material,
)
from repro.transport.montecarlo import Layer, SlabGeometry, SlabTransport
from repro.transport.surrogate.surface import (
    CHANNELS,
    FRACTION_CHANNELS,
    ResponseSurface,
    mono_source_key,
    spectrum_source_key,
)

__all__ = [
    "SurfaceSpec",
    "build_artifact",
    "build_surface",
    "default_surface_specs",
    "log_grid",
]

#: Default certification sigma multiplier — matches the engine
#: equivalence harness's ``_K_SIGMA`` (two-sided coverage ~0.9999994
#: is overkill; k = 5 buys slack for near-empty channels).
DEFAULT_K_SIGMA = 5.0

#: Default held-out MC histories per certification point.
DEFAULT_CERT_HISTORIES = 20_000

#: Default grid points per surface.
DEFAULT_N_POINTS = 9

#: Default albedo source energy (the paper's fast-ambient proxy).
ALBEDO_SOURCE_EV = 1.0e6

#: Reference thicknesses the default build centres its envelopes on
#: (the service's ``SHIELDS`` defaults; a test pins the two tables
#: against each other so they cannot drift apart).
DEFAULT_SHIELD_THICKNESS_CM: Dict[str, float] = {
    CADMIUM.name: 0.1,
    BORATED_POLYETHYLENE.name: 5.0,
    WATER.name: 10.0,
    CONCRETE.name: 30.0,
}

#: Envelope span around a reference thickness: [t/4, 4t].
_ENVELOPE_SPAN = 4.0


def log_grid(lo_cm: float, hi_cm: float, n_points: int) -> Tuple[float, ...]:
    """``n_points`` log-spaced thicknesses spanning ``[lo, hi]``."""
    if lo_cm <= 0.0 or hi_cm <= lo_cm:
        raise ValueError(
            f"need 0 < lo < hi, got [{lo_cm}, {hi_cm}]"
        )
    if n_points < 2:
        raise ValueError(f"need >= 2 grid points, got {n_points}")
    return tuple(
        float(t)
        for t in np.exp(
            np.linspace(math.log(lo_cm), math.log(hi_cm), n_points)
        )
    )


@dataclass(frozen=True)
class SurfaceSpec:
    """What one response surface covers.

    Exactly one of ``source_spectrum`` / ``source_energy_ev`` must be
    set (mirroring ``SlabTransport.run``).
    """

    mode: str
    material: Material
    thickness_cm: Tuple[float, ...]
    source_spectrum: Optional[Spectrum] = None
    source_energy_ev: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.source_spectrum is None) == (
            self.source_energy_ev is None
        ):
            raise ValueError(
                "give exactly one of"
                " source_spectrum/source_energy_ev"
            )

    def source_key(self) -> str:
        """Content key of the spec's source."""
        if self.source_spectrum is not None:
            return spectrum_source_key(self.source_spectrum)
        return mono_source_key(float(self.source_energy_ev))


def default_surface_specs(
    n_points: int = DEFAULT_N_POINTS,
) -> List[SurfaceSpec]:
    """The standard build: every service shield's transmission
    surface under the ROTAX spectrum, plus water/concrete albedo
    surfaces under the fast mono source."""
    spectrum = rotax_spectrum()
    specs: List[SurfaceSpec] = []
    for material in (CADMIUM, BORATED_POLYETHYLENE, WATER, CONCRETE):
        t_ref = DEFAULT_SHIELD_THICKNESS_CM[material.name]
        specs.append(
            SurfaceSpec(
                mode="transmission",
                material=material,
                thickness_cm=log_grid(
                    t_ref / _ENVELOPE_SPAN,
                    t_ref * _ENVELOPE_SPAN,
                    n_points,
                ),
                source_spectrum=spectrum,
            )
        )
    for material in (WATER, CONCRETE):
        t_ref = DEFAULT_SHIELD_THICKNESS_CM[material.name]
        specs.append(
            SurfaceSpec(
                mode="albedo",
                material=material,
                thickness_cm=log_grid(
                    t_ref / _ENVELOPE_SPAN,
                    t_ref * _ENVELOPE_SPAN,
                    n_points,
                ),
                source_energy_ev=ALBEDO_SOURCE_EV,
            )
        )
    return specs


def _solve(
    spec: SurfaceSpec,
    thickness_cm: float,
    engine: str,
    n_neutrons: int = 1,
    seed: int = 0,
):
    """One engine run of the spec's physics at one thickness."""
    geometry = SlabGeometry([Layer(spec.material, thickness_cm)])
    transport = SlabTransport(
        geometry, rng=np.random.default_rng(seed)
    )
    return transport.run(
        n_neutrons,
        source_energy_ev=spec.source_energy_ev,
        source_spectrum=spec.source_spectrum,
        engine=engine,
    )


def _cert_seed(base_seed: int, surface_key: str, index: int) -> int:
    """Deterministic per-midpoint MC seed (content-derived)."""
    token = f"{base_seed}:{surface_key}:{index}"
    material = hashlib.sha256(token.encode("ascii")).digest()
    return int.from_bytes(material[:4], "big")


def build_surface(
    spec: SurfaceSpec,
    cert_histories: int = DEFAULT_CERT_HISTORIES,
    k_sigma: float = DEFAULT_K_SIGMA,
    seed: int = 2020,
) -> Tuple[ResponseSurface, List[dict]]:
    """Fill and certify one response surface.

    Returns:
        ``(surface, certification)`` — the surface carries the
        measured per-channel bounds; the certification report lists
        every held-out comparison (JSON-ready rows).
    """
    if cert_histories < 100:
        raise ValueError(
            f"cert_histories must be >= 100, got {cert_histories}"
        )
    if k_sigma <= 0.0:
        raise ValueError(f"k_sigma must be positive, got {k_sigma}")
    grid = tuple(float(t) for t in spec.thickness_cm)
    channels: Dict[str, List[float]] = {c: [] for c in CHANNELS}
    for thickness_cm in grid:
        det = _solve(spec, thickness_cm, engine="deterministic")
        for channel in CHANNELS:
            channels[channel].append(float(getattr(det, channel)))
    confidence = math.erf(k_sigma / math.sqrt(2.0))
    provisional = ResponseSurface(
        mode=spec.mode,
        material=spec.material.name,
        source=spec.source_key(),
        thickness_cm=grid,
        channels={c: tuple(v) for c, v in channels.items()},
        gaps={c: 0.0 for c in CHANNELS},
        sigmas={c: 0.0 for c in CHANNELS},
        k_sigma=k_sigma,
        confidence=confidence,
    )
    # Decorrelates certification seeds between surfaces; built from
    # spec fields alone so the derivation stays caller-traceable.
    source_label = (
        spec.source_spectrum.name
        if spec.source_spectrum is not None
        else f"mono:{spec.source_energy_ev!r}"
    )
    surface_key = (
        f"{spec.mode}:{spec.material.name}:{source_label}"
    )
    gaps: Dict[str, float] = {c: 0.0 for c in CHANNELS}
    sigmas: Dict[str, float] = {c: 0.0 for c in CHANNELS}
    certification: List[dict] = []
    for index in range(len(grid) - 1):
        # Geometric midpoint: the farthest point (in log-thickness)
        # from both neighbouring grid points — worst case for the
        # log-linear interpolant.
        t_mid = math.sqrt(grid[index] * grid[index + 1])
        mc = _solve(
            spec,
            t_mid,
            engine="batch",
            n_neutrons=cert_histories,
            seed=_cert_seed(seed, surface_key, index),
        )
        row: dict = {"thickness_cm": t_mid, "channels": {}}
        for channel in CHANNELS:
            count = float(getattr(mc, channel))
            estimate = count / cert_histories
            if channel in FRACTION_CHANNELS:
                sigma = math.sqrt(
                    max(estimate * (1.0 - estimate), 0.0)
                    / cert_histories
                )
            else:
                # Collisions: Poisson error on the total count.
                sigma = math.sqrt(max(count, 0.0)) / cert_histories
            # Floor at one count: a 0-2 count channel's estimated
            # sigma is itself noise (the equivalence harness's
            # _ABS_FLOOR rationale).
            sigma = max(sigma, 1.0 / cert_histories)
            predicted = provisional.predict(channel, t_mid)
            gap = abs(predicted - estimate)
            gaps[channel] = max(gaps[channel], gap)
            sigmas[channel] = max(sigmas[channel], sigma)
            row["channels"][channel] = {
                "predicted": predicted,
                "mc_estimate": estimate,
                "mc_sigma": sigma,
                "z": gap / sigma,
                "bound": max(gap, k_sigma * sigma),
            }
        certification.append(row)
    surface = dataclasses.replace(
        provisional, gaps=gaps, sigmas=sigmas
    )
    return surface, certification


def build_artifact(
    name: str,
    specs: List[SurfaceSpec],
    cert_histories: int = DEFAULT_CERT_HISTORIES,
    k_sigma: float = DEFAULT_K_SIGMA,
    seed: int = 2020,
) -> dict:
    """Build a serde-tagged, checksummed surrogate artifact.

    The returned payload is JSON-ready; its ``checksum`` field is a
    SHA-256 over the canonical body (the store's content address).
    """
    if not name:
        raise ValueError("artifact name must be non-empty")
    if not specs:
        raise ValueError("artifact needs at least one surface spec")
    with obs.span(
        "surrogate.build", artifact=name, surfaces=len(specs)
    ):
        surfaces: List[dict] = []
        certification: List[dict] = []
        n_points = 0
        for spec in specs:
            surface, report = build_surface(
                spec,
                cert_histories=cert_histories,
                k_sigma=k_sigma,
                seed=seed,
            )
            n_points += len(surface.thickness_cm)
            surfaces.append(surface.to_dict())
            certification.append(
                {
                    "mode": surface.mode,
                    "material": surface.material,
                    "source": surface.source,
                    "held_out": report,
                }
            )
        payload = serde.tag(
            "surrogate-artifact",
            {
                "name": name,
                "n_points": n_points,
                "cert_histories": cert_histories,
                "k_sigma": k_sigma,
                "confidence": math.erf(k_sigma / math.sqrt(2.0)),
                "seed": seed,
                "surfaces": surfaces,
                "certification": certification,
            },
        )
    payload["checksum"] = payload_checksum(payload)
    return payload
