"""Deterministic multigroup discrete-ordinates slab solver.

The third transport engine: same :class:`SlabGeometry`/material inputs
as the Monte Carlo engines, zero statistical noise, zero RNG use.

Numerical scheme
----------------

* **Angle** — Gauss-Legendre S_N quadrature on ``mu in [-1, 1]``
  (weights sum to 2); isotropic emission puts ``q / 2`` per unit
  ``mu``.
* **Space** — step-characteristics differencing:
  ``psi_out = a psi_in + (1 - a) s`` with ``a = exp(-tau)`` and the
  balance-consistent cell average ``psi_bar = r psi_in + (1 - r) s``,
  ``r = (1 - a) / tau`` — positive fluxes for any cell thickness and
  *machine-exact* particle balance per cell.  Because the sweep is
  affine in the emission density, each group's sweep is assembled
  *once* into a response matrix (scalar flux and boundary-current
  response to a unit isotropic emission per cell, built in log-space
  so thick stacks underflow benignly); a source iteration is then a
  single ``C x C`` mat-vec instead of a cell-by-cell sweep.
* **Energy** — the collapsed scattering matrix has no upscatter above
  the thermal bath, so groups are solved once each in descending
  energy order; only the *within-group* source iteration iterates,
  with Aitken extrapolation to tame the near-unity spectral radius of
  the bath group in good moderators (``c ~ 0.99`` for water).
* **Sources** — the uncollided beam is attenuated with the
  *continuous-energy* cross sections (no condensation error) and its
  first collisions are distributed into groups with the continuous
  scatter kernel; only the collided flux is multigroup.

The iteration budget surfaces through
:class:`~repro.runtime.errors.ConvergenceError`; solver effort is
observable via the ``transport.deterministic`` span and the
``repro_deterministic_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import serde
from repro.obs import core as obs
from repro.runtime.errors import (
    ConfigurationError,
    ConvergenceError,
    require_positive_int,
)
from repro.spectra.spectrum import Spectrum
from repro.transport.montecarlo import SlabGeometry, _classify
from repro.transport.multigroup.condense import (
    CollapsedMaterial,
    _outgoing_rows,
    collapse,
)
from repro.transport.multigroup.groups import (
    GroupStructure,
    fine_structure,
)

__all__ = [
    "DeterministicTransportEngine",
    "DeterministicTransportResult",
]

#: Target optical thickness per mesh cell (at the most opaque group).
_TAU_TARGET = 0.25

#: Mesh-size guard rails: cells per layer and per stack.
_MIN_CELLS_PER_LAYER = 2
_MAX_TOTAL_CELLS = 512

#: Source-energy quadrature points per spectrum bin.
_POINTS_PER_SOURCE_BIN = 4

#: Balance slack accepted by ``balance_check`` — iteration residual,
#: not statistical noise.
_BALANCE_TOL = 1.0e-6


@dataclass(frozen=True)
class DeterministicTransportResult:
    """Noise-free analogue of :class:`TransportResult`.

    Channels are *fractions per source neutron* (``source`` is 1.0 by
    construction) instead of the MC engines' integer counts, but every
    accessor of :class:`~repro.transport.tallies.TransportResult` is
    mirrored so downstream consumers (shielding evaluator, service,
    CLI) work unchanged; the statistical-error accessors return 0.

    Attributes:
        iterations: total within-group source iterations performed.
        balance_residual: ``|1 - (transmitted + reflected +
            absorbed)|`` — bounded by the iteration tolerance.
        absorbed_by_layer: absorbed fraction per geometry layer.
    """

    source: float
    transmitted_thermal: float
    transmitted_epithermal: float
    transmitted_fast: float
    reflected_thermal: float
    reflected_epithermal: float
    reflected_fast: float
    absorbed: float
    collisions: float
    absorbed_by_material: Dict[str, float]
    absorbed_by_layer: Tuple[float, ...]
    iterations: int
    balance_residual: float

    # -- serde ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form tagged ``deterministic-transport``."""
        return serde.tag(
            "deterministic-transport",
            {
                "source": self.source,
                "transmitted_thermal": self.transmitted_thermal,
                "transmitted_epithermal": (
                    self.transmitted_epithermal
                ),
                "transmitted_fast": self.transmitted_fast,
                "reflected_thermal": self.reflected_thermal,
                "reflected_epithermal": self.reflected_epithermal,
                "reflected_fast": self.reflected_fast,
                "absorbed": self.absorbed,
                "collisions": self.collisions,
                "absorbed_by_material": dict(
                    self.absorbed_by_material
                ),
                "absorbed_by_layer": list(self.absorbed_by_layer),
                "iterations": self.iterations,
                "balance_residual": self.balance_residual,
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "DeterministicTransportResult":
        """Rebuild from :meth:`to_dict` output."""
        serde.check("deterministic-transport", data)
        return cls(
            source=float(data["source"]),
            transmitted_thermal=float(data["transmitted_thermal"]),
            transmitted_epithermal=float(
                data["transmitted_epithermal"]
            ),
            transmitted_fast=float(data["transmitted_fast"]),
            reflected_thermal=float(data["reflected_thermal"]),
            reflected_epithermal=float(
                data["reflected_epithermal"]
            ),
            reflected_fast=float(data["reflected_fast"]),
            absorbed=float(data["absorbed"]),
            collisions=float(data["collisions"]),
            absorbed_by_material={
                str(k): float(v)
                for k, v in data.get(
                    "absorbed_by_material", {}
                ).items()
            },
            absorbed_by_layer=tuple(
                float(v) for v in data.get("absorbed_by_layer", ())
            ),
            iterations=int(data["iterations"]),
            balance_residual=float(data["balance_residual"]),
        )

    # -- TransportResult-compatible accessors --------------------------

    @property
    def transmitted(self) -> float:
        """Fraction leaving through the far face (any energy)."""
        return (
            self.transmitted_thermal
            + self.transmitted_epithermal
            + self.transmitted_fast
        )

    @property
    def reflected(self) -> float:
        """Fraction leaving back through the entry face."""
        return (
            self.reflected_thermal
            + self.reflected_epithermal
            + self.reflected_fast
        )

    def transmission_fraction(self) -> float:
        """Fraction of source neutrons transmitted (any energy)."""
        return self.transmitted

    def thermal_transmission_fraction(self) -> float:
        """Fraction transmitted below the cadmium cutoff."""
        return self.transmitted_thermal

    def thermal_albedo(self) -> float:
        """Fraction reflected back as thermal neutrons."""
        return self.reflected_thermal

    def thermal_albedo_stderr(self) -> float:
        """Zero: deterministic answers carry no statistical error."""
        return 0.0

    def absorption_fraction(self) -> float:
        """Fraction absorbed anywhere in the stack."""
        return self.absorbed

    def mean_collisions(self) -> float:
        """Expected collisions per source neutron."""
        return self.collisions

    def balance_check(self) -> bool:
        """True if the stack conserves neutrons to iteration slack."""
        return self.balance_residual <= _BALANCE_TOL


class DeterministicTransportEngine:
    """S_N multigroup solver over a :class:`SlabGeometry`.

    Built once per geometry (attenuation tables are precomputed per
    group/ordinate/cell); :meth:`run` is then a pure function of the
    source — no RNG anywhere, so repeat solves are bit-identical.

    Args:
        geometry: the slab stack.
        bath_energy_ev: thermal-bath energy (moderation floor).
        structure: group structure; defaults to the fine
            band-aligned grid of :func:`fine_structure`.
        sn_order: Gauss-Legendre quadrature order (positive even —
            an odd order would place an ordinate at ``mu = 0``).
        tolerance: relative convergence tolerance on the scalar flux
            of each within-group iteration.
        max_iterations: iteration budget *per group*; exhausting it
            raises :class:`~repro.runtime.errors.ConvergenceError`.
    """

    def __init__(
        self,
        geometry: SlabGeometry,
        bath_energy_ev: float,
        structure: Optional[GroupStructure] = None,
        sn_order: int = 8,
        tolerance: float = 1.0e-9,
        max_iterations: int = 2000,
    ) -> None:
        require_positive_int("sn_order", sn_order)
        if sn_order % 2 != 0:
            raise ConfigurationError(
                f"sn_order must be even, got {sn_order}"
            )
        require_positive_int("max_iterations", max_iterations)
        if not 0.0 < tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must be in (0, 1), got {tolerance}"
            )
        self.geometry = geometry
        self.bath_energy_ev = float(bath_energy_ev)
        self.structure = (
            structure if structure is not None else fine_structure()
        )
        self.sn_order = sn_order
        self.tolerance = float(tolerance)
        self.max_iterations = max_iterations

        self.tables: Tuple[CollapsedMaterial, ...] = tuple(
            collapse(
                layer.material, self.structure, self.bath_energy_ev
            )
            for layer in geometry.layers
        )
        self.bath_group = self.tables[0].bath_group

        nodes, weights = np.polynomial.legendre.leggauss(sn_order)
        positive = nodes > 0.0
        #: Positive half-set; the negative half mirrors it.
        self.mu = nodes[positive]
        self.weights = weights[positive]

        self._build_mesh()
        self._build_tables()

    # -- geometry discretization ---------------------------------------

    def _build_mesh(self) -> None:
        """Choose per-layer cell counts from optical thickness."""
        layers = self.geometry.layers
        opacities = [
            float(np.max(table.sigma_total_per_cm_g()))
            for table in self.tables
        ]
        counts = [
            max(
                int(np.ceil(layer.thickness_cm * sig / _TAU_TARGET)),
                _MIN_CELLS_PER_LAYER,
            )
            for layer, sig in zip(layers, opacities)
        ]
        total = sum(counts)
        if total > _MAX_TOTAL_CELLS:
            scale = _MAX_TOTAL_CELLS / total
            counts = [
                max(int(n * scale), _MIN_CELLS_PER_LAYER)
                for n in counts
            ]
        dx_cm: List[float] = []
        cell_layer: List[int] = []
        for index, (layer, n_cells) in enumerate(
            zip(layers, counts)
        ):
            dx_cm.extend([layer.thickness_cm / n_cells] * n_cells)
            cell_layer.extend([index] * n_cells)
        self.dx_cm = np.asarray(dx_cm)
        self.cell_layer = np.asarray(cell_layer, dtype=int)
        self.n_cells = self.dx_cm.size

    def _build_tables(self) -> None:
        """Precompute per-(group, ordinate, cell) sweep coefficients."""
        n_groups = self.structure.n_groups
        sigma_t = np.empty((n_groups, self.n_cells))
        sigma_a = np.empty((n_groups, self.n_cells))
        sigma_s = np.empty((n_groups, self.n_cells))
        for index, table in enumerate(self.tables):
            cells = self.cell_layer == index
            sigma_t[:, cells] = table.sigma_total_per_cm_g()[:, None]
            sigma_a[:, cells] = table.sigma_absorb_per_cm_g[:, None]
            sigma_s[:, cells] = table.sigma_scatter_per_cm_g[:, None]
        self.sigma_t = sigma_t
        self.sigma_a = sigma_a
        self.sigma_s = sigma_s
        # tau[g, m, c]: optical thickness of cell c at ordinate m.
        tau = (
            sigma_t[:, None, :]
            * self.dx_cm[None, None, :]
            / self.mu[None, :, None]
        )
        tau = np.maximum(tau, 1.0e-12)
        self._tau = tau
        self._atten = np.exp(-tau)
        # r = (1 - a) / tau via expm1: stable down to tau -> 0.
        self._avg_weight = -np.expm1(-tau) / tau
        # In-group scattering probability per (group, cell).
        in_group = np.empty((n_groups, self.n_cells))
        for index, table in enumerate(self.tables):
            cells = self.cell_layer == index
            in_group[:, cells] = np.diagonal(table.transfer)[:, None]
        self._in_group = in_group
        # Strict-lower-triangle mask shared by every group response.
        self._lower = np.tril(
            np.ones((self.n_cells, self.n_cells)), k=-1
        )
        # Per-group response operators, built on first use.
        self._responses: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def _group_response(
        self, g: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sweep operator of group ``g`` as a response matrix.

        Returns ``(flux, right, left)`` where ``flux[i, j]`` is the
        scalar flux in cell ``i`` per unit isotropic emission density
        in cell ``j`` and ``right``/``left`` are the outgoing
        partial-current responses at the far/entry faces.  Both sweep
        directions share the same ``|mu|`` half-set, so the negative
        sweep is the positive one on the mirrored cell axis.
        """
        cached = self._responses.get(g)
        if cached is not None:
            return cached
        tau = self._tau[g]  # (M, C)
        atten = self._atten[g]
        avg_weight = self._avg_weight[g]
        # Emitted angular flux leaving the source cell, per unit
        # emission density: (1 - a) / (2 sigma_t).
        emit = (1.0 - atten) / (2.0 * self.sigma_t[g])[None, :]
        # Attenuation between cells in log-space: path[m, i, j] =
        # prod(a_k, j < k < i) = exp(-(T[i-1] - T[j])); underflow of
        # long paths cleanly rounds to zero transmission.  The clamp
        # only touches the j >= i region, which the mask zeroes.
        total_tau = np.cumsum(tau, axis=1)
        depth = total_tau[:, None, :] - (total_tau - tau)[:, :, None]
        path = np.exp(np.minimum(depth, 0.0))
        lower = self._lower
        # Positive direction: cell i sees emission from j < i, so the
        # cell-average response is r_i * emit_j * path[i, j].  The
        # negative direction mirrors it — emission from j > i, same
        # |mu| set, same path lengths — which is the transposed path
        # pattern with r_i / emit_j in the same roles.
        masked = path * lower[None, :, :]
        flux = np.einsum(
            "m,mi,mij,mj->ij", self.weights, avg_weight, masked, emit
        )
        flux += np.einsum(
            "m,mi,mji,mj->ij", self.weights, avg_weight, masked, emit
        )
        # Self-term (1 - r_i) / (2 sigma_t_i), once per direction.
        diag = (
            self.weights[:, None]
            * (1.0 - avg_weight)
            / (2.0 * self.sigma_t[g])[None, :]
        ).sum(axis=0)
        flux[np.diag_indices(self.n_cells)] += 2.0 * diag
        # Outgoing partial currents: emission attenuated through the
        # cells beyond it (far face) or before it (entry face).
        through = np.exp(-(total_tau[:, -1][:, None] - total_tau))
        right = (
            (self.weights * self.mu)[:, None] * emit * through
        ).sum(axis=0)
        back = np.exp(-(total_tau - tau))
        left = (
            (self.weights * self.mu)[:, None] * emit * back
        ).sum(axis=0)
        response = (flux, right, left)
        self._responses[g] = response
        return response

    # -- public API ----------------------------------------------------

    def run(
        self,
        source_energy_ev: Optional[float] = None,
        source_spectrum: Optional[Spectrum] = None,
    ) -> DeterministicTransportResult:
        """Solve the slab for a normal-incidence beam source.

        Exactly one of ``source_energy_ev`` / ``source_spectrum``
        must be given — the same contract as
        :meth:`SlabTransport.run`, minus the history count (the
        answer is per source neutron).

        Raises:
            repro.runtime.errors.ConvergenceError: if any group's
                source iteration exhausts ``max_iterations``.
        """
        if (source_energy_ev is None) == (source_spectrum is None):
            raise ConfigurationError(
                "give exactly one of source_energy_ev/source_spectrum"
            )
        if source_energy_ev is not None and source_energy_ev <= 0.0:
            raise ConfigurationError(
                f"source energy must be positive,"
                f" got {source_energy_ev}"
            )
        with obs.span(
            "transport.deterministic",
            groups=self.structure.n_groups,
            cells=self.n_cells,
            sn_order=self.sn_order,
        ):
            result = self._solve(source_energy_ev, source_spectrum)
            obs.inc("repro_deterministic_solves_total")
            obs.inc(
                "repro_deterministic_iterations_total",
                result.iterations,
            )
        return result

    # -- solve pipeline ------------------------------------------------

    def _source_points(
        self,
        source_energy_ev: Optional[float],
        source_spectrum: Optional[Spectrum],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Quadrature (energies, weights) describing the source.

        A spectrum is sampled like ``Spectrum.sample_energies``
        distributes histories: bins weighted by flux, lethargy-flat
        within a bin — here as fixed quadrature points instead of
        random draws.
        """
        if source_energy_ev is not None:
            return (
                np.asarray([float(source_energy_ev)]),
                np.asarray([1.0]),
            )
        assert source_spectrum is not None
        total = source_spectrum.total_flux()
        if total <= 0.0:
            raise ConfigurationError(
                "cannot solve for an empty source spectrum"
            )
        energies: List[float] = []
        weights: List[float] = []
        offsets = (
            np.arange(_POINTS_PER_SOURCE_BIN) + 0.5
        ) / _POINTS_PER_SOURCE_BIN
        edges = source_spectrum.edges
        for g, flux in enumerate(source_spectrum.group_flux):
            if flux <= 0.0:
                continue
            lo, hi = edges[g], edges[g + 1]
            points = lo * (hi / lo) ** offsets
            energies.extend(points.tolist())
            weights.extend(
                [flux / total / _POINTS_PER_SOURCE_BIN]
                * _POINTS_PER_SOURCE_BIN
            )
        return np.asarray(energies), np.asarray(weights)

    def _solve(
        self,
        source_energy_ev: Optional[float],
        source_spectrum: Optional[Spectrum],
    ) -> DeterministicTransportResult:
        energies, weights = self._source_points(
            source_energy_ev, source_spectrum
        )
        layers = self.geometry.layers
        n_layers = len(layers)
        n_groups = self.structure.n_groups

        # ---- uncollided beam, continuous in energy -------------------
        # sig_*[k, l]: continuous cross sections per source energy
        # and layer.
        sig_t = np.asarray(
            [
                [
                    layer.material.sigma_total_per_cm(float(e))
                    for layer in layers
                ]
                for e in energies
            ]
        )
        sig_a = np.asarray(
            [
                [
                    layer.material.sigma_absorb_per_cm(float(e))
                    for layer in layers
                ]
                for e in energies
            ]
        )
        sig_t_cells = sig_t[:, self.cell_layer]
        tau_edges = np.concatenate(
            [
                np.zeros((energies.size, 1)),
                np.cumsum(
                    sig_t_cells * self.dx_cm[None, :], axis=1
                ),
            ],
            axis=1,
        )
        survival = np.exp(-tau_edges)
        # First collisions per (energy point, cell), per source
        # neutron.
        first_collisions = survival[:, :-1] - survival[:, 1:]
        absorb_frac = np.where(
            sig_t_cells > 0.0,
            sig_a[:, self.cell_layer] / np.maximum(
                sig_t_cells, 1.0e-300
            ),
            0.0,
        )
        weighted_fc = first_collisions * weights[:, None]
        fc_absorbed_cells = (weighted_fc * absorb_frac).sum(axis=0)
        fc_scattered = weighted_fc * (1.0 - absorb_frac)
        collisions = float(weighted_fc.sum())

        transmitted = {"thermal": 0.0, "epithermal": 0.0, "fast": 0.0}
        reflected = {"thermal": 0.0, "epithermal": 0.0, "fast": 0.0}
        for e, w, through in zip(
            energies, weights, survival[:, -1]
        ):
            transmitted[_classify(float(e))] += float(w * through)

        # First-collision source density per (group, cell): the
        # continuous scatter kernel of each layer's material maps the
        # source energies into groups.
        qfc = np.zeros((n_groups, self.n_cells))
        for index in range(n_layers):
            cells = np.flatnonzero(self.cell_layer == index)
            if cells.size == 0:
                continue
            rows = _outgoing_rows(
                layers[index].material,
                energies,
                self.structure,
                self.bath_energy_ev,
            )
            qfc[:, cells] = (
                rows.T @ fc_scattered[:, cells]
            ) / self.dx_cm[None, cells]

        # ---- collided flux: descending-energy group sweep ------------
        phi = np.zeros((n_groups, self.n_cells))
        inscatter = np.zeros((n_groups, self.n_cells))
        current_right = np.zeros(n_groups)
        current_left = np.zeros(n_groups)
        iterations = 0
        bath = self.bath_group
        for g in range(n_groups - 1, bath - 1, -1):
            q_fixed = qfc[g] + inscatter[g]
            if float(q_fixed.max()) <= 0.0:
                continue
            phi_g, right, left, iters = self._solve_group(g, q_fixed)
            iterations += iters
            phi[g] = phi_g
            current_right[g] = right
            current_left[g] = left
            if g == bath:
                continue
            # Bank this group's downscatter for the groups below.
            for index, table in enumerate(self.tables):
                cells = self.cell_layer == index
                rate = self.sigma_s[g, cells] * phi_g[cells]
                inscatter[bath:g, cells] += (
                    table.transfer[g, bath:g][:, None] * rate[None, :]
                )

        # ---- tallies -------------------------------------------------
        absorbed_cells = fc_absorbed_cells + (
            self.sigma_a * phi
        ).sum(axis=0) * self.dx_cm
        collisions += float(
            ((self.sigma_t * phi) * self.dx_cm[None, :]).sum()
        )
        absorbed_by_layer = [0.0] * n_layers
        absorbed_by_material: Dict[str, float] = {}
        for index, layer in enumerate(layers):
            amount = float(
                absorbed_cells[self.cell_layer == index].sum()
            )
            absorbed_by_layer[index] = amount
            name = layer.material.name
            absorbed_by_material[name] = (
                absorbed_by_material.get(name, 0.0) + amount
            )
        for g in range(n_groups):
            band = self.structure.band_of_group(g)
            transmitted[band] += float(current_right[g])
            reflected[band] += float(current_left[g])
        absorbed = float(absorbed_cells.sum())
        balance_residual = abs(
            1.0
            - (
                sum(transmitted.values())
                + sum(reflected.values())
                + absorbed
            )
        )
        return DeterministicTransportResult(
            source=1.0,
            transmitted_thermal=transmitted["thermal"],
            transmitted_epithermal=transmitted["epithermal"],
            transmitted_fast=transmitted["fast"],
            reflected_thermal=reflected["thermal"],
            reflected_epithermal=reflected["epithermal"],
            reflected_fast=reflected["fast"],
            absorbed=absorbed,
            collisions=collisions,
            absorbed_by_material=absorbed_by_material,
            absorbed_by_layer=tuple(absorbed_by_layer),
            iterations=iterations,
            balance_residual=balance_residual,
        )

    def _solve_group(
        self, g: int, q_fixed: np.ndarray
    ) -> Tuple[np.ndarray, float, float, int]:
        """Converge the within-group source iteration for group ``g``.

        Returns ``(phi, J_right, J_left, iterations)`` where the
        partial currents come from a final consistency sweep off the
        converged flux.

        Raises:
            repro.runtime.errors.ConvergenceError: when
                ``max_iterations`` sweeps do not reach ``tolerance``.
        """
        flux_of, right_of, left_of = self._group_response(g)
        reemit = self._in_group[g] * self.sigma_s[g]

        phi = np.zeros(self.n_cells)
        prev_diff = None
        prev_rho = None
        cooldown = 0
        for iteration in range(1, self.max_iterations + 1):
            phi_new = flux_of @ (q_fixed + reemit * phi)
            diff = float(np.abs(phi_new - phi).max())
            scale = max(float(phi_new.max()), 1.0e-300)
            if diff <= self.tolerance * scale:
                emission = q_fixed + reemit * phi_new
                return (
                    flux_of @ emission,
                    float(right_of @ emission),
                    float(left_of @ emission),
                    iteration,
                )
            rho = (
                diff / prev_diff
                if prev_diff is not None and prev_diff > 0.0
                else None
            )
            if cooldown > 0:
                cooldown -= 1
            elif (
                rho is not None
                and prev_rho is not None
                and 0.2 < rho < 0.99999
                and abs(rho - prev_rho) < 0.01 * rho
            ):
                # Aitken/Lyusternik: jump along the dominant error
                # mode, then let the transient settle before judging
                # the ratio again.
                phi_new = phi_new + (rho / (1.0 - rho)) * (
                    phi_new - phi
                )
                np.maximum(phi_new, 0.0, out=phi_new)
                cooldown = 3
                rho = None
                diff = None
            prev_rho = rho
            prev_diff = diff
            phi = phi_new
        raise ConvergenceError(
            f"group {g} source iteration did not reach"
            f" tolerance {self.tolerance:g} within"
            f" {self.max_iterations} sweeps"
        )
