"""Deterministic energy-multigroup discrete-ordinates slab transport.

The noise-free third engine behind
``SlabTransport.run(engine="deterministic")``: group structures
(:mod:`~repro.transport.multigroup.groups`), flux-weighted
condensation of the continuous-energy cross sections
(:mod:`~repro.transport.multigroup.condense`), and the S_N sweep
solver (:mod:`~repro.transport.multigroup.solver`).
"""

from repro.transport.multigroup.condense import (
    CollapsedMaterial,
    clear_collapse_cache,
    collapse,
    scatter_probabilities,
)
from repro.transport.multigroup.groups import (
    GroupStructure,
    STRUCTURES,
    fine_structure,
)
from repro.transport.multigroup.solver import (
    DeterministicTransportEngine,
    DeterministicTransportResult,
)

__all__ = [
    "CollapsedMaterial",
    "clear_collapse_cache",
    "collapse",
    "scatter_probabilities",
    "GroupStructure",
    "STRUCTURES",
    "fine_structure",
    "DeterministicTransportEngine",
    "DeterministicTransportResult",
]
