"""Flux-weighted condensation of continuous cross sections to groups.

The Monte Carlo engines sample continuous-energy laws: energy-flat
scattering cross sections, 1/v absorption, per-isotope ``alpha``
kinematics with outgoing energy uniform on ``[alpha * E, E]`` and a
thermal-bath floor.  This module collapses those laws onto a
:class:`~repro.transport.multigroup.groups.GroupStructure`:

* within-group weighting is lethargy-flat (1/E), matching the
  in-group law the spectra module and ``Spectrum.sample_energies``
  use;
* the 1/v absorption average is done analytically (no quadrature
  error): ``<sigma_a>_g = sigma_a(1 eV) * 2 (lo^-1/2 - hi^-1/2)
  / ln(hi / lo)``;
* the group containing the thermal bath is *pinned* to the exact bath
  energy — the MC bath parks every thermalized neutron at exactly
  ``kT``, so a lethargy average over that group would be biased;
* transfer rows mix elements by macroscopic scattering weight and
  isotopes by the same cumulative-abundance rule
  :meth:`~repro.transport.materials.Material.dominant_scatter_mass`
  applies, including the fallback-to-last-isotope remainder.

Collapsed tables are cached at module level keyed on the material's
physical fingerprint and the structure, so thickness sweeps that
rebuild engines per geometry pay for condensation once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro import serde
from repro.physics.isotopes import Element
from repro.runtime.errors import ConfigurationError
from repro.transport.materials import Material
from repro.transport.multigroup.groups import GroupStructure

__all__ = [
    "CollapsedMaterial",
    "clear_collapse_cache",
    "collapse",
    "scatter_probabilities",
]

#: Default lethargy-flat quadrature points per group when averaging
#: transfer rows over the incident energy within a group.
_POINTS_PER_GROUP = 8

#: (material fingerprint, structure key, bath, points) -> table.
_COLLAPSE_CACHE: Dict[Tuple, "CollapsedMaterial"] = {}


@dataclass(frozen=True)
class CollapsedMaterial:
    """Group-collapsed cross sections for one material.

    Attributes:
        material_name: source material label.
        structure: the group structure the table lives on.
        bath_energy_ev: thermal-bath energy the table was built for.
        bath_group: index of the group pinned to the bath energy.
        sigma_scatter_per_cm_g: macroscopic scattering, 1/cm, per
            group (energy-independent in this model, kept per group
            for interface symmetry).
        sigma_absorb_per_cm_g: lethargy-averaged 1/v macroscopic
            absorption, 1/cm, per group (bath group pinned).
        transfer: row-stochastic scattering matrix;
            ``transfer[g_in, g_out]`` is the probability that a
            scatter in ``g_in`` emerges in ``g_out``.  Rows sum to 1
            exactly.
    """

    material_name: str
    structure: GroupStructure
    bath_energy_ev: float
    bath_group: int
    sigma_scatter_per_cm_g: np.ndarray
    sigma_absorb_per_cm_g: np.ndarray
    transfer: np.ndarray

    def sigma_total_per_cm_g(self) -> np.ndarray:
        """Macroscopic total cross section per group, 1/cm."""
        return self.sigma_scatter_per_cm_g + self.sigma_absorb_per_cm_g

    def to_dict(self) -> dict:
        """Plain-dict form tagged with the ``collapsed-material``
        schema — the exact-compare payload for golden tests."""
        return serde.tag(
            "collapsed-material",
            {
                "material": self.material_name,
                "structure": self.structure.name,
                "edges_ev": self.structure.edges_ev.tolist(),
                "bath_energy_ev": self.bath_energy_ev,
                "bath_group": self.bath_group,
                "sigma_scatter_per_cm_g": (
                    self.sigma_scatter_per_cm_g.tolist()
                ),
                "sigma_absorb_per_cm_g": (
                    self.sigma_absorb_per_cm_g.tolist()
                ),
                "transfer": self.transfer.tolist(),
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "CollapsedMaterial":
        """Rebuild from :meth:`to_dict` output."""
        serde.check("collapsed-material", data)
        table = cls(
            material_name=str(data["material"]),
            structure=GroupStructure(
                data["edges_ev"], name=str(data["structure"])
            ),
            bath_energy_ev=float(data["bath_energy_ev"]),
            bath_group=int(data["bath_group"]),
            sigma_scatter_per_cm_g=np.asarray(
                data["sigma_scatter_per_cm_g"], dtype=float
            ),
            sigma_absorb_per_cm_g=np.asarray(
                data["sigma_absorb_per_cm_g"], dtype=float
            ),
            transfer=np.asarray(data["transfer"], dtype=float),
        )
        table.sigma_scatter_per_cm_g.setflags(write=False)
        table.sigma_absorb_per_cm_g.setflags(write=False)
        table.transfer.setflags(write=False)
        return table


def _isotope_probabilities(elem: Element) -> List[float]:
    """Isotope pick probabilities replicating the MC cumulative rule.

    ``Material.dominant_scatter_mass`` walks cumulative abundances and
    falls through to the last isotope, so any abundance deficit is
    credited to the last entry; reproduce that exactly rather than
    renormalizing.
    """
    probs: List[float] = []
    acc = 0.0
    for iso in elem.isotopes[:-1]:
        prev = min(acc, 1.0)
        acc += iso.abundance
        probs.append(max(min(acc, 1.0) - prev, 0.0))
    probs.append(max(1.0 - min(acc, 1.0), 0.0))
    return probs


def _outgoing_rows(
    material: Material,
    energies_ev: np.ndarray,
    structure: GroupStructure,
    bath_energy_ev: float,
) -> np.ndarray:
    """Outgoing-group distributions for scatters at given energies.

    Implements the continuous law exactly: pick an element by
    macroscopic scattering weight, an isotope by abundance, draw the
    outgoing energy uniform on ``[alpha * E, E]`` and clamp it up to
    the bath energy.  Returns shape ``(len(energies), n_groups)``;
    rows sum to 1.  Outgoing energy above the top edge is banked in
    the top group (the structure is chosen to cover the source, so
    this only matters for out-of-range exotica).
    """
    energies = np.asarray(energies_ev, dtype=float)
    edges = structure.edges_ev
    n_groups = structure.n_groups
    bath_group = structure.group_index(bath_energy_ev)
    lo_edges = edges[:-1].copy()
    hi_edges = edges[1:].copy()
    hi_edges[-1] = np.inf

    weights = [
        nuc.number_density * nuc.elem.sigma_scatter_b
        for nuc in material.nuclides
    ]
    total_weight = sum(weights)
    rows = np.zeros((energies.size, n_groups))
    for nuc, weight in zip(material.nuclides, weights):
        if weight <= 0.0:
            continue
        elem_frac = weight / total_weight
        iso_probs = _isotope_probabilities(nuc.elem)
        for iso, iso_prob in zip(nuc.elem.isotopes, iso_probs):
            if iso_prob <= 0.0:
                continue
            frac = elem_frac * iso_prob
            alpha = iso.elastic_alpha
            out_lo = alpha * energies
            span = np.maximum(energies - out_lo, 1.0e-300)
            # Mass clamped up to the bath: P(E' < bath) under the
            # uniform law on [alpha E, E].
            floored = np.clip(
                (bath_energy_ev - out_lo) / span, 0.0, 1.0
            )
            rows[:, bath_group] += frac * floored
            # Remaining mass overlaps the groups above the bath.
            res_lo = np.maximum(out_lo, bath_energy_ev)
            overlap = np.clip(
                np.minimum(energies[:, None], hi_edges[None, :])
                - np.maximum(res_lo[:, None], lo_edges[None, :]),
                0.0,
                None,
            ) / span[:, None]
            rows += frac * overlap
    # Kill quadrature dust and renormalize rows to exactly 1.
    rows[rows < 0.0] = 0.0
    totals = rows.sum(axis=1, keepdims=True)
    totals[totals <= 0.0] = 1.0
    return rows / totals


def scatter_probabilities(
    material: Material,
    energy_ev: float,
    structure: GroupStructure,
    bath_energy_ev: float,
) -> np.ndarray:
    """Outgoing-group distribution for one scatter at ``energy_ev``.

    This is the continuous-energy kernel the first-collision source
    uses — no condensation error for the incident energy.
    """
    if energy_ev <= 0.0:
        raise ConfigurationError(
            f"scatter energy must be positive, got {energy_ev}"
        )
    return _outgoing_rows(
        material,
        np.asarray([energy_ev]),
        structure,
        bath_energy_ev,
    )[0]


def _material_fingerprint(material: Material) -> Tuple:
    """Physical identity of a material for the collapse cache."""
    return (
        material.name,
        material.density_g_cm3,
        material.enrichment_b10,
        tuple(
            (nuc.elem.symbol, nuc.number_density)
            for nuc in material.nuclides
        ),
    )


def clear_collapse_cache() -> None:
    """Drop every cached collapsed table (test hook)."""
    _COLLAPSE_CACHE.clear()


def collapse(
    material: Material,
    structure: GroupStructure,
    bath_energy_ev: float,
    points_per_group: int = _POINTS_PER_GROUP,
) -> CollapsedMaterial:
    """Collapse a material's continuous data onto ``structure``.

    Results are cached at module level; repeated engines over the
    same material/structure/bath reuse the table.

    Raises:
        repro.runtime.errors.ConfigurationError: if the bath energy
            falls outside the structure, or ``points_per_group < 1``.
    """
    if points_per_group < 1:
        raise ConfigurationError(
            f"need points_per_group >= 1, got {points_per_group}"
        )
    edges = structure.edges_ev
    if not edges[0] <= bath_energy_ev < edges[-1]:
        raise ConfigurationError(
            f"bath energy {bath_energy_ev} eV outside the group"
            f" structure span [{edges[0]}, {edges[-1]}] eV"
        )
    key = (
        _material_fingerprint(material),
        structure.key,
        float(bath_energy_ev),
        int(points_per_group),
    )
    cached = _COLLAPSE_CACHE.get(key)
    if cached is not None:
        return cached

    n_groups = structure.n_groups
    bath_group = structure.group_index(bath_energy_ev)
    sigma_s = float(material.sigma_scatter_per_cm(1.0))
    # sigma_a(E) = C / sqrt(E) with C = sigma_a at 1 eV; the
    # lethargy-flat average over [lo, hi) is analytic.
    c_abs = float(material.sigma_absorb_per_cm(1.0))
    lo = edges[:-1]
    hi = edges[1:]
    sigma_a = (
        c_abs
        * 2.0
        * (1.0 / np.sqrt(lo) - 1.0 / np.sqrt(hi))
        / np.log(hi / lo)
    )
    # Pin the bath group at the exact bath energy: the MC parks every
    # thermalized neutron at kT, so that group's spectrum is a delta.
    sigma_a[bath_group] = c_abs / math.sqrt(bath_energy_ev)

    transfer = np.zeros((n_groups, n_groups))
    for g in range(n_groups):
        if g == bath_group:
            transfer[g, bath_group] = 1.0
            continue
        # Lethargy-flat incident points inside the group.
        u = (np.arange(points_per_group) + 0.5) / points_per_group
        points = lo[g] * (hi[g] / lo[g]) ** u
        rows = _outgoing_rows(
            material, points, structure, bath_energy_ev
        )
        transfer[g] = rows.mean(axis=0)

    table = CollapsedMaterial(
        material_name=material.name,
        structure=structure,
        bath_energy_ev=float(bath_energy_ev),
        bath_group=bath_group,
        sigma_scatter_per_cm_g=np.full(n_groups, sigma_s),
        sigma_absorb_per_cm_g=sigma_a,
        transfer=transfer,
    )
    table.sigma_scatter_per_cm_g.setflags(write=False)
    table.sigma_absorb_per_cm_g.setflags(write=False)
    table.transfer.setflags(write=False)
    _COLLAPSE_CACHE[key] = table
    return table
