"""Energy group structures for the deterministic multigroup solver.

A :class:`GroupStructure` is an ascending array of energy edges; group
``g`` spans ``[edges[g], edges[g + 1])`` with the group index growing
with energy.  Named few-group structures follow the SNeq convention of
a thermal cut at 0.625 eV; the production default is a fine
lethargy-uniform grid with edges forced onto the band cutoffs
(0.5 eV / 10 MeV) so the deterministic engine classifies leakage into
thermal/epithermal/fast bands *exactly* like the Monte Carlo engines.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

import numpy as np

from repro.physics.units import FAST_CUTOFF_EV, THERMAL_CUTOFF_EV
from repro.runtime.errors import ConfigurationError

__all__ = [
    "GroupStructure",
    "STRUCTURES",
    "fine_structure",
]

#: Default span of the fine structure: comfortably below the room
#: temperature bath (~0.0253 eV) up to 20 MeV (the SNeq top edge).
DEFAULT_EMIN_EV = 1.0e-3
DEFAULT_EMAX_EV = 2.0e7


class GroupStructure:
    """A validated multigroup energy mesh.

    Args:
        edges_ev: strictly increasing, positive energy edges (eV);
            at least two.
        name: label used in cache keys and reports.

    Raises:
        repro.runtime.errors.ConfigurationError: on fewer than two
            edges, non-positive edges, or non-monotone edges.
    """

    def __init__(self, edges_ev, name: str = "custom") -> None:
        edges = np.asarray(edges_ev, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ConfigurationError(
                f"need at least two group edges, got {edges.size}"
            )
        if not np.all(edges > 0.0):
            raise ConfigurationError(
                "group edges must be positive (log-energy mesh);"
                f" got min {edges.min()}"
            )
        if not np.all(np.diff(edges) > 0.0):
            raise ConfigurationError(
                "group edges must be strictly increasing"
            )
        self.name = str(name)
        self.edges_ev = edges
        self.edges_ev.setflags(write=False)

    # ------------------------------------------------------------------

    @property
    def n_groups(self) -> int:
        """Number of energy groups."""
        return self.edges_ev.size - 1

    @property
    def midpoints_ev(self) -> np.ndarray:
        """Geometric group midpoints (lethargy centres), eV."""
        return np.sqrt(self.edges_ev[:-1] * self.edges_ev[1:])

    @property
    def key(self) -> Tuple:
        """Hashable identity for condensation caches."""
        return (self.name, self.edges_ev.tobytes())

    def group_index(self, energy_ev: Union[float, np.ndarray]):
        """Group index containing ``energy_ev`` (clamped to range).

        Energies below the bottom edge land in group 0 and energies at
        or above the top edge in the last group — the solver treats
        out-of-range energy continuously, so clamping only affects
        bookkeeping.
        """
        idx = np.searchsorted(self.edges_ev, energy_ev, side="right") - 1
        idx = np.clip(idx, 0, self.n_groups - 1)
        if np.isscalar(energy_ev):
            return int(idx)
        return idx

    def band_of_group(self, group: int) -> str:
        """Band label (thermal/epithermal/fast) of one group.

        Classified at the geometric midpoint; exact whenever no group
        straddles a band cutoff (true by construction for
        :func:`fine_structure`, approximate for coarse named
        structures such as ``sneq-2``).
        """
        mid = float(self.midpoints_ev[group])
        if mid < THERMAL_CUTOFF_EV:
            return "thermal"
        if mid < FAST_CUTOFF_EV:
            return "epithermal"
        return "fast"

    @classmethod
    def named(cls, name: str) -> "GroupStructure":
        """Look up a registered structure by name.

        Raises:
            repro.runtime.errors.ConfigurationError: for an unknown
                name (the message lists the registered ones).
        """
        try:
            return STRUCTURES[name]()
        except KeyError:
            raise ConfigurationError(
                f"unknown group structure {name!r};"
                f" registered: {sorted(STRUCTURES)}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"GroupStructure({self.name!r}, groups={self.n_groups},"
            f" span=[{self.edges_ev[0]:.3g},"
            f" {self.edges_ev[-1]:.3g}] eV)"
        )


def fine_structure(
    emin_ev: float = DEFAULT_EMIN_EV,
    emax_ev: float = DEFAULT_EMAX_EV,
    groups_per_decade: int = 10,
) -> GroupStructure:
    """Lethargy-uniform grid with edges forced onto the band cutoffs.

    The nearest interior edge (in lethargy) is snapped onto each band
    cutoff inside the span, so no group straddles 0.5 eV or 10 MeV and
    the deterministic leakage bands match :func:`_classify` exactly.
    """
    if emin_ev <= 0.0 or emax_ev <= emin_ev:
        raise ConfigurationError(
            f"need 0 < emin < emax, got [{emin_ev}, {emax_ev}]"
        )
    if groups_per_decade < 1:
        raise ConfigurationError(
            f"need groups_per_decade >= 1, got {groups_per_decade}"
        )
    decades = np.log10(emax_ev / emin_ev)
    n_groups = max(int(round(decades * groups_per_decade)), 1)
    edges = np.geomspace(emin_ev, emax_ev, n_groups + 1)
    for cutoff_ev in (THERMAL_CUTOFF_EV, FAST_CUTOFF_EV):
        if not emin_ev < cutoff_ev < emax_ev:
            continue
        interior = np.log(edges[1:-1] / cutoff_ev)
        edges[1 + int(np.argmin(np.abs(interior)))] = cutoff_ev
    return GroupStructure(
        edges, name=f"fine-{groups_per_decade}pd"
    )


def _sneq_2() -> GroupStructure:
    """SNeq-style two-group split at the 0.625 eV thermal cut."""
    return GroupStructure(
        [DEFAULT_EMIN_EV, 0.625, DEFAULT_EMAX_EV], name="sneq-2"
    )


def _bands_3() -> GroupStructure:
    """Three groups matching the paper's thermal/epithermal/fast bands."""
    return GroupStructure(
        [DEFAULT_EMIN_EV, THERMAL_CUTOFF_EV, FAST_CUTOFF_EV,
         DEFAULT_EMAX_EV],
        name="bands-3",
    )


#: Named structure registry: name -> zero-argument factory.
STRUCTURES: Dict[str, Callable[[], GroupStructure]] = {
    "sneq-2": _sneq_2,
    "bands-3": _bands_3,
    "fine": fine_structure,
}
