"""Tallies and results for the slowing-down Monte Carlo."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro import serde


@dataclass
class TransportTally:
    """Mutable event counters filled by a transport run."""

    source: int = 0
    transmitted_thermal: int = 0
    transmitted_epithermal: int = 0
    transmitted_fast: int = 0
    reflected_thermal: int = 0
    reflected_epithermal: int = 0
    reflected_fast: int = 0
    absorbed: int = 0
    absorbed_by_material: Dict[str, int] = field(default_factory=dict)
    collisions: int = 0

    def record_absorption(self, material_name: str) -> None:
        """Count an absorption, attributing it to a material."""
        self.absorbed += 1
        self.absorbed_by_material[material_name] = (
            self.absorbed_by_material.get(material_name, 0) + 1
        )


@dataclass(frozen=True)
class TransportResult:
    """Frozen summary of a transport run.

    All fractions are per source neutron; ``*_stderr`` are binomial
    standard errors, so callers can put error bars on MC answers.
    """

    source: int
    transmitted_thermal: int
    transmitted_epithermal: int
    transmitted_fast: int
    reflected_thermal: int
    reflected_epithermal: int
    reflected_fast: int
    absorbed: int
    collisions: int
    absorbed_by_material: Dict[str, int]
    #: Shards the batch engine recomputed in-process after a pool
    #: worker died or a delivery faulted.  Tallies are unaffected
    #: (shards are deterministic), but the run did not go to plan —
    #: mirrors the ``degraded`` flag on exposures.
    degraded_shards: int = 0

    @classmethod
    def from_tally(
        cls, tally: TransportTally, degraded_shards: int = 0
    ) -> "TransportResult":
        """Freeze a mutable tally.

        Args:
            tally: the counters to freeze.
            degraded_shards: shards that needed the in-process
                fallback (batch engine only).
        """
        return cls(
            source=tally.source,
            transmitted_thermal=tally.transmitted_thermal,
            transmitted_epithermal=tally.transmitted_epithermal,
            transmitted_fast=tally.transmitted_fast,
            reflected_thermal=tally.reflected_thermal,
            reflected_epithermal=tally.reflected_epithermal,
            reflected_fast=tally.reflected_fast,
            absorbed=tally.absorbed,
            collisions=tally.collisions,
            absorbed_by_material=dict(tally.absorbed_by_material),
            degraded_shards=degraded_shards,
        )

    def to_dict(self) -> dict:
        """Plain-dict form, tagged with the ``transport`` schema."""
        return serde.tag(
            "transport",
            {
                "source": self.source,
                "transmitted_thermal": self.transmitted_thermal,
                "transmitted_epithermal": (
                    self.transmitted_epithermal
                ),
                "transmitted_fast": self.transmitted_fast,
                "reflected_thermal": self.reflected_thermal,
                "reflected_epithermal": self.reflected_epithermal,
                "reflected_fast": self.reflected_fast,
                "absorbed": self.absorbed,
                "collisions": self.collisions,
                "absorbed_by_material": dict(
                    self.absorbed_by_material
                ),
                "degraded_shards": self.degraded_shards,
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "TransportResult":
        """Rebuild from :meth:`to_dict` output.

        Raises:
            repro.serde.SchemaError: on a wrong kind tag or an
                unsupported version.
        """
        serde.check("transport", data)
        return cls(
            source=int(data["source"]),
            transmitted_thermal=int(data["transmitted_thermal"]),
            transmitted_epithermal=int(
                data["transmitted_epithermal"]
            ),
            transmitted_fast=int(data["transmitted_fast"]),
            reflected_thermal=int(data["reflected_thermal"]),
            reflected_epithermal=int(data["reflected_epithermal"]),
            reflected_fast=int(data["reflected_fast"]),
            absorbed=int(data["absorbed"]),
            collisions=int(data["collisions"]),
            absorbed_by_material={
                str(k): int(v)
                for k, v in data.get(
                    "absorbed_by_material", {}
                ).items()
            },
            degraded_shards=int(data.get("degraded_shards", 0)),
        )

    # ------------------------------------------------------------------

    def _fraction(self, count: int) -> float:
        if self.source == 0:
            raise ValueError("empty run: no source neutrons")
        return count / self.source

    def _stderr(self, count: int) -> float:
        p = self._fraction(count)
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.source)

    @property
    def transmitted(self) -> int:
        """All neutrons leaving through the far face."""
        return (
            self.transmitted_thermal
            + self.transmitted_epithermal
            + self.transmitted_fast
        )

    @property
    def reflected(self) -> int:
        """All neutrons leaving back through the entry face."""
        return (
            self.reflected_thermal
            + self.reflected_epithermal
            + self.reflected_fast
        )

    def transmission_fraction(self) -> float:
        """Fraction of source neutrons transmitted (any energy)."""
        return self._fraction(self.transmitted)

    def thermal_transmission_fraction(self) -> float:
        """Fraction transmitted below the cadmium cutoff."""
        return self._fraction(self.transmitted_thermal)

    def thermal_albedo(self) -> float:
        """Fraction reflected back *as thermal neutrons*.

        This is the quantity behind the paper's material enhancements:
        a moderator body next to a device sends a thermalized fraction
        of the incident fast population back at it.
        """
        return self._fraction(self.reflected_thermal)

    def thermal_albedo_stderr(self) -> float:
        """Binomial standard error of :meth:`thermal_albedo`."""
        return self._stderr(self.reflected_thermal)

    def absorption_fraction(self) -> float:
        """Fraction absorbed anywhere in the stack."""
        return self._fraction(self.absorbed)

    def mean_collisions(self) -> float:
        """Average number of collisions per source neutron."""
        if self.source == 0:
            raise ValueError("empty run: no source neutrons")
        return self.collisions / self.source

    def balance_check(self) -> bool:
        """True if every source neutron is accounted for."""
        return (
            self.transmitted + self.reflected + self.absorbed
            == self.source
        )
