"""Unified result serialization: schema tags and version checks.

Every result record the harness persists — exposures, transport
tallies, chaos verdicts, logbooks — historically rolled its own
``to_dict``/``from_dict`` with ad-hoc (or absent) versioning.  This
module centralizes the contract:

* :func:`tag` stamps a payload with ``"schema"`` (the record kind) and
  ``"schema_version"`` (the kind's current format version from
  :data:`SCHEMA_VERSIONS`).
* :func:`check` validates an incoming payload and returns the version
  to decode as.  Untagged legacy payloads still load — they resolve to
  the kind's legacy version (or a ``legacy_key`` such as the logbook's
  historical ``"version"`` field) under a :class:`DeprecationWarning`.

Version mismatches raise :class:`SchemaError`, a ``ValueError``
subclass, so callers that historically caught ``ValueError`` keep
working unchanged.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

__all__ = [
    "SCHEMA_KEY",
    "SCHEMA_VERSIONS",
    "SchemaError",
    "VERSION_KEY",
    "check",
    "tag",
]

#: Payload key naming the record kind.
SCHEMA_KEY = "schema"

#: Payload key carrying the record's format version.
VERSION_KEY = "schema_version"

#: Current format version per record kind.  Bump a kind's entry when
#: its payload shape changes; teach its ``from_dict`` the old shapes.
SCHEMA_VERSIONS = {
    # v1: untagged dicts (pre-serde); v2 adds the schema tags.
    "exposure": 2,
    # First tagged release: TransportResult previously had no dict
    # form at all.
    "transport": 1,
    # v1: untagged chaos verdict matrices; v2 adds the schema tags.
    "chaos-report": 2,
    # v1/v2: logbook's own "version" field; v3 adds the schema tags.
    "logbook": 3,
    # v1: result/cached/degraded envelope; v2 adds the accuracy-aware
    # "provenance" block (engine used, error bound, artifact digest).
    "service-response": 2,
    # First tagged release: durable on-disk result-cache entries
    # (carry their own SHA-256 payload checksum).
    "service-cache-entry": 1,
    # First tagged release: the deterministic engine's noise-free
    # counterpart to "transport" (fractions instead of counts).
    "deterministic-transport": 1,
    # First tagged release: group-collapsed cross-section tables
    # (the golden-test payload for the condensation step).
    "collapsed-material": 1,
    # First tagged release: declarative sharded-study specifications.
    "study-spec": 1,
    # First tagged release: one write-ahead-ledger record (carries
    # its own SHA-256 payload checksum and sequence number).
    "study-ledger-record": 1,
    # First tagged release: durable content-addressed shard results.
    "study-shard-result": 1,
    # First tagged release: the merged study report.
    "study-report": 1,
    # First tagged release: certified surrogate response-surface
    # bundles (carry their own SHA-256 payload checksum).
    "surrogate-artifact": 1,
    # First tagged release: a surface-served transport answer
    # (fractions plus certified per-channel bounds).
    "surrogate-transport": 1,
}


class SchemaError(ValueError):
    """A payload declares a kind or version the decoder cannot read."""


def tag(kind: str, body: dict) -> dict:
    """Stamp ``body`` with the schema kind and current version.

    Args:
        kind: record kind; must appear in :data:`SCHEMA_VERSIONS`.
        body: the payload fields (not mutated; a new dict returns).

    Raises:
        SchemaError: on an undeclared kind, or if ``body`` already
            carries conflicting schema keys.
    """
    current = _current_version(kind)
    for key in (SCHEMA_KEY, VERSION_KEY):
        if key in body:
            raise SchemaError(
                f"payload already carries {key!r}; refusing to"
                " double-tag"
            )
    tagged = dict(body)
    tagged[SCHEMA_KEY] = kind
    tagged[VERSION_KEY] = current
    return tagged


def check(
    kind: str,
    data: dict,
    supported: Optional[Sequence[int]] = None,
    legacy_key: str = "",
) -> int:
    """Validate a payload's schema declaration; return its version.

    Args:
        kind: expected record kind.
        data: the payload to inspect.
        supported: versions the caller can decode (default: 1 through
            the kind's current version).
        legacy_key: payload key older formats used for their version
            (e.g. the logbook's ``"version"``).  When the payload has
            no ``schema_version``, the legacy key's value is used; a
            payload carrying *both* with different values is rejected.

    Returns:
        The version to decode the payload as.  Untagged payloads
        resolve to the legacy key's value, or 1, and emit a
        :class:`DeprecationWarning` — re-save to upgrade them.

    Raises:
        SchemaError: wrong kind tag, conflicting version
            declarations, or a version outside ``supported``.
    """
    current = _current_version(kind)
    declared_kind = data.get(SCHEMA_KEY)
    if declared_kind is not None and declared_kind != kind:
        raise SchemaError(
            f"expected a {kind!r} payload, got {declared_kind!r}"
        )
    version = data.get(VERSION_KEY)
    legacy = data.get(legacy_key) if legacy_key else None
    if version is None:
        version = legacy
        if version is None:
            version = 1
        warnings.warn(
            f"loading untagged legacy {kind} payload (treated as"
            f" version {version}); re-save to upgrade to version"
            f" {current}",
            DeprecationWarning,
            stacklevel=2,
        )
    elif legacy is not None and legacy != version:
        raise SchemaError(
            f"conflicting {kind} version declarations:"
            f" {legacy_key}={legacy!r} vs {VERSION_KEY}={version!r}"
        )
    allowed = (
        tuple(supported)
        if supported is not None
        else tuple(range(1, current + 1))
    )
    if version not in allowed:
        raise SchemaError(
            f"unsupported {kind} version {version!r};"
            f" expected one of {allowed}"
        )
    return int(version)


def _current_version(kind: str) -> int:
    """The kind's current version, or a :class:`SchemaError`."""
    try:
        return SCHEMA_VERSIONS[kind]
    except KeyError:
        raise SchemaError(
            f"unknown schema kind {kind!r};"
            f" declared: {sorted(SCHEMA_VERSIONS)}"
        ) from None
