"""``python -m repro`` dispatches to the CLI.

All subcommands — the paper's analyses plus the ``lint``
static-analysis pass — are defined in :mod:`repro.cli`.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
